"""DiffServ and out-of-band baseline tests: the paper's §3 failure modes."""

import pytest

from repro.baselines.diffserv import (
    BoundaryRemarker,
    DscpClassTable,
    DscpEnforcer,
    EndpointMarker,
    OpportunisticMarker,
)
from repro.baselines.oob import FlowDescription, OobController, OobSwitch
from repro.netsim.events import EventLoop
from repro.netsim.headers import DSCP_MAX
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet


def _packet(src="192.168.1.2", sport=5000, dst="93.184.216.34", dport=443, dscp=0):
    return make_tcp_packet(src, sport, dst, dport, dscp=dscp)


class TestDscpClassTable:
    def test_define_and_lookup(self):
        table = DscpClassTable()
        table.define(34, "premium")
        assert table.service_of(34) == "premium"
        assert table.service_of(35) is None

    def test_reserved_codepoints_protected(self):
        table = DscpClassTable()
        with pytest.raises(ValueError):
            table.define(46, "mine")  # EF is reserved internally

    def test_only_64_codepoints_exist(self):
        table = DscpClassTable()
        with pytest.raises(ValueError):
            table.define(DSCP_MAX + 1, "overflow")
        assert table.available_codepoints <= DSCP_MAX + 1 - len(table.reserved)


class TestMarking:
    def test_endpoint_marker(self):
        marker = EndpointMarker(dscp=34)
        sink = Sink()
        marker >> sink
        marker.push(_packet())
        assert sink.packets[0].dscp == 34

    def test_selective_marking(self):
        marker = EndpointMarker(dscp=34, predicate=lambda p: p.dst_port == 443)
        sink = Sink()
        marker >> sink
        marker.push(_packet(dport=443))
        marker.push(_packet(dport=80))
        assert sink.packets[0].dscp == 34
        assert sink.packets[1].dscp == 0

    def test_no_authentication_anywhere(self):
        """The legacy-console scenario: unauthorized marking obtains the
        premium class; the user cannot revoke it."""
        table = DscpClassTable()
        table.define(34, "premium-charged")
        console = OpportunisticMarker(dscp=34)
        enforcer = DscpEnforcer(table)
        sink = Sink()
        console >> enforcer
        enforcer >> sink
        console.push(_packet())
        assert sink.packets[0].meta["service"] == "premium-charged"

    def test_bad_dscp_rejected(self):
        with pytest.raises(ValueError):
            EndpointMarker(dscp=99)


class TestBoundary:
    def test_bleach_resets_marks(self):
        boundary = BoundaryRemarker(mode="bleach")
        sink = Sink()
        boundary >> sink
        boundary.push(_packet(dscp=34))
        assert sink.packets[0].dscp == 0
        assert boundary.rewritten == 1

    def test_remap(self):
        boundary = BoundaryRemarker(mode="remap", remap={34: 10})
        sink = Sink()
        boundary >> sink
        boundary.push(_packet(dscp=34))
        boundary.push(_packet(dscp=5))  # unmapped -> 0
        assert sink.packets[0].dscp == 10
        assert sink.packets[1].dscp == 0

    def test_trust_passes_through(self):
        boundary = BoundaryRemarker(mode="trust")
        sink = Sink()
        boundary >> sink
        boundary.push(_packet(dscp=34))
        assert sink.packets[0].dscp == 34

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BoundaryRemarker(mode="magic")


class TestEnforcer:
    def test_maps_to_qos_class(self):
        table = DscpClassTable()
        table.define(34, "video")
        enforcer = DscpEnforcer(table, class_to_level={"video": 0})
        sink = Sink()
        enforcer >> sink
        enforcer.push(_packet(dscp=34))
        assert sink.packets[0].meta["qos_class"] == 0


class TestFlowDescription:
    def test_full_tuple_matches_exact(self):
        packet = _packet()
        description = FlowDescription.of_packet(packet, mode="full_tuple")
        assert description.matches(packet)

    def test_full_tuple_matches_reverse(self):
        packet = _packet()
        description = FlowDescription.of_packet(packet, mode="full_tuple")
        reply = _packet(
            src=packet.dst_ip, sport=packet.dst_port,
            dst=packet.src_ip, dport=packet.src_port,
        )
        assert description.matches(reply)

    def test_full_tuple_broken_by_nat(self):
        pre_nat = _packet()
        description = FlowDescription.of_packet(pre_nat, mode="full_tuple")
        post_nat = _packet(src="198.51.100.7", sport=23456)
        assert not description.matches(post_nat)

    def test_dst_only_survives_nat(self):
        pre_nat = _packet()
        description = FlowDescription.of_packet(pre_nat, mode="dst_only")
        post_nat = _packet(src="198.51.100.7", sport=23456)
        assert description.matches(post_nat)

    def test_dst_only_false_positive(self):
        """The workaround's cost: another host's flow to the same server
        also matches."""
        description = FlowDescription.of_packet(_packet(), mode="dst_only")
        other = _packet(src="172.16.0.9", sport=1111)
        assert description.matches(other)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            FlowDescription.of_packet(_packet(), mode="fuzzy")


class TestControllerAndSwitch:
    def test_immediate_install_without_loop(self):
        switch = OobSwitch()
        controller = OobController(switch)
        controller.request_service(
            "alice", FlowDescription(dst_ip="1.2.3.4", dst_port=443), "boost"
        )
        assert switch.service_of(_packet(dst="1.2.3.4")) == "boost"

    def test_signaling_latency_with_loop(self):
        loop = EventLoop()
        switch = OobSwitch()
        controller = OobController(switch, loop=loop, signaling_latency=0.05)
        controller.request_service(
            "alice", FlowDescription(dst_ip="1.2.3.4", dst_port=443), "boost"
        )
        # Rule not yet installed: packets race the control plane.
        assert switch.service_of(_packet(dst="1.2.3.4")) is None
        loop.run_until_idle()
        assert switch.service_of(_packet(dst="1.2.3.4")) == "boost"

    def test_authentication_hook(self):
        switch = OobSwitch()
        controller = OobController(
            switch, authenticate=lambda user: user == "alice"
        )
        assert not controller.request_service(
            "mallory", FlowDescription(dst_ip="1.1.1.1"), "boost"
        )
        assert controller.stats.rules_installed == 0

    def test_withdraw_rule(self):
        switch = OobSwitch()
        controller = OobController(switch)
        description = FlowDescription(dst_ip="1.2.3.4", dst_port=443)
        controller.request_service("alice", description, "boost")
        controller.withdraw_service(description)
        assert switch.service_of(_packet(dst="1.2.3.4")) is None

    def test_switch_marks_matching_packets(self):
        switch = OobSwitch()
        switch.install_rule(FlowDescription(dst_ip="1.2.3.4", dst_port=443), "boost")
        sink = Sink()
        switch >> sink
        switch.push(_packet(dst="1.2.3.4"))
        switch.push(_packet(dst="5.6.7.8"))
        assert sink.packets[0].meta.get("qos_class") == 0
        assert "qos_class" not in sink.packets[1].meta
        assert switch.matched == 1

    def test_control_message_accounting(self):
        """One controller transaction per flow: loading cnn.com = 255
        rule installations."""
        switch = OobSwitch()
        controller = OobController(switch)
        for port in range(255):
            controller.request_service(
                "alice", FlowDescription(dst_ip="1.2.3.4", dst_port=port), "boost"
            )
        assert controller.stats.rules_requested == 255
        assert controller.stats.control_messages == 255
