"""Million-subscriber control-plane scale experiment (PR 8).

Measures the three claims ``benchmarks/reports/controlplane_1m.json``
records for the sharded control plane
(:class:`~repro.core.cp.ShardedControlPlane`):

1. **Sustained ops/s per shard count** — the same seeded churn schedule
   (Zipf-active subscribers from a
   :class:`~repro.study.population.SubscriberPopulation`, Fig. 2 app
   skew, 70/20/10 acquire/renew/revoke) is replayed closed-loop against
   1/2/4 shards, and ungated against the single-threaded PR-0
   :class:`~repro.core.server.CookieServer` baseline.
2. **p50/p99 acquisition latency** — an asyncio *open-loop* generator
   fires arrivals on the schedule's Poisson clock regardless of how the
   server is keeping up, so queueing delay (and shedding past the
   pending cap) shows up in the percentiles instead of hiding in a
   slowed-down generator.
3. **Revocation-to-enforcement lag** — a live
   :class:`~repro.services.zerorate.ZeroRatingMiddlebox` verifies
   cookies against a registered replica while descriptors are revoked,
   including a replica that returns from a partition after the log was
   compacted (snapshot-then-replay), and the worst observed lag is
   checked against the advertised staleness bound.

Used by ``benchmarks/test_controlplane_scale.py`` (assertions + report)
and ``python -m repro controlplane`` (human-readable table; the CI soak
runs it at 50k subscribers).
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Sequence

from ..core.cookie import Cookie
from ..core.descriptor import CookieDescriptor
from ..core.errors import AcquisitionDenied
from ..core.generator import CookieGenerator
from ..core.matcher import CookieMatcher
from ..core.cp import ShardedControlPlane, VerifierReplica
from ..core.server import CookieServer, ServiceOffering
from ..study.population import ChurnEvent, SubscriberPopulation

__all__ = [
    "run_controlplane",
    "format_controlplane_report",
    "DEFAULT_SHARD_COUNTS",
]

DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_SUBSCRIBERS = 1_000_000
DEFAULT_CHURN_EVENTS = 30_000
DEFAULT_OPEN_LOOP_OPS = 4_000
DEFAULT_OPEN_LOOP_RATE = 2_000.0
DEFAULT_STALENESS_BOUND = 0.25
#: Schedule-time arrival rate for the closed-loop churn (only spacing,
#: not pacing: closed-loop replay goes as fast as the server allows).
SCHEDULE_RATE = 5_000.0


def _offerings(population: SubscriberPopulation) -> list[ServiceOffering]:
    return [
        ServiceOffering(name=name, lifetime=3600.0)
        for name in population.service_names
    ]


class _LiveIds:
    """Tracks which descriptor ids each subscriber currently holds, so
    renew/revoke intents in the schedule resolve to real ids."""

    def __init__(self) -> None:
        self._held: dict[int, list[int]] = {}

    def grant(self, subscriber: int, cookie_id: int) -> None:
        self._held.setdefault(subscriber, []).append(cookie_id)

    def peek(self, subscriber: int) -> int | None:
        ids = self._held.get(subscriber)
        return ids[-1] if ids else None

    def take(self, subscriber: int) -> int | None:
        ids = self._held.get(subscriber)
        return ids.pop() if ids else None


def _replay_closed_loop(
    controlplane: ShardedControlPlane,
    events: Sequence[ChurnEvent],
    batch_size: int = 512,
) -> dict[str, Any]:
    """Drive the schedule as fast as the control plane takes it.

    Acquires and revokes batch per chunk (the wire protocol's batch
    frames); renewals run through the honest two-step
    :meth:`~repro.core.cp.ShardedControlPlane.renew` path.
    """
    live = _LiveIds()
    counts = {
        "acquired": 0,
        "renewed": 0,
        "revoked": 0,
        "denied": 0,
        # revoke intents for subscribers holding nothing: no-ops.
        "skipped": 0,
    }
    start = time.perf_counter()
    for chunk_start in range(0, len(events), batch_size):
        chunk = events[chunk_start : chunk_start + batch_size]
        acquires: list[tuple[str, str]] = []
        acquire_subs: list[int] = []
        revoke_ids: list[int] = []
        for event in chunk:
            user = f"sub-{event.subscriber}"
            if event.kind == "acquire":
                acquires.append((user, event.service))
                acquire_subs.append(event.subscriber)
            elif event.kind == "renew":
                old = live.peek(event.subscriber)
                if old is None:
                    acquires.append((user, event.service))
                    acquire_subs.append(event.subscriber)
                    continue
                try:
                    descriptor = controlplane.renew(user, old)
                except AcquisitionDenied:
                    counts["denied"] += 1
                else:
                    live.grant(event.subscriber, descriptor.cookie_id)
                    counts["renewed"] += 1
            else:  # revoke
                cookie_id = live.take(event.subscriber)
                if cookie_id is not None:
                    revoke_ids.append(cookie_id)
                else:
                    counts["skipped"] += 1
        if acquires:
            for subscriber, result in zip(
                acquire_subs, controlplane.acquire_batch(acquires)
            ):
                if result["ok"]:
                    counts["acquired"] += 1
                    live.grant(
                        subscriber, int(result["descriptor"]["cookie_id"])
                    )
                else:
                    counts["denied"] += 1
        if revoke_ids:
            counts["revoked"] += sum(controlplane.revoke_batch(revoke_ids))
    elapsed = time.perf_counter() - start
    ops = counts["acquired"] + counts["renewed"] + counts["revoked"]
    return {
        **counts,
        "ops": ops,
        "elapsed_s": round(elapsed, 6),
        "ops_per_s": round(ops / elapsed) if elapsed > 0 else 0,
    }


def _replay_baseline(
    server: CookieServer, events: Sequence[ChurnEvent]
) -> dict[str, Any]:
    """The same schedule against the single-threaded CookieServer."""
    live = _LiveIds()
    counts = {
        "acquired": 0,
        "renewed": 0,
        "revoked": 0,
        "denied": 0,
        "skipped": 0,
    }
    start = time.perf_counter()
    for event in events:
        user = f"sub-{event.subscriber}"
        try:
            if event.kind == "acquire":
                descriptor = server.acquire(user, event.service)
                live.grant(event.subscriber, descriptor.cookie_id)
                counts["acquired"] += 1
            elif event.kind == "renew":
                old = live.peek(event.subscriber)
                if old is None:
                    descriptor = server.acquire(user, event.service)
                    live.grant(event.subscriber, descriptor.cookie_id)
                    counts["acquired"] += 1
                else:
                    descriptor = server.renew(user, old)
                    live.grant(event.subscriber, descriptor.cookie_id)
                    counts["renewed"] += 1
            else:
                cookie_id = live.take(event.subscriber)
                if cookie_id is None:
                    counts["skipped"] += 1
                elif server.revoke(cookie_id):
                    counts["revoked"] += 1
        except AcquisitionDenied:
            counts["denied"] += 1
    elapsed = time.perf_counter() - start
    ops = counts["acquired"] + counts["renewed"] + counts["revoked"]
    return {
        **counts,
        "ops": ops,
        "elapsed_s": round(elapsed, 6),
        "ops_per_s": round(ops / elapsed) if elapsed > 0 else 0,
    }


async def _open_loop(
    controlplane: ShardedControlPlane,
    requests: list[tuple[str, str]],
    rate: float,
) -> dict[str, Any]:
    """Open-loop acquisition latency: arrivals at ``rate``/s no matter
    what; admitted requests run as tasks, latency measured from the
    *scheduled* arrival (so backlog counts), overload gets shed."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    shed = 0
    pending: set[asyncio.Task] = set()
    start = loop.time()
    interarrival = 1.0 / rate

    def work(scheduled: float, user: str, service: str) -> None:
        try:
            controlplane.acquire_batch([(user, service)])
            latencies.append(loop.time() - scheduled)
        finally:
            controlplane.release()

    async def run_one(scheduled: float, user: str, service: str) -> None:
        work(scheduled, user, service)

    for index, (user, service) in enumerate(requests):
        scheduled = start + index * interarrival
        now = loop.time()
        if now < scheduled:
            await asyncio.sleep(scheduled - now)
        elif index % 64 == 0:
            # Behind schedule: yield so admitted tasks can drain (the
            # arrival process itself never slows down).
            await asyncio.sleep(0)
        gate = controlplane.admit()
        if gate is not None:
            shed += 1
            continue
        task = loop.create_task(run_one(scheduled, user, service))
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending)
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "ops": len(requests),
        "rate_per_s": rate,
        "completed": len(latencies),
        "shed": shed,
        "p50_ms": round(pct(0.50) * 1e3, 3),
        "p99_ms": round(pct(0.99) * 1e3, 3),
        "max_ms": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
    }


def _revocation_drill(
    controlplane: ShardedControlPlane,
    population: SubscriberPopulation,
    partition_hold_s: float = 0.05,
) -> dict[str, Any]:
    """Revocation-to-enforcement lag against a live zero-rating middlebox.

    Two registered replicas back two middleboxes.  Phase 1 revokes with
    everyone reachable (eager broadcast).  Phase 2 partitions one
    replica, revokes behind its back, compacts the log past its offset,
    then heals — forcing the snapshot-then-replay catch-up path — and
    checks the middlebox over *that* replica rejects the revoked
    descriptor too.
    """
    from ..netsim.packet import make_tcp_packet
    from ..services.zerorate import ZeroRatingMiddlebox
    from ..core.transport import default_registry

    clock = time.monotonic
    replicas = [
        controlplane.register_replica(VerifierReplica(f"verifier-{i}"))
        for i in range(2)
    ]
    middleboxes = [
        ZeroRatingMiddlebox(CookieMatcher(replica.store), clock=clock)
        for replica in replicas
    ]
    flow_port = [5000]

    def middlebox_grants_free(
        middlebox: ZeroRatingMiddlebox, descriptor: CookieDescriptor
    ) -> bool:
        """Fresh cookied flow; did its bytes count as free?"""
        flow_port[0] += 1
        cookie: Cookie = CookieGenerator(descriptor, clock).generate()
        packet = make_tcp_packet(
            "10.0.0.7", flow_port[0], "93.184.216.34", 443, payload_size=600
        )
        default_registry().attach(packet, cookie)
        before = sum(c.free_bytes for c in middlebox.counters.values())
        middlebox.handle(packet)
        after = sum(c.free_bytes for c in middlebox.counters.values())
        return after > before

    service = population.service_names[0]
    target = controlplane.acquire("drill-user", service)
    controlplane.sync_replicas()
    enforced_before = [
        middlebox_grants_free(mb, target) for mb in middleboxes
    ]

    # Phase 1: revoke with everyone reachable (eager broadcast path).
    assert controlplane.revoke(target.cookie_id)
    stale = CookieDescriptor.from_json(target.to_json())  # pre-revocation key
    enforced_after = [
        not middlebox_grants_free(mb, stale) for mb in middleboxes
    ]
    eager_lag = controlplane.max_broadcast_lag()

    # Phase 2: partition replica 1, revoke behind its back, compact the
    # log past its offset, heal, and let anti-entropy catch it up.
    victim = replicas[1]
    victim.partition()
    target2 = controlplane.acquire("drill-user", service)
    controlplane.sync_replicas()  # replica 0 learns it; victim cannot
    revoke_started = clock()
    assert controlplane.revoke(target2.cookie_id)
    time.sleep(partition_hold_s)  # the partition endures
    controlplane.compact_logs(aggressive=True)
    victim.heal()
    controlplane.sync_replicas()
    partition_lag = clock() - revoke_started
    stale2 = CookieDescriptor.from_json(target2.to_json())
    caught_up = not middlebox_grants_free(middleboxes[1], stale2)
    victim_descriptor = victim.store.get(target2.cookie_id)

    max_lag = controlplane.max_broadcast_lag()
    result = {
        "replicas": len(replicas),
        "enforced_before_revocation": all(enforced_before),
        "enforced_after_revocation": all(enforced_after),
        "eager_lag_s": round(eager_lag, 6),
        "partition_hold_s": partition_hold_s,
        "partition_lag_s": round(partition_lag, 6),
        "partition_caught_up": bool(
            caught_up
            and victim_descriptor is not None
            and victim_descriptor.revoked
        ),
        "snapshot_catchups": controlplane.stats.snapshot_catchups,
        "max_broadcast_lag_s": round(max_lag, 6),
        "staleness_bound_s": controlplane.staleness_bound,
        "within_bound": max_lag <= controlplane.staleness_bound,
    }
    for replica in replicas:
        controlplane.unregister_replica(replica.name)
    return result


def run_controlplane(
    subscribers: int = DEFAULT_SUBSCRIBERS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    churn_events: int = DEFAULT_CHURN_EVENTS,
    open_loop_ops: int = DEFAULT_OPEN_LOOP_OPS,
    open_loop_rate: float = DEFAULT_OPEN_LOOP_RATE,
    mode: str = "auto",
    seed: int = 20160822,
    staleness_bound: float = DEFAULT_STALENESS_BOUND,
) -> dict[str, Any]:
    """The full experiment; returns the JSON-ready report."""
    population = SubscriberPopulation(subscribers, seed=seed)
    offerings = _offerings(population)
    events = population.take_events(churn_events, rate=SCHEDULE_RATE)
    open_loop_events = population.take_events(
        open_loop_ops, rate=open_loop_rate, mix=(1.0, 0.0, 0.0)
    )
    open_loop_requests = [
        (f"sub-{event.subscriber}", event.service)
        for event in open_loop_events
    ]

    report: dict[str, Any] = {
        "subscribers": subscribers,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "mode_requested": mode,
        "staleness_bound_s": staleness_bound,
        "workload": {
            "churn_events": len(events),
            "event_mix": "70/20/10 acquire/renew/revoke",
            "services": len(population.service_names),
            "open_loop_ops": open_loop_ops,
            "open_loop_rate_per_s": open_loop_rate,
        },
        "configs": [],
    }

    baseline_server = CookieServer(clock=time.monotonic)
    for offering in offerings:
        baseline_server.offer(offering)
    baseline = _replay_baseline(baseline_server, events)
    report["baseline"] = {"server": "CookieServer", **baseline}

    by_shards: dict[int, dict[str, Any]] = {}
    for shards in shard_counts:
        controlplane = ShardedControlPlane(
            clock=time.monotonic,
            shards=shards,
            mode=mode,
            staleness_bound=staleness_bound,
        )
        try:
            for offering in offerings:
                controlplane.offer(offering)
            closed = _replay_closed_loop(controlplane, events)
            open_loop = asyncio.run(
                _open_loop(controlplane, open_loop_requests, open_loop_rate)
            )
            config = {
                "shards": shards,
                "mode": controlplane.mode,
                "degraded": any(
                    s.get("degraded", False)
                    for s in controlplane.shard_stats()
                ),
                "closed_loop": closed,
                "open_loop": open_loop,
            }
            if shards == max(shard_counts):
                config["revocation"] = _revocation_drill(
                    controlplane, population
                )
                report["revocation"] = config.pop("revocation")
        finally:
            controlplane.close()
        by_shards[shards] = config
        report["configs"].append(config)

    base = by_shards.get(1)
    for config in by_shards.values():
        if base is not None and base["closed_loop"]["elapsed_s"] > 0:
            config["speedup_vs_1_shard"] = round(
                base["closed_loop"]["elapsed_s"]
                / config["closed_loop"]["elapsed_s"],
                3,
            )
        if baseline["elapsed_s"] > 0:
            config["speedup_vs_baseline"] = round(
                baseline["elapsed_s"] / config["closed_loop"]["elapsed_s"], 3
            )
    return report


def format_controlplane_report(report: dict[str, Any]) -> str:
    """An aligned table for humans (the CLI and the CI step summary)."""
    workload = report["workload"]
    lines = [
        f"{report['subscribers']:,} subscribers, "
        f"{workload['churn_events']:,} churn ops "
        f"({workload['event_mix']}), {workload['services']} services, "
        f"{report['cpu_count']} CPU core(s)",
        f"baseline CookieServer: "
        f"{report['baseline']['ops_per_s']:,} ops/s",
        f"{'config':<26}{'ops/s':>10}{'p50 ms':>9}{'p99 ms':>9}"
        f"{'shed':>7}{'vs 1 shard':>12}{'vs baseline':>13}",
    ]
    for config in report["configs"]:
        name = f"{config['shards']} shard(s) [{config['mode']}]"
        if config.get("degraded"):
            name += " degraded"
        open_loop = config["open_loop"]
        vs_one = config.get("speedup_vs_1_shard")
        vs_base = config.get("speedup_vs_baseline")
        lines.append(
            f"{name:<26}{config['closed_loop']['ops_per_s']:>10,}"
            f"{open_loop['p50_ms']:>9.2f}{open_loop['p99_ms']:>9.2f}"
            f"{open_loop['shed']:>7}"
            f"{(f'{vs_one:.2f}x' if vs_one else '—'):>12}"
            f"{(f'{vs_base:.2f}x' if vs_base else '—'):>13}"
        )
    revocation = report.get("revocation")
    if revocation:
        lines.append(
            f"revocation: eager lag {revocation['eager_lag_s'] * 1e3:.2f} ms, "
            f"partition recovery {revocation['partition_lag_s'] * 1e3:.1f} ms "
            f"(held {revocation['partition_hold_s'] * 1e3:.0f} ms), "
            f"max {revocation['max_broadcast_lag_s'] * 1e3:.1f} ms "
            f"vs bound {revocation['staleness_bound_s'] * 1e3:.0f} ms — "
            + ("WITHIN BOUND" if revocation["within_bound"] else "EXCEEDED")
        )
    return "\n".join(lines)
