"""Boost service tests: agent preferences, daemon enforcement, QoS plans."""

import pytest

from repro.core import CookieMatcher, DescriptorStore
from repro.core.switch import CookieSwitch
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.netsim.topology import HomeNetwork, HomeNetworkConfig
from repro.services.boost import (
    BOOST_SERVICE,
    BoostAgent,
    BoostDaemon,
    CapacityEstimator,
    ThrottlePlan,
    make_boost_server,
)
from repro.web.browser import Browser
from repro.web.page import PageModel, ResourceFlow, ServerInfo


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _page(domain="example.com", flows=2):
    page = PageModel(domain=domain)
    for i in range(flows):
        page.add(
            ResourceFlow(
                server=ServerInfo(
                    hostname=f"s{i}.{domain}", ip=f"9.9.9.{i + 1}", operator="ex"
                ),
                response_packets=3,
            )
        )
    return page


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def boost_env(clock):
    server, _db = make_boost_server(clock=clock)
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    agent = BoostAgent("resident", clock=clock, channel=server.handle_request)
    return server, store, agent


class TestAgentPreferences:
    def test_always_boost_inserts_cookies(self, boost_env, clock):
        _server, store, agent = boost_env
        agent.always_boost("example.com")
        browser = Browser(clock=clock)
        agent.attach(browser)
        browser.load_page(browser.open_tab("example.com"), _page())
        assert agent.cookies_inserted == 2  # one per flow

    def test_unboosted_site_untouched(self, boost_env, clock):
        _server, _store, agent = boost_env
        agent.always_boost("other.com")
        browser = Browser(clock=clock)
        agent.attach(browser)
        browser.load_page(browser.open_tab("example.com"), _page())
        assert agent.cookies_inserted == 0
        assert agent.requests_seen == 2

    def test_boost_tab(self, boost_env, clock):
        _server, _store, agent = boost_env
        browser = Browser(clock=clock)
        agent.attach(browser)
        tab = browser.open_tab("anything.com")
        agent.boost_tab(tab)
        browser.load_page(tab, _page(domain="whatever.net"))
        assert agent.cookies_inserted == 2

    def test_tab_boost_expires_after_an_hour(self, boost_env, clock):
        _server, _store, agent = boost_env
        browser = Browser(clock=clock)
        agent.attach(browser)
        tab = browser.open_tab("x.com")
        agent.boost_tab(tab)
        clock.now = 3700.0
        browser.load_page(tab, _page())
        assert agent.cookies_inserted == 0

    def test_tab_boost_ends_when_tab_closes(self, boost_env, clock):
        _server, _store, agent = boost_env
        browser = Browser(clock=clock)
        agent.attach(browser)
        tab = browser.open_tab("x.com")
        agent.boost_tab(tab)
        browser.close_tab(tab)
        browser.load_page(tab, _page())
        assert agent.cookies_inserted == 0

    def test_remove_always_boost(self, boost_env):
        _server, _store, agent = boost_env
        agent.always_boost("example.com")
        agent.remove_always_boost("example.com")
        assert agent.boosted_websites == []

    def test_preference_case_insensitive(self, boost_env, clock):
        _server, _store, agent = boost_env
        agent.always_boost("Example.COM")
        browser = Browser(clock=clock)
        agent.attach(browser)
        browser.load_page(browser.open_tab("example.com"), _page())
        assert agent.cookies_inserted == 2

    def test_preferences_snapshot(self, boost_env):
        _server, _store, agent = boost_env
        agent.always_boost("a.com")
        snapshot = agent.preferences.snapshot()
        assert snapshot["always_boost"] == ["a.com"]


class TestAgentToSwitch:
    def test_inserted_cookies_verify_at_switch(self, boost_env, clock):
        _server, store, agent = boost_env
        agent.always_boost("example.com")
        browser = Browser(clock=clock)
        agent.attach(browser)
        packets = browser.load_page(browser.open_tab("example.com"), _page())
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        sink = Sink()
        switch >> sink
        for packet in packets:
            switch.push(packet)
        boosted = [p for p in sink.packets if p.meta.get("qos_class") == 0]
        assert len(boosted) == len(packets)  # reverse flows covered too


class TestDaemon:
    def _env(self, clock):
        loop = EventLoop()
        server, _db = make_boost_server(clock=lambda: loop.now)
        store = DescriptorStore()
        server.attach_enforcement_store(store)
        daemon = BoostDaemon(loop, store)
        home = HomeNetwork(
            loop,
            config=HomeNetworkConfig(),
            middleboxes=[daemon.switch],
        )
        daemon.attach(home)
        return loop, server, store, daemon, home

    def _cookied_packet(self, server, loop, sport=5000):
        from repro.core.generator import CookieGenerator
        from repro.core.transport import default_registry

        descriptor = server.acquire("resident", BOOST_SERVICE)
        packet = make_tcp_packet(
            "203.0.113.5", 443, "192.168.1.50", sport, payload_size=100
        )
        cookie = CookieGenerator(descriptor, clock=lambda: loop.now).generate()
        default_registry().attach(packet, cookie)
        return packet, descriptor

    def test_boost_activates_throttle(self, clock):
        loop, server, _store, daemon, home = self._env(clock)
        packet, _descriptor = self._cookied_packet(server, loop)
        home.send_from_wan(packet)
        assert daemon.boost_active
        assert home.throttle_active

    def test_boost_expires(self, clock):
        loop, server, _store, daemon, home = self._env(clock)
        packet, _descriptor = self._cookied_packet(server, loop)
        home.send_from_wan(packet)
        loop.run(until=daemon.boost_lifetime + 1.0)
        assert not daemon.boost_active
        assert not home.throttle_active

    def test_last_one_wins(self, clock):
        loop, server, _store, daemon, home = self._env(clock)
        first, first_descriptor = self._cookied_packet(server, loop, sport=5000)
        second, second_descriptor = self._cookied_packet(server, loop, sport=6000)
        home.send_from_wan(first)
        home.send_from_wan(second)
        assert daemon.active_descriptor_id == second_descriptor.cookie_id
        assert daemon.superseded_events == 1

    def test_cancel_boost(self, clock):
        loop, server, _store, daemon, home = self._env(clock)
        packet, _descriptor = self._cookied_packet(server, loop)
        home.send_from_wan(packet)
        daemon.cancel_boost()
        assert not daemon.boost_active
        assert not home.throttle_active
        daemon.cancel_boost()  # idempotent

    def test_boosted_packets_stamped_fast_lane(self, clock):
        loop, server, _store, daemon, home = self._env(clock)
        packet, _descriptor = self._cookied_packet(server, loop)
        home.send_from_wan(packet)
        loop.run_until_idle()
        assert packet.meta.get("qos_class") == 0
        assert packet.meta.get("qos_class_name") == "video"


class TestQosPlans:
    def test_throttle_plan_matches_paper_scenario(self):
        """6 Mb/s line with the default plan yields the 1 Mb/s throttle."""
        plan = ThrottlePlan()
        assert plan.throttle_rate(6_000_000) == pytest.approx(1_000_000)

    def test_floor_respected(self):
        plan = ThrottlePlan(floor_bps=500_000)
        assert plan.throttle_rate(1_000_000) == 500_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottlePlan(reserve_fraction=1.5)
        with pytest.raises(ValueError):
            ThrottlePlan(floor_bps=0)
        with pytest.raises(ValueError):
            ThrottlePlan().throttle_rate(0)

    def test_capacity_estimator_converges(self):
        loop = EventLoop()
        estimator = CapacityEstimator(
            loop, true_capacity=lambda: 6e6, interval=10.0, noise=0.05
        )
        estimator.start()
        loop.run(until=300.0)
        estimator.stop()
        assert estimator.probes_run >= 30
        assert estimator.estimate == pytest.approx(6e6, rel=0.1)

    def test_estimator_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            CapacityEstimator(loop, true_capacity=lambda: 1.0, interval=0)
        with pytest.raises(ValueError):
            CapacityEstimator(loop, true_capacity=lambda: 1.0, noise=1.5)


class TestBoostServer:
    def test_descriptor_expires_with_boost_event(self, clock):
        server, _db = make_boost_server(clock=clock, lifetime=3600.0)
        descriptor = server.acquire("resident", BOOST_SERVICE)
        assert descriptor.attributes.expires_at == 3600.0
        assert descriptor.attributes.shared  # router may cache for devices

    def test_persistent_store(self, clock, tmp_path):
        path = str(tmp_path / "boost.db")
        server, db = make_boost_server(clock=clock, db_path=path)
        descriptor = server.acquire("resident", BOOST_SERVICE)
        assert db is not None
        assert db.get(descriptor.cookie_id) is not None
        db.close()


class TestBoostOverWmm:
    def test_boost_wins_on_wmm_downlink(self):
        """Fig. 5(b)'s mechanism with the prototype's actual queue: the
        WMM video category instead of strict priority."""
        from repro.core.generator import CookieGenerator
        from repro.core.transport import default_registry
        from repro.netsim.middlebox import FunctionElement
        from repro.netsim.tcpmodel import TcpTransfer

        loop = EventLoop()
        server, _db = make_boost_server(clock=lambda: loop.now)
        store = DescriptorStore()
        server.attach_enforcement_store(store)
        daemon = BoostDaemon(loop, store)
        home = HomeNetwork(
            loop,
            config=HomeNetworkConfig(use_wmm=True, throttle_bps=None),
            middleboxes=[daemon.switch],
        )
        daemon.attach(home)
        descriptor = server.acquire("resident", BOOST_SERVICE)
        generator = CookieGenerator(descriptor, clock=lambda: loop.now)
        registry = default_registry()

        def tag(packet):
            if packet.meta.get("boosted") and packet.meta.get("segment", 9) < 2:
                registry.attach(packet, generator.generate())
            return packet

        tagger = FunctionElement(tag)
        tagger >> home.wan_ingress
        boosted = TcpTransfer(
            loop, tagger, size_bytes=150_000, dst_port=50_001,
            meta={"boosted": True},
        )
        plain = TcpTransfer(loop, home.wan_ingress, size_bytes=150_000,
                            dst_port=50_002)
        boosted.start()
        plain.start()
        loop.run(until=60.0)
        assert boosted.completed and plain.completed
        assert boosted.completion_time < plain.completion_time
