"""Ablation — flow-granularity vs packet-granularity cookies (§4.6).

The paper: "if every packet carries a cookie, flow-related state is
eliminated (in the expense of bandwidth overhead and higher matching
rates)".  This ablation quantifies that trade on the same workload:

- flow mode: one cookie per flow, per-flow state, cheap map path;
- packet mode: a cookie on *every* packet, zero flow state, a signature
  verification per packet plus ~52 B of wire overhead each.
"""

import time

import pytest

from repro.core import CookieMatcher, DescriptorStore
from repro.core.attributes import CookieAttributes, Granularity
from repro.trace.moongen import PacketGenerator, build_descriptor_pool
from repro.services.zerorate import ZeroRatingMiddlebox

FLOWS = 120
PACKETS_PER_FLOW = 50
PACKET_SIZE = 512


def _run_flow_mode():
    store = DescriptorStore()
    pool = build_descriptor_pool(200, store)
    clock = time.perf_counter
    middlebox = ZeroRatingMiddlebox(CookieMatcher(store, nct=600.0), clock=clock)
    generator = PacketGenerator(
        pool, clock=clock, packet_size=PACKET_SIZE, packets_per_flow=PACKETS_PER_FLOW
    )
    packets = list(generator.packets(FLOWS))
    start = clock()
    for packet in packets:
        middlebox.handle(packet)
    elapsed = clock() - start
    overhead = sum(p.wire_length for p in packets) - FLOWS * PACKETS_PER_FLOW * PACKET_SIZE
    return {
        "pps": len(packets) / elapsed,
        "flow_state": middlebox.tracked_flows,
        "verifications": middlebox.cookie_hits + middlebox.cookie_misses,
        "overhead_bytes": overhead,
    }


def _run_packet_mode():
    """Every packet carries its own cookie; the stateless rater judges
    each one independently (the §4.6 'packet-based cookies' mode)."""
    from repro.core.descriptor import CookieDescriptor
    from repro.core.generator import CookieGenerator
    from repro.core.transport import default_registry
    from repro.netsim.packet import make_tcp_packet
    from repro.services.zerorate import StatelessZeroRater

    store = DescriptorStore()
    descriptor = store.add(
        CookieDescriptor.create(
            service_data="zero-rate",
            attributes=CookieAttributes(granularity=Granularity.PACKET),
        )
    )
    clock = time.perf_counter
    rater = StatelessZeroRater(CookieMatcher(store, nct=600.0), clock=clock)
    registry = default_registry()
    generator = CookieGenerator(descriptor, clock)
    packets = []
    for flow in range(FLOWS):
        for _ in range(PACKETS_PER_FLOW):
            packet = make_tcp_packet(
                "10.0.0.1", 1024 + flow, "93.184.216.34", 443,
                payload_size=PACKET_SIZE - 40, encrypted=True,
            )
            registry.attach(packet, generator.generate())
            packets.append(packet)
    start = clock()
    for packet in packets:
        rater.handle(packet)
    elapsed = clock() - start
    overhead = sum(p.wire_length for p in packets) - FLOWS * PACKETS_PER_FLOW * PACKET_SIZE
    return {
        "pps": len(packets) / elapsed,
        "flow_state": rater.tracked_flows,
        "verifications": rater.cookie_hits + rater.cookie_misses,
        "overhead_bytes": overhead,
    }


def test_ablation_granularity(benchmark, report):
    flow_mode = benchmark.pedantic(_run_flow_mode, rounds=1, iterations=1)
    packet_mode = _run_packet_mode()
    total_packets = FLOWS * PACKETS_PER_FLOW

    report("granularity ablation (same workload, 512 B packets, 50 ppf)")
    report(f"{'':<22}{'flow-mode':>12}{'packet-mode':>13}")
    for key in ("pps", "flow_state", "verifications", "overhead_bytes"):
        report(f"{key:<22}{flow_mode[key]:>12,.0f}{packet_mode[key]:>13,.0f}")

    benchmark.extra_info["flow_mode_pps"] = round(flow_mode["pps"])
    benchmark.extra_info["packet_mode_pps"] = round(packet_mode["pps"])

    # Packet mode eliminates flow state but pays per-packet verification
    # and per-packet wire overhead.
    assert packet_mode["flow_state"] == 0
    assert flow_mode["flow_state"] == FLOWS
    assert packet_mode["verifications"] == total_packets
    assert flow_mode["verifications"] == FLOWS
    assert packet_mode["overhead_bytes"] > flow_mode["overhead_bytes"] * 10
    assert flow_mode["pps"] > packet_mode["pps"]
    # Overhead arithmetic: ~52 B (TCP option, padded) per cookied packet.
    per_packet = packet_mode["overhead_bytes"] / total_packets
    assert per_packet == pytest.approx(52, abs=8)
