"""Ablation — hardware pre-filtering + flow offload (§4.6).

"The hardware could detect and forward to software only packets that
contain cookies ... It could further verify the timestamp and look the
cookie id against a table of known descriptors."  And once software has
resolved a flow, the rest of the flow can be handled by a hardware flow
entry.

This ablation replays the same cookie workload through the software-only
middlebox and through the co-designed pipeline, and reports how much of
the load ever reaches software.
"""

import time

from repro.core import CookieMatcher, DescriptorStore
from repro.core.offload import HardwarePrefilter
from repro.netsim.middlebox import Sink
from repro.services.zerorate import ZeroRatingMiddlebox, flow_key_to_fivetuple
from repro.trace.moongen import PacketGenerator, build_descriptor_pool

FLOWS = 150
PACKETS_PER_FLOW = 50
PACKET_SIZE = 512


def _packets(store, clock):
    pool = build_descriptor_pool(300, store)
    generator = PacketGenerator(
        pool, clock=clock, packet_size=PACKET_SIZE,
        packets_per_flow=PACKETS_PER_FLOW,
    )
    return list(generator.packets(FLOWS))


def _run_software_only():
    clock = time.perf_counter
    store = DescriptorStore()
    packets = _packets(store, clock)
    middlebox = ZeroRatingMiddlebox(CookieMatcher(store, nct=600.0), clock=clock)
    start = clock()
    for packet in packets:
        middlebox.handle(packet)
    elapsed = clock() - start
    return {
        "elapsed": elapsed,
        "software_packets": middlebox.packets_processed,
        "total": len(packets),
        "pps": len(packets) / elapsed,
    }


def _run_co_design():
    clock = time.perf_counter
    store = DescriptorStore()
    packets = _packets(store, clock)
    prefilter = HardwarePrefilter(store, clock=clock, nct=600.0)
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store, nct=600.0),
        clock=clock,
        on_flow_resolved=lambda key, _state: prefilter.offload_flow(
            flow_key_to_fivetuple(key)
        ),
    )
    prefilter.software(middlebox)
    prefilter.fast(Sink(keep=False))
    start = clock()
    for packet in packets:
        prefilter.push(packet)
    elapsed = clock() - start
    return {
        "elapsed": elapsed,
        "software_packets": middlebox.packets_processed,
        "total": len(packets),
        "pps": len(packets) / elapsed,
        "offloaded_flows": prefilter.offloaded_flows,
        "offload_hits": prefilter.stats.offloaded_hits,
    }


def test_ablation_hw_offload(benchmark, report):
    co_design = benchmark.pedantic(_run_co_design, rounds=1, iterations=1)
    software = _run_software_only()

    report("hardware offload ablation "
           f"({FLOWS} flows x {PACKETS_PER_FLOW} packets, cookie per flow)")
    report(f"{'':<26}{'software-only':>15}{'hw co-design':>14}")
    report(f"{'packets into software':<26}{software['software_packets']:>15,}"
           f"{co_design['software_packets']:>14,}")
    report(f"{'pipeline pps':<26}{software['pps']:>15,.0f}"
           f"{co_design['pps']:>14,.0f}")
    report(f"offloaded flows: {co_design['offloaded_flows']:,}; "
           f"hardware hits: {co_design['offload_hits']:,}")

    benchmark.extra_info["software_only_sw_packets"] = software["software_packets"]
    benchmark.extra_info["co_design_sw_packets"] = co_design["software_packets"]

    total = FLOWS * PACKETS_PER_FLOW
    # Software-only touches every packet; the co-design touches only each
    # flow's first (cookie-bearing) packet.
    assert software["software_packets"] == total
    assert co_design["software_packets"] == FLOWS
    assert co_design["offloaded_flows"] == FLOWS
    assert co_design["offload_hits"] == total - FLOWS
    # Software load shrinks by the flow length factor.
    reduction = software["software_packets"] / co_design["software_packets"]
    assert reduction == PACKETS_PER_FLOW
