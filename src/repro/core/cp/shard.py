"""One control-plane shard: a descriptor store + its delta log.

A shard owns every descriptor whose cookie id rendezvous-hashes to it
(:func:`~repro.core.distributed.rendezvous_shard` — the same placement
the data-plane pools use, so a control-plane shard and its data-plane
counterpart agree on ownership for free).  The dispatcher mints cookie
ids and routes; the shard authorizes, stores, and logs.

Every successful mutation appends a :class:`~.deltalog.DeltaRecord`, so
``shard.snapshot()`` + ``shard.deltas_since(offset)`` is always a
complete replication feed.

:meth:`ControlPlaneShard.handle` is the shard's whole wire surface — the
in-process service calls it directly, and :func:`shard_worker_main`
serves the identical dict protocol over a :mod:`multiprocessing` pipe,
one shard per worker process (PROTOCOL.md §14.4).
"""

from __future__ import annotations

import secrets
from typing import Any, Callable

from ..attributes import CookieAttributes
from ..descriptor import COOKIE_ID_BITS, CookieDescriptor
from ..errors import AcquisitionDenied
from ..policy import AccessPolicy, AcquisitionRequest, OpenAccessPolicy
from ..server import ServiceOffering
from ..store import DescriptorStore
from .deltalog import DeltaLog, LogTruncated, StoreSnapshot

__all__ = ["ControlPlaneShard", "shard_worker_main"]


class ControlPlaneShard:
    """Store + delta log + policy for one rendezvous shard."""

    def __init__(
        self,
        index: int,
        policy: AccessPolicy | None = None,
        store: Any | None = None,
    ) -> None:
        self.index = index
        self.policy = policy if policy is not None else OpenAccessPolicy()
        self.store = store if store is not None else DescriptorStore()
        self.log = DeltaLog()
        self.offerings: dict[str, ServiceOffering] = {}
        # Flat ints on the op path; the service folds them into telemetry.
        self.acquired = 0
        self.denied = 0
        self.revoked = 0
        self.removed = 0
        self.renew_lookups = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def offer(self, offering: ServiceOffering) -> None:
        self.offerings[offering.name] = offering

    def withdraw_offering(self, name: str) -> None:
        self.offerings.pop(name, None)

    # ------------------------------------------------------------------
    # Mutations (each appends to the delta log)
    # ------------------------------------------------------------------
    def acquire(
        self,
        user: str,
        service: str,
        now: float,
        cookie_id: int | None = None,
        credentials: dict[str, Any] | None = None,
        preferences: dict[str, Any] | None = None,
    ) -> CookieDescriptor:
        """Authorize and issue a descriptor; raises AcquisitionDenied.

        ``cookie_id`` is normally pre-minted by the dispatcher (that is
        what routed the call here); a bare shard mints its own.
        """
        offering = self.offerings.get(service)
        if offering is None:
            self.denied += 1
            raise AcquisitionDenied(f"service {service!r} is not offered")
        request = AcquisitionRequest(
            user=user,
            service=service,
            credentials=dict(credentials or {}),
            preferences=dict(preferences or {}),
            time=now,
        )
        try:
            self.policy.authorize(request)
        except AcquisitionDenied:
            self.denied += 1
            raise
        descriptor = CookieDescriptor(
            cookie_id=(
                cookie_id
                if cookie_id is not None
                else secrets.randbits(COOKIE_ID_BITS)
            ),
            key=secrets.token_bytes(32),
            service_data=(
                offering.service_data
                if offering.service_data is not None
                else offering.name
            ),
            attributes=offering.build_attributes(now),
        )
        self.store.add(descriptor)
        self.log.append("add", descriptor.cookie_id, now, descriptor.to_json())
        self.policy.on_granted(request)
        self.acquired += 1
        return descriptor

    def revoke(self, cookie_id: int, now: float) -> bool:
        if not self.store.revoke(cookie_id):
            return False
        self.log.append("revoke", cookie_id, now)
        self.revoked += 1
        return True

    def remove(self, cookie_id: int, now: float) -> bool:
        if self.store.remove(cookie_id) is None:
            return False
        self.log.append("remove", cookie_id, now)
        self.removed += 1
        return True

    def purge_expired(self, now: float) -> list[int]:
        """Drop expired descriptors, logging a ``remove`` for each so
        replicas converge; returns the dropped ids."""
        stale = [
            d.cookie_id for d in self.store if d.attributes.is_expired(now)
        ]
        for cookie_id in stale:
            self.store.remove(cookie_id)
            self.log.append("remove", cookie_id, now)
            self.removed += 1
        return stale

    def lookup(self, cookie_id: int) -> CookieDescriptor | None:
        return self.store.get(cookie_id)

    # ------------------------------------------------------------------
    # Replication feed
    # ------------------------------------------------------------------
    def snapshot(self) -> StoreSnapshot:
        return StoreSnapshot.take(self.store, self.log.next_offset)

    def deltas_since(self, offset: int):
        """Raises :class:`~.deltalog.LogTruncated` past the horizon."""
        return self.log.since(offset)

    def compact_to(self, offset: int) -> int:
        return self.log.compact_to(offset)

    def stats(self) -> dict[str, int]:
        return {
            "shard": self.index,
            "acquired": self.acquired,
            "denied": self.denied,
            "revoked": self.revoked,
            "removed": self.removed,
            "descriptors": len(self.store),
            "log_len": len(self.log),
            "log_base": self.log.base_offset,
            "log_next": self.log.next_offset,
        }

    # ------------------------------------------------------------------
    # Wire surface (in-process dispatch and the worker pipe protocol)
    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one §14.4 shard frame; never raises."""
        op = request.get("op")
        try:
            if op == "acquire_batch":
                now = float(request["now"])
                descriptors: list[dict[str, Any] | None] = []
                errors: list[str | None] = []
                for entry in request["requests"]:
                    user, service, cookie_id = entry[0], entry[1], entry[2]
                    try:
                        descriptor = self.acquire(
                            str(user),
                            str(service),
                            now,
                            cookie_id=int(cookie_id),
                            credentials=entry[3] if len(entry) > 3 else None,
                            preferences=entry[4] if len(entry) > 4 else None,
                        )
                    except AcquisitionDenied as exc:
                        descriptors.append(None)
                        errors.append(str(exc))
                    else:
                        descriptors.append(descriptor.to_json())
                        errors.append(None)
                return {
                    "ok": True,
                    "descriptors": descriptors,
                    "errors": errors,
                    "next_offset": self.log.next_offset,
                }
            if op == "revoke_batch":
                now = float(request["now"])
                revoked = [
                    self.revoke(int(cid), now) for cid in request["cookie_ids"]
                ]
                return {
                    "ok": True,
                    "revoked": revoked,
                    "next_offset": self.log.next_offset,
                }
            if op == "remove_batch":
                now = float(request["now"])
                removed = [
                    self.remove(int(cid), now) for cid in request["cookie_ids"]
                ]
                return {
                    "ok": True,
                    "removed": removed,
                    "next_offset": self.log.next_offset,
                }
            if op == "purge_expired":
                removed_ids = self.purge_expired(float(request["now"]))
                return {
                    "ok": True,
                    "removed_ids": removed_ids,
                    "next_offset": self.log.next_offset,
                }
            if op == "lookup":
                descriptor = self.lookup(int(request["cookie_id"]))
                return {
                    "ok": True,
                    "descriptor": None if descriptor is None else descriptor.to_json(),
                }
            if op == "snapshot":
                return {"ok": True, "snapshot": self.snapshot().to_json()}
            if op == "deltas_since":
                try:
                    records = self.deltas_since(int(request["offset"]))
                except LogTruncated as exc:
                    return {"ok": False, "truncated": True, "error": str(exc)}
                return {
                    "ok": True,
                    "records": [r.to_json() for r in records],
                    "next_offset": self.log.next_offset,
                }
            if op == "compact_to":
                return {"ok": True, "dropped": self.compact_to(int(request["offset"]))}
            if op == "offer":
                self.offer(_offering_from_json(request["offering"]))
                return {"ok": True}
            if op == "withdraw":
                self.withdraw_offering(str(request["name"]))
                return {"ok": True}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}


def _offering_from_json(data: dict[str, Any]) -> ServiceOffering:
    """Rebuild an offering in a worker process.

    Only the JSON-shaped fields travel; an ``attribute_factory`` closure
    cannot cross a process boundary, so process mode supports the
    lifetime-based default (the service refuses to ship anything else).
    """
    return ServiceOffering(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        lifetime=data.get("lifetime"),
        service_data=data.get("service_data"),
        extra=dict(data.get("extra", {})),
    )


def offering_to_json(offering: ServiceOffering) -> dict[str, Any]:
    return {
        "name": offering.name,
        "description": offering.description,
        "lifetime": offering.lifetime,
        "service_data": offering.service_data,
        "extra": offering.extra,
    }


def shard_worker_main(conn: Any, index: int, policy: AccessPolicy | None) -> None:
    """Worker entry point: serve one shard's §14.4 frames over a pipe.

    The parent retains the authoritative delta log + mirror, so a killed
    worker is re-seeded with an ``install`` frame on respawn.
    """
    shard = ControlPlaneShard(index, policy=policy)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        op = request.get("op")
        if op == "quit":
            try:
                conn.send({"ok": True})
            except (BrokenPipeError, OSError):
                pass
            break
        if op == "install":
            snapshot = StoreSnapshot.from_json(request["snapshot"])
            snapshot.install(shard.store)
            shard.log = DeltaLog(base_offset=snapshot.offset)
            response: dict[str, Any] = {"ok": True, "installed": len(snapshot.descriptors)}
        else:
            response = shard.handle(request)
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
    conn.close()
