"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the timing pytest-benchmark records, each test writes the reproduced
rows/series to ``benchmarks/reports/<name>.txt`` so the reproduction can be
inspected after a run (pytest captures stdout of passing tests), and stores
headline numbers in ``benchmark.extra_info``.
"""

from __future__ import annotations

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture
def report(request):
    """A writer that persists the reproduced figure/table."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{request.node.name}.txt"
    lines: list[str] = []

    def write(text: str = "") -> None:
        lines.append(str(text))

    yield write
    path.write_text("\n".join(lines) + "\n")
