#!/usr/bin/env python3
"""Quickstart: the complete network-cookie workflow in one script.

Walks the paper's §4.2 workflow end to end:

1. the network advertises a service on its cookie server;
2. a user agent discovers it and acquires a cookie descriptor;
3. the agent mints single-use cookies and attaches them to packets;
4. a cookie-enabled switch verifies them and binds the flow (and its
   reverse) to the fast lane;
5. replay, forgery, and revocation are all demonstrated failing safely.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    CookieServer,
    DescriptorStore,
    ServiceOffering,
    UserAgent,
    default_registry,
)
from repro.core.switch import CookieSwitch
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet


def main() -> None:
    clock_value = [0.0]
    clock = lambda: clock_value[0]  # noqa: E731

    # 1. The ISP's well-known cookie server advertises a fast lane.
    server = CookieServer(clock=clock)
    server.offer(
        ServiceOffering(
            name="Boost",
            description="fast lane over the last mile",
            lifetime=3600.0,
        )
    )
    enforcement_store = DescriptorStore()
    server.attach_enforcement_store(enforcement_store)
    print("services advertised:", [s["name"] for s in server.list_services()])

    # 2. The user agent discovers and acquires a descriptor out-of-band.
    agent = UserAgent("alice", clock=clock, channel=server.handle_request)
    descriptor = agent.acquire("Boost")
    print(f"acquired descriptor id={descriptor.cookie_id:#x}, "
          f"expires at t={descriptor.attributes.expires_at}")

    # 3. Attach a cookie to an HTTPS request (TLS ClientHello carrier).
    packet = make_tcp_packet(
        "192.168.1.100", 50_000, "203.0.113.5", 443,
        content=TLSClientHello(sni="video.example.com"), payload_size=300,
    )
    transport = agent.insert_cookie(packet, "Boost")
    print(f"cookie attached via the {transport!r} carrier "
          f"({packet.wire_length} wire bytes)")

    # 4. The network switch verifies and binds the flow to the service.
    switch = CookieSwitch(CookieMatcher(enforcement_store), clock=clock)
    sink = Sink()
    switch >> sink
    switch.push(packet)
    print("forward packet served:", sink.packets[0].meta.get("service"))

    reverse = make_tcp_packet(
        "203.0.113.5", 443, "192.168.1.100", 50_000, payload_size=1400,
    )
    switch.push(reverse)
    print("reverse packet served:", sink.packets[1].meta.get("service"),
          "(no cookie needed: the flow is bound)")

    # 5a. Replay: an eavesdropper re-sends an overheard cookie.
    registry = default_registry()
    overheard = agent.generate_cookie("Boost")
    matcher = switch.matcher
    print("replay attempt:",
          "accepted" if matcher.match(overheard, clock()) else "rejected",
          "then",
          "accepted" if matcher.match(overheard, clock()) else "rejected")

    # 5b. Forgery: a cookie signed with the wrong key.
    forged = CookieGenerator(
        CookieDescriptor(cookie_id=descriptor.cookie_id, key=b"wrong-key"),
        clock,
    ).generate()
    print("forged cookie:",
          "accepted" if matcher.match(forged, clock()) else "rejected")

    # 5c. Revocation: the user withdraws; new cookies stop working.
    agent.request_revocation("Boost")
    stale = CookieGenerator(descriptor, clock).generate()
    print("post-revocation cookie:",
          "accepted" if matcher.match(stale, clock()) else "rejected")

    print("\nverifier stats:", matcher.stats.as_dict())
    print("audit trail:", server.audit_log.regulator_report())


if __name__ == "__main__":
    main()
