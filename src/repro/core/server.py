"""The well-known cookie server (§4.2, component 2).

The server advertises the special services the network offers, issues
cookie descriptors under a pluggable access policy, registers each issued
descriptor with the network's enforcement stores so switches can verify
cookies, and records everything in the audit log.

The API surface is a single :meth:`CookieServer.handle_request` taking and
returning JSON-shaped dicts — the paper's "downloaded over an (optionally
authenticated) out-of-band mechanism (e.g., a JSON API)".  Transports wrap
it: in-process calls for simulations, and
:class:`repro.core.netserver.AsyncCookieServer` for a real TCP service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .attributes import CookieAttributes
from .audit import AuditEvent, AuditLog
from .descriptor import CookieDescriptor
from .errors import AcquisitionDenied
from .policy import AccessPolicy, AcquisitionRequest, OpenAccessPolicy

__all__ = ["ServiceOffering", "CookieServer"]


@dataclass
class ServiceOffering:
    """One advertised network service.

    ``attribute_factory`` builds the attribute block for each grant (so,
    e.g., expirations are relative to grant time); ``describe`` is the
    human-readable advertisement.
    """

    name: str
    description: str = ""
    lifetime: float | None = 3600.0  # descriptor validity; Boost's default 1 h
    service_data: Any = None
    attribute_factory: Callable[[float], CookieAttributes] | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def build_attributes(self, now: float) -> CookieAttributes:
        if self.attribute_factory is not None:
            return self.attribute_factory(now)
        expires = None if self.lifetime is None else now + self.lifetime
        return CookieAttributes(expires_at=expires)

    def advertisement(self) -> dict[str, Any]:
        """The JSON the server advertises for this offering."""
        return {
            "name": self.name,
            "description": self.description,
            "lifetime": self.lifetime,
            **self.extra,
        }


class CookieServer:
    """Issues descriptors for advertised services under an access policy."""

    def __init__(
        self,
        clock: Callable[[], float],
        policy: AccessPolicy | None = None,
        audit_log: AuditLog | None = None,
    ) -> None:
        self.clock = clock
        self.policy = policy if policy is not None else OpenAccessPolicy()
        # `is not None`: an empty AuditLog is falsy through __len__.
        self.audit_log = audit_log if audit_log is not None else AuditLog()
        self.offerings: dict[str, ServiceOffering] = {}
        self.issued: dict[int, CookieDescriptor] = {}
        self._enforcement_stores: list[Any] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def offer(self, offering: ServiceOffering) -> ServiceOffering:
        """Advertise a service."""
        self.offerings[offering.name] = offering
        return offering

    def withdraw_offering(self, name: str) -> None:
        """Stop advertising a service (already-issued descriptors remain
        valid until expiry or revocation)."""
        self.offerings.pop(name, None)

    def attach_enforcement_store(self, store: Any) -> None:
        """Register a descriptor store used by data-path verifiers; every
        issued descriptor is mirrored into it so switches can match."""
        self._enforcement_stores.append(store)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def list_services(self) -> list[dict[str, Any]]:
        """The advertisement published on the well-known server."""
        return [o.advertisement() for o in self.offerings.values()]

    def acquire(
        self,
        user: str,
        service: str,
        credentials: dict[str, Any] | None = None,
        preferences: dict[str, Any] | None = None,
    ) -> CookieDescriptor:
        """Issue a descriptor for ``service`` to ``user``.

        Raises :class:`AcquisitionDenied` when the service is unknown or
        the policy refuses.  On success the descriptor is mirrored to all
        enforcement stores and the grant is audited.
        """
        now = self.clock()
        request = AcquisitionRequest(
            user=user,
            service=service,
            credentials=dict(credentials or {}),
            preferences=dict(preferences or {}),
            time=now,
        )
        self.audit_log.record(now, AuditEvent.REQUESTED, user, service)
        offering = self.offerings.get(service)
        if offering is None:
            self.audit_log.record(
                now, AuditEvent.DENIED, user, service, reason="unknown service"
            )
            raise AcquisitionDenied(f"service {service!r} is not offered")
        try:
            self.policy.authorize(request)
        except AcquisitionDenied as exc:
            self.audit_log.record(
                now, AuditEvent.DENIED, user, service, reason=str(exc)
            )
            raise
        descriptor = CookieDescriptor.create(
            service_data=offering.service_data
            if offering.service_data is not None
            else offering.name,
            attributes=offering.build_attributes(now),
        )
        self.issued[descriptor.cookie_id] = descriptor
        for store in self._enforcement_stores:
            store.add(descriptor)
        self.policy.on_granted(request)
        self.audit_log.record(
            now,
            AuditEvent.GRANTED,
            user,
            service,
            cookie_id=descriptor.cookie_id,
            expires_at=descriptor.attributes.expires_at,
        )
        return descriptor

    def revoke(self, cookie_id: int, by: str = "network") -> bool:
        """Revoke an issued descriptor everywhere; returns success.

        Either side may call this: users "ask the network to invalidate a
        descriptor (in case they cannot control the application)" and the
        network "can similarly stop matching against a cookie".
        """
        descriptor = self.issued.get(cookie_id)
        if descriptor is None:
            return False
        descriptor.revoke()
        for store in self._enforcement_stores:
            store.revoke(cookie_id)
        self.audit_log.record(
            self.clock(),
            AuditEvent.REVOKED,
            by,
            str(descriptor.service_data),
            cookie_id=cookie_id,
        )
        return True

    def renew(
        self,
        user: str,
        cookie_id: int,
        credentials: dict[str, Any] | None = None,
    ) -> CookieDescriptor:
        """Replace an expiring descriptor with a fresh one for the same
        service ("a cookie descriptor typically lasts hours or days, and is
        renewed by the user as needed")."""
        old = self.issued.get(cookie_id)
        if old is None:
            raise AcquisitionDenied(f"descriptor {cookie_id:#x} unknown")
        service = str(old.service_data)
        new = self.acquire(user, service, credentials=credentials)
        self.audit_log.record(
            self.clock(),
            AuditEvent.RENEWED,
            user,
            service,
            cookie_id=new.cookie_id,
            replaces=cookie_id,
        )
        return new

    # ------------------------------------------------------------------
    # JSON API
    # ------------------------------------------------------------------
    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one JSON API call.

        Operations: ``list_services``, ``acquire``, ``revoke``, ``renew``.
        Responses carry ``ok`` plus either the result or an ``error``.
        """
        op = request.get("op")
        try:
            if op == "list_services":
                return {"ok": True, "services": self.list_services()}
            if op == "acquire":
                descriptor = self.acquire(
                    user=str(request.get("user", "anonymous")),
                    service=str(request.get("service", "")),
                    credentials=request.get("credentials"),
                    preferences=request.get("preferences"),
                )
                return {"ok": True, "descriptor": descriptor.to_json()}
            if op == "revoke":
                revoked = self.revoke(
                    int(request["cookie_id"]),
                    by=str(request.get("user", "network")),
                )
                return {"ok": revoked, "error": None if revoked else "unknown id"}
            if op == "renew":
                descriptor = self.renew(
                    user=str(request.get("user", "anonymous")),
                    cookie_id=int(request["cookie_id"]),
                    credentials=request.get("credentials"),
                )
                return {"ok": True, "descriptor": descriptor.to_json()}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except AcquisitionDenied as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
