"""Audit soak: the full personas x elements campaign at the pinned CI
seed.  Excluded from tier-1 (like the chaos soak) via the ``audit``
marker; CI runs it in the dedicated audit job with ``-m audit``."""

import json

import pytest

from repro.audit import AUDIT_SEED, PERSONAS
from repro.experiments.audit import (
    AuditCampaignConfig,
    AuditCampaignReport,
    run_audit,
)
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.audit


@pytest.fixture(scope="module")
def report() -> AuditCampaignReport:
    return run_audit(AuditCampaignConfig())


def test_campaign_is_clean_end_to_end(report):
    assert report.ok, report.violations
    assert report.false_positives == []
    assert report.missed_personas == []


def test_campaign_covers_the_full_matrix(report):
    verdicts = report.verdicts
    honest = [v for v in verdicts if v["persona"] == "honest"]
    assert {v["element"] for v in honest} == {
        "zerorate-stateful", "zerorate-stateless", "boost", "anylink",
    }
    flagged_personas = {
        v["persona"] for v in verdicts if v["persona"] != "honest"
    }
    assert flagged_personas == set(PERSONAS)
    assert all(v["flagged"] for v in verdicts if v["persona"] != "honest")


def test_campaign_report_is_deterministic(report):
    again = run_audit(AuditCampaignConfig())
    assert report.to_json() == again.to_json()
    assert report.config["seed"] == AUDIT_SEED


def test_campaign_json_feeds_ci(report):
    data = json.loads(report.to_json())
    assert set(data) >= {"config", "ok", "violations", "verdicts"}
    assert data["ok"] is True
    assert data["violations"] == []
    summary = report.summary()
    assert summary["ok"] and summary["honest_clean"]
    assert summary["personas_missed"] == 0
    rows = report.table_rows()
    assert len(rows) == len(report.verdicts)
    for row in rows:
        assert {"persona", "element", "expected", "verdict", "ok"} <= set(row)
        assert row["ok"] == "yes"


def test_campaign_telemetry_merges_into_registry(report):
    registry = MetricsRegistry()
    run_audit(AuditCampaignConfig(), telemetry=registry)
    snapshot = registry.snapshot()
    assert snapshot.counters["audit.audits"] == len(report.verdicts)
    assert snapshot.counters["audit.personas_missed"] == 0
    assert snapshot.counters["audit.false_positives"] == 0
    assert snapshot.gauges["audit.ok"] == 1
