"""DPI engine tests: classification paths and structural limitations."""

from repro.baselines.dpi import DpiBooster, DpiEngine
from repro.baselines.dpi_rules import DpiRule, NDPI_KNOWN_APPS, default_rule_db
from repro.netsim.appmsg import HTTPRequest, TLSClientHello
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet, make_udp_packet


def _tls(sni, sport=5000, dst="1.2.3.4"):
    return make_tcp_packet(
        "10.0.0.1", sport, dst, 443, content=TLSClientHello(sni=sni)
    )


class TestRules:
    def test_suffix_matching(self):
        rule = DpiRule("youtube", sni_suffixes=("youtube.com",))
        assert rule.matches_name("www.youtube.com")
        assert rule.matches_name("youtube.com")
        assert not rule.matches_name("notyoutube.com")
        assert not rule.matches_name("youtube.com.evil.example")

    def test_case_insensitive(self):
        rule = DpiRule("cnn", sni_suffixes=("cnn.com",))
        assert rule.matches_name("WWW.CNN.COM")

    def test_ip_prefix(self):
        rule = DpiRule("x", ip_prefixes=("10.1.",))
        assert rule.matches_ip("10.1.2.3")
        assert not rule.matches_ip("10.2.2.3")

    def test_default_db_covers_popular_apps(self):
        apps = {rule.app for rule in default_rule_db()}
        for expected in ("youtube", "netflix", "facebook", "cnn", "spotify"):
            assert expected in apps

    def test_default_db_misses_the_tail(self):
        apps = {rule.app for rule in default_rule_db()}
        assert "skai" not in apps
        assert "indie103" not in apps

    def test_ndpi_known_apps_is_23(self):
        assert len(NDPI_KNOWN_APPS) == 23


class TestClassification:
    def test_sni_classification(self):
        engine = DpiEngine()
        assert engine.label_of(_tls("www.youtube.com")) == "youtube"

    def test_http_host_classification(self):
        engine = DpiEngine()
        packet = make_tcp_packet(
            "10.0.0.1", 5000, "1.2.3.4", 80, content=HTTPRequest(host="www.cnn.com")
        )
        assert engine.label_of(packet) == "cnn"

    def test_encrypted_payload_invisible(self):
        engine = DpiEngine()
        packet = make_tcp_packet(
            "10.0.0.1", 5000, "1.2.3.4", 443, payload_size=1000, encrypted=True
        )
        assert engine.label_of(packet) is None

    def test_port_classification(self):
        engine = DpiEngine()
        packet = make_udp_packet("10.0.0.1", 5000, "8.8.8.8", 53, payload_size=60)
        assert engine.label_of(packet) == "dns"

    def test_unknown_site_unlabelled(self):
        engine = DpiEngine()
        assert engine.label_of(_tls("www.skai.gr")) is None

    def test_googlevideo_attributed_to_youtube(self):
        """The false-positive mechanism: an embedded player's CDN flows
        carry googlevideo SNI and are labelled youtube regardless of the
        embedding page."""
        engine = DpiEngine()
        assert engine.label_of(_tls("r3.googlevideo.com")) == "youtube"

    def test_flow_label_sticks(self):
        engine = DpiEngine()
        hello = _tls("www.youtube.com", sport=6000)
        engine.label_of(hello)
        # Later opaque packet of the same flow keeps the label.
        data = make_tcp_packet(
            "10.0.0.1", 6000, "1.2.3.4", 443, payload_size=1200, encrypted=True
        )
        assert engine.label_of(data) == "youtube"

    def test_reverse_direction_shares_label(self):
        engine = DpiEngine()
        engine.label_of(_tls("www.youtube.com", sport=6001))
        reverse = make_tcp_packet(
            "1.2.3.4", 443, "10.0.0.1", 6001, payload_size=1200, encrypted=True
        )
        assert engine.label_of(reverse) == "youtube"

    def test_label_only_within_sniff_window(self):
        engine = DpiEngine()
        for _ in range(9):
            opaque = make_tcp_packet(
                "10.0.0.1", 6002, "1.2.3.4", 443, payload_size=100, encrypted=True
            )
            engine.label_of(opaque)
        late_hello = _tls("www.youtube.com", sport=6002)
        assert engine.label_of(late_hello) is None

    def test_recognizes(self):
        engine = DpiEngine()
        assert engine.recognizes("youtube")
        assert not engine.recognizes("skai")

    def test_stats(self):
        engine = DpiEngine()
        engine.label_of(_tls("www.youtube.com"))
        assert engine.stats.flows_labelled == 1
        assert engine.stats.packets_labelled == 1


class TestBooster:
    def test_boosts_target_app(self):
        engine = DpiEngine()
        booster = DpiBooster(engine, target_app="youtube")
        sink = Sink()
        booster >> sink
        booster.push(_tls("www.youtube.com"))
        booster.push(_tls("www.cnn.com", sport=5001))
        assert sink.packets[0].meta.get("qos_class") == 0
        assert "qos_class" not in sink.packets[1].meta
        assert booster.boosted == 1
