"""Stateful property tests: implementations against abstract models.

Two hypothesis state machines:

- :class:`ReplayCacheMachine` checks the cache's contract — a uuid seen
  within one coherency window MUST be remembered; one older than two
  windows MUST be forgotten; in between either is acceptable (the
  timestamp check makes it irrelevant).
- :class:`StoreParityMachine` drives the in-memory and SQLite descriptor
  stores with identical operations and demands identical observable
  state.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.attributes import CookieAttributes
from repro.core.descriptor import CookieDescriptor
from repro.core.matcher import ReplayCache
from repro.core.store import DescriptorStore, SQLiteDescriptorStore

WINDOW = 5.0


class ReplayCacheMachine(RuleBasedStateMachine):
    """Drives the cache with monotonically advancing time."""

    def __init__(self):
        super().__init__()
        self.cache = ReplayCache(window=WINDOW)
        self.now = 0.0
        self.recorded: dict[bytes, float] = {}

    @rule(advance=st.floats(0.0, 12.0))
    def pass_time(self, advance):
        self.now += advance

    @rule(tag=st.integers(0, 30))
    def record(self, tag):
        uuid = tag.to_bytes(16, "big")
        self.cache.record(uuid, self.now)
        self.recorded[uuid] = self.now

    @rule(tag=st.integers(0, 30))
    def check(self, tag):
        uuid = tag.to_bytes(16, "big")
        seen = self.cache.seen_before(uuid, self.now)
        recorded_at = self.recorded.get(uuid)
        if recorded_at is None:
            assert not seen, "never-recorded uuid reported as seen"
            return
        age = self.now - recorded_at
        if age < WINDOW:
            assert seen, f"uuid recorded {age:.2f}s ago (< window) forgotten"
        elif age >= 2 * WINDOW:
            assert not seen, f"uuid recorded {age:.2f}s ago (>= 2 windows) retained"
        # Between one and two windows: either outcome is contract-legal.

    @invariant()
    def memory_is_bounded(self):
        # Never more than everything recorded (sanity) — tighter bounds
        # are covered by the ablation benchmark.
        assert self.cache.size <= max(len(self.recorded), 1) * 2


TestReplayCacheContract = ReplayCacheMachine.TestCase


class StoreParityMachine(RuleBasedStateMachine):
    """In-memory and SQLite stores must be observationally identical."""

    descriptors = Bundle("descriptors")

    def __init__(self):
        super().__init__()
        self.memory = DescriptorStore()
        self.sqlite = SQLiteDescriptorStore(":memory:")

    def teardown(self):
        self.sqlite.close()

    @rule(target=descriptors, expiry=st.one_of(st.none(), st.floats(0, 100)))
    def add(self, expiry):
        descriptor = CookieDescriptor.create(
            service_data="svc",
            attributes=CookieAttributes(expires_at=expiry),
        )
        self.memory.add(descriptor)
        self.sqlite.add(descriptor)
        return descriptor

    @rule(descriptor=descriptors)
    def get_parity(self, descriptor):
        a = self.memory.get(descriptor.cookie_id)
        b = self.sqlite.get(descriptor.cookie_id)
        assert (a is None) == (b is None)
        if a is not None and b is not None:
            assert a.key == b.key
            assert a.revoked == b.revoked
            assert a.attributes.expires_at == b.attributes.expires_at

    @rule(descriptor=descriptors)
    def revoke(self, descriptor):
        assert self.memory.revoke(descriptor.cookie_id) == self.sqlite.revoke(
            descriptor.cookie_id
        )

    @rule(descriptor=descriptors)
    def remove(self, descriptor):
        a = self.memory.remove(descriptor.cookie_id)
        b = self.sqlite.remove(descriptor.cookie_id)
        assert (a is None) == (b is None)

    @rule(now=st.floats(0, 200))
    def purge(self, now):
        assert self.memory.purge_expired(now) == self.sqlite.purge_expired(now)

    @invariant()
    def same_size(self):
        assert len(self.memory) == len(self.sqlite)


TestStoreParity = StoreParityMachine.TestCase
