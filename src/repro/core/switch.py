"""The cookie-enabled switch / middlebox element (§4.2, component 3).

This is the data-path box: it watches traffic, finds cookies in the first
few packets of each flow (the Boost daemon "sniffs the first 3 incoming
packets for each flow"), verifies them, and binds the flow — and, when the
descriptor says so, its reverse — to the granted service.  Subsequent
packets of a bound flow skip cookie work entirely and are simply mapped,
which is what makes the paper's Fig. 4 throughput scale with flow length.

Service application is pluggable: the default applier stamps
``meta['qos_class']`` / ``meta['service']`` for local enforcement;
:class:`DscpServiceApplier` instead writes DSCP bits so an internal
mechanism enforces the service elsewhere (the paper's "Cookie→DSCP
mapping" deployment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..netsim.events import EventLoop
from ..netsim.flow import FiveTuple, Flow, FlowTable
from ..netsim.middlebox import Element
from ..netsim.packet import Packet
from .attributes import Granularity
from .descriptor import CookieDescriptor
from .generator import CookieGenerator
from .errors import CookieError, TransportError
from .matcher import CookieMatcher
from .transport.registry import TransportRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..telemetry import MetricsRegistry

__all__ = ["CookieSwitch", "DscpServiceApplier", "SwitchStats", "FAST_LANE_CLASS"]

FAST_LANE_CLASS = 0
DEFAULT_SNIFF_PACKETS = 3

ServiceApplier = Callable[[CookieDescriptor, Packet], None]


def _default_applier(descriptor: CookieDescriptor, packet: Packet) -> None:
    """Stamp local-enforcement metadata: fast-lane class + service name."""
    packet.meta["qos_class"] = FAST_LANE_CLASS
    packet.meta["service"] = descriptor.service_data


class DscpServiceApplier:
    """Applies services by writing DSCP bits instead of local metadata.

    ``service_to_dscp`` maps ``service_data`` values to code points; the
    switch at the edge looks up cookies once and the rest of the network
    needs only plain DiffServ — cookies used purely as the trusted
    *expression* mechanism.
    """

    def __init__(self, service_to_dscp: dict[Any, int], default_dscp: int = 0) -> None:
        self.service_to_dscp = dict(service_to_dscp)
        self.default_dscp = default_dscp
        self.marked = 0

    def __call__(self, descriptor: CookieDescriptor, packet: Packet) -> None:
        dscp = self.service_to_dscp.get(descriptor.service_data, self.default_dscp)
        if packet.ip is not None:
            packet.set_dscp(dscp)
            self.marked += 1
        packet.meta["service"] = descriptor.service_data


@dataclass
class SwitchStats:
    """Data-path counters for one switch."""

    packets: int = 0
    packets_sniffed: int = 0
    cookies_found: int = 0
    cookies_accepted: int = 0
    cookies_rejected: int = 0
    flows_bound: int = 0
    packets_served: int = 0
    acks_attached: int = 0


class CookieSwitch(Element):
    """A flow-aware element that verifies cookies and applies services."""

    def __init__(
        self,
        matcher: CookieMatcher,
        loop: EventLoop | None = None,
        clock: Callable[[], float] | None = None,
        registry: TransportRegistry | None = None,
        applier: ServiceApplier | None = None,
        sniff_packets: int = DEFAULT_SNIFF_PACKETS,
        flow_idle_timeout: float = 60.0,
        context: dict[str, Any] | None = None,
        telemetry: "MetricsRegistry | None" = None,
        telemetry_prefix: str = "switch",
        name: str = "cookie-switch",
    ) -> None:
        super().__init__(name)
        if loop is None and clock is None:
            raise ValueError("provide an event loop or a clock")
        self.matcher = matcher
        self.clock: Callable[[], float] = clock or (lambda: loop.now)  # type: ignore[union-attr]
        self.registry = registry or default_registry()
        self.applier = applier or _default_applier
        if sniff_packets < 1:
            raise ValueError("must sniff at least one packet per flow")
        self.sniff_packets = sniff_packets
        self.flows = FlowTable(idle_timeout=flow_idle_timeout)
        #: What this switch can attest about itself (network name, region,
        #: domain, ...), matched against descriptor constraint attributes.
        self.context: dict[str, Any] = dict(context or {})
        self.stats = SwitchStats()
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "switch"
    ) -> None:
        """Export :class:`SwitchStats` plus flow-table occupancy into a
        metrics registry, as a collector named ``prefix`` (idempotent)."""
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            stats = self.stats
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.packets": stats.packets,
                    f"{prefix}.packets_sniffed": stats.packets_sniffed,
                    f"{prefix}.cookies_found": stats.cookies_found,
                    f"{prefix}.cookies_accepted": stats.cookies_accepted,
                    f"{prefix}.cookies_rejected": stats.cookies_rejected,
                    f"{prefix}.flows_bound": stats.flows_bound,
                    f"{prefix}.packets_served": stats.packets_served,
                    f"{prefix}.acks_attached": stats.acks_attached,
                    f"{prefix}.flows_evicted": self.flows.evicted_count,
                },
                gauges={f"{prefix}.tracked_flows": len(self.flows)},
            )

        registry.register_collector(prefix, collect)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        now = self.clock()
        self.stats.packets += 1
        try:
            flow, _is_new = self.flows.observe(packet, now)
        except ValueError:
            # Non-IP traffic passes through untouched.
            self.emit(packet)
            return

        if flow.service is not None:
            self._serve_bound(flow, packet, now)
            self.emit(packet)
            return

        if flow.packets <= self.sniff_packets:
            self.stats.packets_sniffed += 1
            self._try_cookie(flow, packet, now)
        self.emit(packet)

    def process_batch(self, packets: list[Packet]) -> None:
        """Batched data path: the whole vector shares one clock reading.

        State transitions (flow table, bindings, stats) are identical to
        a scalar left-to-right pass at the same instant — including
        intra-batch effects such as a cookie on packet *i* binding the
        flow that packet *i+1* then rides as a bound flow.  Surviving
        packets are forwarded downstream as one batch.
        """
        now = self.clock()
        stats = self.stats
        observe = self.flows.observe
        sniff_packets = self.sniff_packets
        out: list[Packet] = []
        append = out.append
        for packet in packets:
            stats.packets += 1
            try:
                flow, _is_new = observe(packet, now)
            except ValueError:
                append(packet)
                continue
            if flow.service is not None:
                self._serve_bound(flow, packet, now)
            elif flow.packets <= sniff_packets:
                stats.packets_sniffed += 1
                self._try_cookie(flow, packet, now)
            append(packet)
        self.emit_batch(out)

    def _try_cookie(self, flow: Flow, packet: Packet, now: float) -> None:
        # A packet may carry several composed cookies (e.g. one per access
        # network); act on the first one THIS switch's store recognizes
        # and whose constraints this switch's context satisfies.
        descriptor = None
        for cookie, _transport in self.registry.extract_all(packet):
            self.stats.cookies_found += 1
            candidate = self.matcher.match(cookie, now)
            if candidate is None:
                self.stats.cookies_rejected += 1
                continue
            if not candidate.attributes.matches_context(self.context):
                self.stats.cookies_rejected += 1
                continue
            descriptor = candidate
            break
        if descriptor is None:
            return
        self.stats.cookies_accepted += 1
        attributes = descriptor.attributes
        if attributes.granularity is Granularity.PACKET:
            # One-shot service: this packet only, no flow state at all.
            self.applier(descriptor, packet)
            self.stats.packets_served += 1
            return
        flow.service = descriptor
        flow.annotations["bound_direction"] = FiveTuple.of_packet(packet)
        if attributes.delivery_guarantee:
            flow.annotations["needs_ack"] = True
        self.stats.flows_bound += 1
        self.applier(descriptor, packet)
        self.stats.packets_served += 1

    def _serve_bound(self, flow: Flow, packet: Packet, now: float) -> None:
        descriptor: CookieDescriptor = flow.service
        if not descriptor.is_usable(now):
            # Revocation/expiry takes effect mid-flow: drop the binding.
            flow.service = None
            flow.annotations.pop("needs_ack", None)
            return
        direction = FiveTuple.of_packet(packet)
        is_reverse = direction != flow.annotations.get("bound_direction")
        if is_reverse and flow.annotations.pop("needs_ack", False):
            # The delivery guarantee is about the *forward* service having
            # been applied, so the ack rides the first reverse packet even
            # when the descriptor does not service the reverse direction.
            self._attach_ack(descriptor, packet)
        if is_reverse and not descriptor.attributes.apply_reverse:
            return
        self.applier(descriptor, packet)
        self.stats.packets_served += 1

    def _attach_ack(self, descriptor: CookieDescriptor, packet: Packet) -> None:
        """Network delivery guarantee: acknowledge on reverse traffic.

        The switch holds the descriptor, so it generates a fresh ack cookie
        and attaches it to the first reverse packet.  Failure to attach is
        non-fatal — the client will then warn the user, per the paper.
        """
        try:
            ack = CookieGenerator(descriptor, self.clock).generate()
            self.registry.attach(
                packet, ack, allowed=descriptor.attributes.transports
            )
            self.stats.acks_attached += 1
        except (CookieError, TransportError):
            pass
