"""Fig. 1 — which websites would home users prioritize?

Paper: 161 of 400 homes (40 %) installed Boost; 43 % of expressed
preferences were unique; the median popularity index of prioritized
websites was 223; the head holds popular US video sites, the tail a VoIP
service, foreign on-demand video, and a ticketing site.
"""

import pytest

from repro.study import BoostStudy, PUBLISHED_FIG1


@pytest.fixture(scope="module")
def study_result():
    return BoostStudy(seed=2016).run()


def test_fig1_deployment_and_preferences(benchmark, report, study_result):
    result = benchmark(lambda: BoostStudy(seed=2016).run())

    report("Fig. 1 — boosted websites across the deployment")
    report(f"homes offered {result.homes_offered}, installed "
           f"{result.homes_installed} ({result.install_rate:.0%})")
    report(f"expressed preferences: {result.total_preferences} over "
           f"{len(result.site_counts)} distinct sites")
    report(f"unique-preference fraction: "
           f"{result.unique_preference_fraction:.2f}  (paper: 0.43)")
    report(f"median popularity index: "
           f"{result.median_popularity_index:.0f}  (paper: 223)")
    report()
    report(f"{'site':<28}{'homes':>6}{'rank':>8}")
    for domain, homes, rank in result.figure1_rows():
        if not domain.startswith("tail-site-"):
            report(f"{domain:<28}{homes:>6}{rank:>8}")
    singles = sum(1 for c in result.site_counts.values() if c == 1)
    report(f"... plus {singles} websites each picked by a single home")

    benchmark.extra_info["install_rate"] = round(result.install_rate, 3)
    benchmark.extra_info["unique_fraction"] = round(
        result.unique_preference_fraction, 3
    )
    benchmark.extra_info["median_rank"] = result.median_popularity_index

    # Shape assertions against the published aggregates.
    assert result.install_rate == pytest.approx(
        PUBLISHED_FIG1["install_rate"], abs=0.06
    )
    assert result.unique_preference_fraction == pytest.approx(
        PUBLISHED_FIG1["unique_preference_fraction"], abs=0.07
    )
    assert 120 <= result.median_popularity_index <= 400


def test_fig1_heavy_tail_holds_across_seeds(benchmark, report):
    """The heavy tail is not a seed artifact: it holds for every seed."""

    def sweep():
        return [BoostStudy(seed=2016 + s).run() for s in range(5)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("seed sweep: unique fraction / median rank")
    for i, result in enumerate(results):
        report(f"seed {2016 + i}: {result.unique_preference_fraction:.3f} / "
               f"{result.median_popularity_index:.0f}")
        assert 0.3 <= result.unique_preference_fraction <= 0.6
        assert 100 <= result.median_popularity_index <= 500
