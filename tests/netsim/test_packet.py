"""Packet model tests: sizes, accessors, cloning."""

import pytest

from repro.netsim.headers import IPv4Header, TCPHeader
from repro.netsim.packet import Packet, Payload, make_tcp_packet, make_udp_packet


class TestPayload:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Payload(size=-1)

    def test_defaults(self):
        payload = Payload()
        assert payload.size == 0 and payload.content is None
        assert not payload.encrypted


class TestPacket:
    def test_wire_length_sums_headers_and_payload(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=100)
        assert packet.wire_length == 20 + 20 + 100

    def test_udp_wire_length(self):
        packet = make_udp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=72)
        assert packet.wire_length == 20 + 8 + 72

    def test_accessors(self):
        packet = make_tcp_packet("10.0.0.1", 5000, "10.0.0.2", 443)
        assert packet.src_ip == "10.0.0.1"
        assert packet.dst_ip == "10.0.0.2"
        assert packet.src_port == 5000
        assert packet.dst_port == 443
        assert packet.is_tcp and not packet.is_udp

    def test_packet_ids_unique(self):
        a = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        b = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        assert a.packet_id != b.packet_id

    def test_clone_is_independent(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=10)
        packet.meta["tag"] = "original"
        copy = packet.clone()
        copy.ip.src = "9.9.9.9"
        copy.meta["tag"] = "copy"
        assert packet.ip.src == "1.1.1.1"
        assert packet.meta["tag"] == "original"
        assert copy.packet_id != packet.packet_id

    def test_set_dscp(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        packet.set_dscp(46)
        assert packet.dscp == 46

    def test_set_dscp_without_ip_raises(self):
        packet = Packet()
        with pytest.raises(ValueError):
            packet.set_dscp(1)

    def test_describe_mentions_endpoints(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        text = packet.describe()
        assert "1.1.1.1:1" in text and "2.2.2.2:2" in text

    def test_describe_handles_headerless(self):
        assert "pkt" in Packet().describe()

    def test_total_length_set_by_constructor(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=500)
        assert packet.ip.total_length == packet.wire_length

    def test_dscp_constructor_arg(self):
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, dscp=34)
        assert packet.dscp == 34

    def test_manual_packet_proto(self):
        packet = Packet(ip=IPv4Header(), l4=TCPHeader())
        assert packet.is_tcp
        assert packet.dscp == 0
