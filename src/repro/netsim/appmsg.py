"""Application-layer message models carried in packet payloads.

Middleboxes in the paper see three kinds of application data that matter:

- plaintext HTTP requests (headers are readable; cookies ride in a special
  request header),
- TLS ClientHello messages (the SNI is readable even for HTTPS; cookies
  ride in a custom TLS extension),
- opaque encrypted records (nothing readable at all).

These models expose exactly that visibility and nothing more, so DPI and
cookie matchers operate on realistic inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HTTPRequest", "HTTPResponse", "TLSClientHello", "TLSRecord"]


@dataclass
class HTTPRequest:
    """A plaintext HTTP/1.1 request with readable headers."""

    method: str = "GET"
    path: str = "/"
    host: str = ""
    headers: dict[str, str] = field(default_factory=dict)

    def header(self, name: str) -> str | None:
        """Case-insensitive header lookup (HTTP header names are)."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None

    def set_header(self, name: str, value: str) -> None:
        """Set a header, replacing any case-variant of the same name."""
        lowered = name.lower()
        for key in list(self.headers):
            if key.lower() == lowered:
                del self.headers[key]
        self.headers[name] = value

    def wire_size(self) -> int:
        """Approximate serialized size of the request head in bytes."""
        size = len(self.method) + len(self.path) + 12  # request line + CRLFs
        size += len("Host: ") + len(self.host) + 2
        for key, value in self.headers.items():
            size += len(key) + 2 + len(value) + 2
        return size + 2


@dataclass
class HTTPResponse:
    """A plaintext HTTP/1.1 response head."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body_size: int = 0

    def header(self, name: str) -> str | None:
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None

    def set_header(self, name: str, value: str) -> None:
        lowered = name.lower()
        for key in list(self.headers):
            if key.lower() == lowered:
                del self.headers[key]
        self.headers[name] = value


@dataclass
class TLSClientHello:
    """The first message of a TLS handshake.

    ``sni`` is the Server Name Indication — visible to middleboxes and the
    one hook classic DPI retains under HTTPS.  ``extensions`` maps TLS
    extension type numbers to raw bytes; the cookie transport uses a
    private-range extension type.
    """

    sni: str = ""
    extensions: dict[int, bytes] = field(default_factory=dict)

    def wire_size(self) -> int:
        size = 180 + len(self.sni)  # typical ClientHello baseline
        for data in self.extensions.values():
            size += 4 + len(data)
        return size


@dataclass
class TLSRecord:
    """An opaque encrypted TLS record: middleboxes learn only its size."""

    size: int = 0
