"""DiffServ (DSCP) baseline.

DiffServ lets endpoints mark the 6 DSCP bits and lets networks map marks
to classes.  The paper's §3 critique is reproduced structurally:

- only 64 classes exist (:data:`DSCP_MAX` + 1), several already claimed by
  the network internally;
- *anything* can set the bits — there is no authentication, so an
  opportunistic application (:class:`OpportunisticMarker`) obtains service
  the user never asked for and cannot revoke;
- operators routinely bleach marks at boundaries
  (:class:`BoundaryRemarker`), so marks do not survive across networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netsim.headers import DSCP_MAX
from ..netsim.middlebox import Element
from ..netsim.packet import Packet

__all__ = [
    "DscpClassTable",
    "EndpointMarker",
    "OpportunisticMarker",
    "BoundaryRemarker",
    "DscpEnforcer",
]


@dataclass
class DscpClassTable:
    """The network's mapping from code points to service classes.

    ``reserved`` models code points the operator already uses internally;
    user-facing services must fit in what remains — the paper's "limited
    set ... leaving little room for customization".
    """

    classes: dict[int, str] = field(default_factory=dict)
    reserved: set[int] = field(default_factory=lambda: {46, 26, 10, 0})

    def define(self, dscp: int, service: str) -> None:
        if not 0 <= dscp <= DSCP_MAX:
            raise ValueError(f"DSCP {dscp} out of range")
        if dscp in self.reserved:
            raise ValueError(f"DSCP {dscp} is reserved for internal use")
        if len(self.classes) + len(self.reserved) > DSCP_MAX:
            raise ValueError("DSCP space exhausted")
        self.classes[dscp] = service

    def service_of(self, dscp: int) -> str | None:
        return self.classes.get(dscp)

    @property
    def available_codepoints(self) -> int:
        return DSCP_MAX + 1 - len(self.reserved) - len(self.classes)


class EndpointMarker(Element):
    """An application or OS marking its own traffic with a DSCP value.

    ``predicate`` selects which packets to mark; crucially, nothing
    verifies that the *user* sanctioned the marking.
    """

    def __init__(
        self,
        dscp: int,
        predicate: Callable[[Packet], bool] | None = None,
        name: str = "dscp-marker",
    ) -> None:
        super().__init__(name)
        if not 0 <= dscp <= DSCP_MAX:
            raise ValueError(f"DSCP {dscp} out of range")
        self.dscp = dscp
        self.predicate = predicate or (lambda _p: True)
        self.marked = 0

    def handle(self, packet: Packet) -> None:
        if packet.ip is not None and self.predicate(packet):
            packet.set_dscp(self.dscp)
            self.marked += 1
        self.emit(packet)


class OpportunisticMarker(EndpointMarker):
    """The paper's legacy games console: sets a premium code point for all
    its traffic without asking anyone, possibly incurring charges the user
    cannot refuse except by unplugging the device."""

    def __init__(self, dscp: int = 34, name: str = "legacy-console") -> None:
        super().__init__(dscp=dscp, name=name)


class BoundaryRemarker(Element):
    """Operator behaviour at a network boundary.

    ``mode='bleach'`` resets every mark to zero (the common case the paper
    notes: "Network operators often ignore or even reset DSCP bits across
    network boundaries"); ``mode='remap'`` rewrites marks through a table;
    ``mode='trust'`` passes marks unchanged.
    """

    def __init__(
        self,
        mode: str = "bleach",
        remap: dict[int, int] | None = None,
        name: str = "boundary",
    ) -> None:
        super().__init__(name)
        if mode not in ("bleach", "remap", "trust"):
            raise ValueError(f"unknown boundary mode {mode!r}")
        self.mode = mode
        self.remap = dict(remap or {})
        self.rewritten = 0

    def handle(self, packet: Packet) -> None:
        if packet.ip is not None and self.mode != "trust":
            if self.mode == "bleach":
                if packet.dscp != 0:
                    packet.set_dscp(0)
                    self.rewritten += 1
            else:
                new = self.remap.get(packet.dscp, 0)
                if new != packet.dscp:
                    packet.set_dscp(new)
                    self.rewritten += 1
        self.emit(packet)


class DscpEnforcer(Element):
    """Maps DSCP values to local QoS classes for enforcement.

    This is legitimate *internal* use — the role the paper concludes
    DiffServ is actually suited for, including as the second stage of the
    cookie→DSCP edge deployment.
    """

    def __init__(
        self,
        table: DscpClassTable,
        class_to_level: dict[str, int] | None = None,
        name: str = "dscp-enforcer",
    ) -> None:
        super().__init__(name)
        self.table = table
        self.class_to_level = dict(class_to_level or {})
        self.served = 0

    def handle(self, packet: Packet) -> None:
        service = self.table.service_of(packet.dscp)
        if service is not None:
            packet.meta["service"] = service
            level = self.class_to_level.get(service)
            if level is not None:
                packet.meta["qos_class"] = level
            self.served += 1
        self.emit(packet)
