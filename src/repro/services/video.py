"""Application-assisted boosting: the paper's video-player scenario.

"A video application could ask for a short burst of high bandwidth when
it runs low on buffers (and risks rebuffering)" — and cookie insertion
"can be explicitly requested by the user, or assisted by an application
(e.g., a video client can ask for extra bandwidth if its buffer runs
low)."

:class:`VideoPlayer` models an adaptive-streaming client: it downloads
fixed-duration chunks over TCP, plays them back in real time, and tracks
rebuffering.  When its buffer falls below a low-watermark it invokes a
``boost_trigger`` — typically a closure that makes the next chunk's
packets carry a boost cookie — demonstrating user-consented,
application-timed use of the fast lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netsim.events import EventLoop, ScheduledEvent
from ..netsim.middlebox import Element
from ..netsim.tcpmodel import TcpTransfer

__all__ = ["PlaybackStats", "VideoPlayer"]


@dataclass
class PlaybackStats:
    """What a quality-of-experience dashboard would show."""

    chunks_downloaded: int = 0
    rebuffer_events: int = 0
    rebuffer_seconds: float = 0.0
    boost_requests: int = 0
    startup_delay: float | None = None
    finished_at: float | None = None

    @property
    def smooth(self) -> bool:
        return self.rebuffer_events == 0


class VideoPlayer:
    """A buffer-driven streaming client over the simulated network.

    Parameters
    ----------
    path:
        Downlink pipeline head chunks are fetched through.
    bitrate_bps:
        Encoded video bitrate; each ``chunk_seconds`` chunk is
        ``bitrate * chunk_seconds / 8`` bytes.
    buffer_low / buffer_target:
        Below ``buffer_low`` seconds of buffered video the player calls
        ``boost_trigger`` (if any); it stops fetching ahead at
        ``buffer_target``.
    boost_trigger:
        Callable invoked when the buffer runs low.  Returning True counts
        as a boost request (e.g. the closure acquired a descriptor and
        armed a cookie tagger for subsequent chunks).
    """

    RESUME_THRESHOLD = 2.0  # seconds buffered before playback (re)starts

    def __init__(
        self,
        loop: EventLoop,
        path: Element,
        *,
        duration_seconds: float = 30.0,
        bitrate_bps: float = 2_500_000.0,
        chunk_seconds: float = 2.0,
        buffer_low: float = 4.0,
        buffer_target: float = 10.0,
        boost_trigger: Callable[[], bool] | None = None,
        dst_ip: str = "192.168.1.100",
        dst_port: int = 45_000,
        transfer_meta: dict | None = None,
    ) -> None:
        if duration_seconds <= 0 or chunk_seconds <= 0 or bitrate_bps <= 0:
            raise ValueError("duration, chunk length and bitrate must be positive")
        if buffer_low >= buffer_target:
            raise ValueError("buffer_low must be below buffer_target")
        self.loop = loop
        self.path = path
        self.duration_seconds = duration_seconds
        self.bitrate_bps = bitrate_bps
        self.chunk_seconds = chunk_seconds
        self.buffer_low = buffer_low
        self.buffer_target = buffer_target
        self.boost_trigger = boost_trigger
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.transfer_meta = dict(transfer_meta or {})
        self.stats = PlaybackStats()

        self.total_chunks = int(round(duration_seconds / chunk_seconds))
        self._buffer_seconds = 0.0
        self._buffer_updated_at = 0.0
        self._playing = False
        self._played_seconds = 0.0
        self._stall_started_at: float | None = None
        self._started_at: float | None = None
        self._fetching = False
        self._underrun_event: ScheduledEvent | None = None
        self._boost_armed = False

    # ------------------------------------------------------------------
    # Buffer bookkeeping (lazy drain)
    # ------------------------------------------------------------------
    def _sync_buffer(self) -> None:
        now = self.loop.now
        if self._playing:
            elapsed = now - self._buffer_updated_at
            drained = min(self._buffer_seconds, elapsed)
            self._buffer_seconds -= drained
            self._played_seconds += drained
        self._buffer_updated_at = now

    @property
    def buffer_seconds(self) -> float:
        self._sync_buffer()
        return self._buffer_seconds

    @property
    def finished(self) -> bool:
        return self.stats.finished_at is not None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin fetching and (once buffered) playing."""
        self._started_at = self.loop.now
        self._fetch_next_chunk()

    def _chunk_bytes(self) -> int:
        return int(self.bitrate_bps * self.chunk_seconds / 8)

    def _fetch_next_chunk(self) -> None:
        if self.stats.chunks_downloaded >= self.total_chunks or self._fetching:
            return
        self._sync_buffer()
        if (
            self._buffer_seconds < self.buffer_low
            and self.boost_trigger is not None
            and not self._boost_armed
        ):
            if self.boost_trigger():
                self.stats.boost_requests += 1
                self._boost_armed = True
        self._fetching = True
        transfer = TcpTransfer(
            self.loop,
            self.path,
            size_bytes=self._chunk_bytes(),
            dst_ip=self.dst_ip,
            dst_port=self.dst_port + self.stats.chunks_downloaded,
            meta=dict(self.transfer_meta),
            on_complete=self._on_chunk_complete,
        )
        transfer.start()

    def _on_chunk_complete(self, _transfer: TcpTransfer) -> None:
        self._fetching = False
        self._sync_buffer()
        self.stats.chunks_downloaded += 1
        self._buffer_seconds += self.chunk_seconds
        if self._buffer_seconds >= self.buffer_target:
            # Comfortably ahead again: a future dip re-arms the trigger.
            self._boost_armed = False
        if not self._playing and self._buffer_seconds >= self.RESUME_THRESHOLD:
            self._resume_playback()
        if self.stats.chunks_downloaded >= self.total_chunks:
            self._watch_for_finish()
            return
        if self._buffer_seconds < self.buffer_target:
            self._fetch_next_chunk()
        else:
            # Fetch again when the buffer drains to the target.
            delay = self._buffer_seconds - self.buffer_target + self.chunk_seconds
            self.loop.schedule(max(delay, 0.001), self._fetch_next_chunk)

    def _resume_playback(self) -> None:
        now = self.loop.now
        if self.stats.startup_delay is None and self._started_at is not None:
            self.stats.startup_delay = now - self._started_at
        if self._stall_started_at is not None:
            self.stats.rebuffer_seconds += now - self._stall_started_at
            self._stall_started_at = None
        self._playing = True
        self._buffer_updated_at = now
        self._arm_underrun_watch()

    def _arm_underrun_watch(self) -> None:
        if self._underrun_event is not None:
            self._underrun_event.cancel()
        self._underrun_event = self.loop.schedule(
            max(self._buffer_seconds, 0.001), self._check_underrun
        )

    def _check_underrun(self) -> None:
        self._underrun_event = None
        self._sync_buffer()
        if not self._playing:
            return
        if self._played_seconds >= self.duration_seconds - 1e-9:
            self.stats.finished_at = self.loop.now
            self._playing = False
            return
        if self._buffer_seconds <= 1e-9:
            if self.stats.chunks_downloaded >= self.total_chunks:
                # Drained everything there is: playback is complete.
                self.stats.finished_at = self.loop.now
                self._playing = False
                return
            self._playing = False
            self.stats.rebuffer_events += 1
            self._stall_started_at = self.loop.now
            self._fetch_next_chunk()
        else:
            self._arm_underrun_watch()

    def _watch_for_finish(self) -> None:
        """All chunks fetched; finish when the buffer drains."""
        if not self._playing and self._buffer_seconds >= 1e-9:
            self._resume_playback()
        elif self._playing:
            self._arm_underrun_watch()
