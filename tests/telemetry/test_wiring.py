"""Component → registry wiring: one merged view across the data path."""

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    DescriptorStore,
)
from repro.core.switch import CookieSwitch
from repro.core.transport import default_registry
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.anylink import AnyLinkProxy
from repro.services.boost import BoostDaemon
from repro.services.zerorate import ZeroRatingMiddlebox
from repro.telemetry import MetricsRegistry


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _cookied_packet(descriptor, clock, sport=5000):
    packet = make_tcp_packet(
        "10.0.0.1", sport, "203.0.113.5", 443,
        content=TLSClientHello(sni="x.com"), payload_size=300,
    )
    default_registry().attach(
        packet, CookieGenerator(descriptor, clock).generate()
    )
    return packet


class TestUnifiedView:
    def test_matcher_switch_middlebox_one_snapshot(self):
        clock = Clock()
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="svc"))
        registry = MetricsRegistry()

        switch = CookieSwitch(
            CookieMatcher(store, telemetry=registry),
            clock=clock,
            telemetry=registry,
        )
        middlebox = ZeroRatingMiddlebox(
            CookieMatcher(
                store, telemetry=registry,
                telemetry_prefix="middlebox.matcher",
            ),
            clock=clock,
            telemetry=registry,
        )
        switch >> middlebox >> Sink()

        switch.push(_cookied_packet(descriptor, clock))
        switch.push(
            make_tcp_packet("10.0.0.1", 5000, "203.0.113.5", 443,
                            payload_size=800)
        )

        snapshot = registry.snapshot()
        assert snapshot.counters["matcher.accepted"] == 1
        assert snapshot.counters["middlebox.matcher.accepted"] == 1
        assert snapshot.counters["switch.packets"] == 2
        assert snapshot.counters["switch.flows_bound"] == 1
        assert snapshot.counters["middlebox.packets_processed"] == 2
        assert snapshot.counters["middlebox.cookie_hits"] == 1
        assert snapshot.gauges["switch.tracked_flows"] == 1
        assert snapshot.gauges["middlebox.tracked_flows"] == 1
        assert snapshot.gauges["matcher.replay_cache.size"] == 1

    def test_register_telemetry_is_idempotent(self):
        clock = Clock()
        store = DescriptorStore()
        registry = MetricsRegistry()
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        switch.register_telemetry(registry)
        switch.register_telemetry(registry)  # replaces, does not double
        switch.push(make_tcp_packet("10.0.0.1", 1, "8.8.8.8", 2))
        assert registry.snapshot().counters["switch.packets"] == 1

    def test_shard_snapshots_merge_to_fleet_totals(self):
        """N middlebox shards exporting under one metric prefix merge
        into fleet totals — the scale-out story the registry was built
        for."""
        from repro.telemetry import TelemetrySnapshot

        clock = Clock()
        store = DescriptorStore()
        shards = [
            ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
            for _ in range(3)
        ]
        for i, shard in enumerate(shards):
            for port in range(i + 1):  # shard i sees i+1 flows
                shard.handle(
                    make_tcp_packet("10.0.0.1", 100 + port, "8.8.8.8", 443)
                )
        fleet = TelemetrySnapshot.merged(
            _shard_snapshot(shard) for shard in shards
        )
        assert fleet.counters["middlebox.packets_processed"] == 6
        assert fleet.gauges["middlebox.tracked_flows"] == 6

    def test_boost_and_anylink_register(self):
        loop = EventLoop()
        store = DescriptorStore()
        registry = MetricsRegistry()
        daemon = BoostDaemon(loop, store, telemetry=registry)
        proxy = AnyLinkProxy(
            loop, CookieMatcher(store), telemetry=registry
        )
        proxy >> Sink()
        proxy.push(make_tcp_packet("10.0.0.1", 1, "8.8.8.8", 2))
        snapshot = registry.snapshot()
        assert snapshot.counters["boost.boost_events"] == 0
        assert snapshot.gauges["boost.boost_active"] == 0
        assert snapshot.counters["boost.switch.packets"] == 0
        assert snapshot.counters["boost.matcher.accepted"] == 0
        assert snapshot.gauges["anylink.tracked_flows"] == 1
        assert snapshot.counters["anylink.flows_bound"] == 0
        assert daemon.switch is not None


def _shard_snapshot(shard):
    """One shard's metrics as its own snapshot (for fleet merging)."""
    registry = MetricsRegistry()
    shard.register_telemetry(registry, prefix="middlebox")
    return registry.snapshot()
