"""Cookie switch tests: flow binding, sniffing, granularity, guarantees."""

import pytest

from repro.core.attributes import CookieAttributes, Granularity
from repro.core.descriptor import CookieDescriptor
from repro.core.generator import CookieGenerator
from repro.core.matcher import CookieMatcher
from repro.core.store import DescriptorStore
from repro.core.switch import CookieSwitch, DscpServiceApplier, FAST_LANE_CLASS
from repro.core.transport import default_registry
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _setup(attributes=None, sniff_packets=3, applier=None):
    clock = Clock()
    store = DescriptorStore()
    descriptor = store.add(
        CookieDescriptor.create(
            service_data="Boost", attributes=attributes or CookieAttributes()
        )
    )
    switch = CookieSwitch(
        CookieMatcher(store),
        clock=clock,
        sniff_packets=sniff_packets,
        applier=applier,
    )
    sink = Sink()
    switch >> sink
    return clock, descriptor, switch, sink


def _flow_packet(sport=5000, reverse=False, content=None):
    if reverse:
        return make_tcp_packet(
            "203.0.113.5", 443, "10.0.0.1", sport, payload_size=1000, content=content
        )
    return make_tcp_packet(
        "10.0.0.1", sport, "203.0.113.5", 443, payload_size=300, content=content
    )


def _cookied_packet(descriptor, clock, sport=5000):
    packet = _flow_packet(sport=sport, content=TLSClientHello(sni="x.com"))
    cookie = CookieGenerator(descriptor, clock).generate()
    default_registry().attach(packet, cookie)
    return packet


class TestBinding:
    def test_cookied_flow_gets_service(self):
        clock, descriptor, switch, sink = _setup()
        switch.push(_cookied_packet(descriptor, clock))
        assert sink.packets[0].meta["qos_class"] == FAST_LANE_CLASS
        assert sink.packets[0].meta["service"] == "Boost"
        assert switch.stats.flows_bound == 1

    def test_subsequent_packets_served_without_cookie(self):
        clock, descriptor, switch, sink = _setup()
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet())
        assert sink.packets[1].meta["qos_class"] == FAST_LANE_CLASS
        assert switch.stats.cookies_found == 1  # only the first carried one

    def test_reverse_flow_served(self):
        clock, descriptor, switch, sink = _setup()
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet(reverse=True))
        assert sink.packets[1].meta["qos_class"] == FAST_LANE_CLASS

    def test_reverse_not_served_when_disabled(self):
        clock, descriptor, switch, sink = _setup(
            attributes=CookieAttributes(apply_reverse=False)
        )
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet(reverse=True))
        assert "qos_class" not in sink.packets[1].meta

    def test_uncookied_flow_untouched(self):
        _clock, _descriptor, switch, sink = _setup()
        switch.push(_flow_packet())
        assert "qos_class" not in sink.packets[0].meta

    def test_invalid_cookie_degrades_to_best_effort(self):
        clock, _descriptor, switch, sink = _setup()
        stranger = CookieDescriptor.create()
        switch.push(_cookied_packet(stranger, clock))
        assert "qos_class" not in sink.packets[0].meta
        assert switch.stats.cookies_rejected == 1

    def test_distinct_flows_bind_separately(self):
        clock, descriptor, switch, _sink = _setup()
        switch.push(_cookied_packet(descriptor, clock, sport=5000))
        switch.push(_cookied_packet(descriptor, clock, sport=5001))
        assert switch.stats.flows_bound == 2


class TestSniffWindow:
    def test_cookie_after_window_ignored(self):
        clock, descriptor, switch, sink = _setup(sniff_packets=3)
        for _ in range(3):
            switch.push(_flow_packet())
        switch.push(_cookied_packet(descriptor, clock))  # 4th packet
        assert "qos_class" not in sink.packets[3].meta
        assert switch.stats.cookies_found == 0

    def test_cookie_on_third_packet_found(self):
        clock, descriptor, switch, sink = _setup(sniff_packets=3)
        switch.push(_flow_packet())
        switch.push(_flow_packet())
        switch.push(_cookied_packet(descriptor, clock))
        assert sink.packets[2].meta["qos_class"] == FAST_LANE_CLASS

    def test_sniff_counter_stat(self):
        _clock, _descriptor, switch, _sink = _setup(sniff_packets=2)
        for _ in range(5):
            switch.push(_flow_packet())
        assert switch.stats.packets_sniffed == 2

    def test_zero_sniff_rejected(self):
        store = DescriptorStore()
        with pytest.raises(ValueError):
            CookieSwitch(CookieMatcher(store), clock=lambda: 0.0, sniff_packets=0)

    def test_needs_loop_or_clock(self):
        with pytest.raises(ValueError):
            CookieSwitch(CookieMatcher(DescriptorStore()))


class TestGranularity:
    def test_packet_granularity_serves_single_packet(self):
        clock, descriptor, switch, sink = _setup(
            attributes=CookieAttributes(granularity=Granularity.PACKET)
        )
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet())  # same flow, no cookie
        assert sink.packets[0].meta["qos_class"] == FAST_LANE_CLASS
        assert "qos_class" not in sink.packets[1].meta
        assert switch.stats.flows_bound == 0


class TestRevocationMidFlow:
    def test_service_stops_when_descriptor_revoked(self):
        clock, descriptor, switch, sink = _setup()
        switch.push(_cookied_packet(descriptor, clock))
        descriptor.revoke()
        switch.push(_flow_packet())
        assert "qos_class" not in sink.packets[1].meta

    def test_service_stops_after_expiry(self):
        clock, descriptor, switch, sink = _setup(
            attributes=CookieAttributes(expires_at=10.0)
        )
        switch.push(_cookied_packet(descriptor, clock))
        clock.now = 20.0
        switch.push(_flow_packet())
        assert "qos_class" not in sink.packets[1].meta


class TestDeliveryGuarantee:
    def test_ack_attached_to_first_reverse_packet(self):
        clock, descriptor, switch, sink = _setup(
            attributes=CookieAttributes(delivery_guarantee=True)
        )
        switch.push(_cookied_packet(descriptor, clock))
        reverse = _flow_packet(reverse=True, content=TLSClientHello(sni=""))
        switch.push(reverse)
        assert default_registry().extract(reverse) is not None
        assert switch.stats.acks_attached == 1

    def test_ack_only_once(self):
        clock, descriptor, switch, _sink = _setup(
            attributes=CookieAttributes(delivery_guarantee=True)
        )
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet(reverse=True, content=TLSClientHello(sni="")))
        switch.push(_flow_packet(reverse=True, content=TLSClientHello(sni="")))
        assert switch.stats.acks_attached == 1


class TestDscpApplier:
    def test_marks_dscp_instead_of_meta(self):
        applier = DscpServiceApplier({"Boost": 34})
        clock, descriptor, switch, sink = _setup(applier=applier)
        switch.push(_cookied_packet(descriptor, clock))
        assert sink.packets[0].dscp == 34
        assert applier.marked == 1

    def test_unknown_service_uses_default(self):
        applier = DscpServiceApplier({}, default_dscp=0)
        clock, descriptor, switch, sink = _setup(applier=applier)
        switch.push(_cookied_packet(descriptor, clock))
        assert sink.packets[0].dscp == 0


class TestNonIpTraffic:
    def test_passes_through(self):
        from repro.netsim.packet import Packet

        _clock, _descriptor, switch, sink = _setup()
        switch.push(Packet())
        assert sink.count == 1


class TestBindingLifetime:
    def test_binding_expires_with_flow_idle_timeout(self):
        clock = Clock()
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="Boost"))
        switch = CookieSwitch(
            CookieMatcher(store, nct=1e9), clock=clock, flow_idle_timeout=30.0
        )
        sink = Sink()
        switch >> sink
        switch.push(_cookied_packet(descriptor, clock))
        clock.now = 100.0  # flow idles out; binding state evicted
        switch.push(_flow_packet())
        assert "qos_class" not in sink.packets[1].meta

    def test_rebinding_after_idle_works(self):
        clock = Clock()
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="Boost"))
        switch = CookieSwitch(
            CookieMatcher(store, nct=1e9), clock=clock, flow_idle_timeout=30.0
        )
        sink = Sink()
        switch >> sink
        switch.push(_cookied_packet(descriptor, clock))
        clock.now = 100.0
        switch.push(_cookied_packet(descriptor, clock))  # fresh cookie
        assert sink.packets[1].meta.get("qos_class") == FAST_LANE_CLASS


class TestAckWithoutReverseService:
    def test_ack_attached_even_when_reverse_not_serviced(self):
        """A forward-only descriptor with a delivery guarantee must still
        ack on reverse traffic: the guarantee is about the forward service
        having been applied, not about servicing the reverse path."""
        clock, descriptor, switch, sink = _setup(
            attributes=CookieAttributes(
                delivery_guarantee=True, apply_reverse=False
            )
        )
        switch.push(_cookied_packet(descriptor, clock))
        reverse = _flow_packet(reverse=True, content=TLSClientHello(sni=""))
        switch.push(reverse)
        assert default_registry().extract(reverse) is not None
        assert switch.stats.acks_attached == 1
        # The reverse packet itself is still best-effort.
        assert "qos_class" not in reverse.meta

    def test_ack_still_only_once_without_reverse_service(self):
        clock, descriptor, switch, _sink = _setup(
            attributes=CookieAttributes(
                delivery_guarantee=True, apply_reverse=False
            )
        )
        switch.push(_cookied_packet(descriptor, clock))
        switch.push(_flow_packet(reverse=True, content=TLSClientHello(sni="")))
        second = _flow_packet(reverse=True, content=TLSClientHello(sni=""))
        switch.push(second)
        assert switch.stats.acks_attached == 1
        assert default_registry().extract(second) is None


class TestRevocationRebinding:
    def test_rebind_with_new_cookie_inside_sniff_window(self):
        """After a mid-flow revocation drops the binding, a packet still
        inside the sniff window carrying a cookie from a *different*
        (valid) descriptor re-binds the flow to the new service."""
        clock = Clock()
        store = DescriptorStore()
        first = store.add(CookieDescriptor.create(service_data="Boost"))
        second = store.add(CookieDescriptor.create(service_data="Turbo"))
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        sink = Sink()
        switch >> sink
        switch.push(_cookied_packet(first, clock))
        first.revoke()
        switch.push(_flow_packet())  # packet 2: binding dropped, no service
        assert "service" not in sink.packets[1].meta
        rebind = _flow_packet(content=TLSClientHello(sni="x.com"))
        default_registry().attach(
            rebind, CookieGenerator(second, clock).generate()
        )
        switch.push(rebind)  # packet 3: still within the sniff window
        assert sink.packets[2].meta.get("service") == "Turbo"
        assert switch.stats.flows_bound == 2

    def test_no_rebind_after_sniff_window(self):
        """Revocation after the sniff window leaves the flow best-effort
        for good — late cookies are ignored, per the sniff rule."""
        clock = Clock()
        store = DescriptorStore()
        first = store.add(CookieDescriptor.create(service_data="Boost"))
        second = store.add(CookieDescriptor.create(service_data="Turbo"))
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        sink = Sink()
        switch >> sink
        switch.push(_cookied_packet(first, clock))
        for _ in range(3):  # burn through the sniff window while bound
            switch.push(_flow_packet())
        first.revoke()
        switch.push(_flow_packet())  # binding dropped here
        late = _flow_packet(content=TLSClientHello(sni="x.com"))
        default_registry().attach(
            late, CookieGenerator(second, clock).generate()
        )
        switch.push(late)
        assert "service" not in sink.packets[-1].meta
        assert switch.stats.flows_bound == 1

    def test_rebinding_flow_acks_again_on_new_guarantee(self):
        """A re-bound delivery-guaranteed descriptor gets its own ack."""
        clock = Clock()
        store = DescriptorStore()
        attrs = CookieAttributes(delivery_guarantee=True)
        first = store.add(
            CookieDescriptor.create(service_data="A", attributes=attrs)
        )
        second = store.add(
            CookieDescriptor.create(
                service_data="B",
                attributes=CookieAttributes(delivery_guarantee=True),
            )
        )
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        switch >> Sink()
        switch.push(_cookied_packet(first, clock))
        first.revoke()
        switch.push(_flow_packet())  # packet 2: old binding dropped
        rebind = _flow_packet(content=TLSClientHello(sni="x.com"))
        default_registry().attach(
            rebind, CookieGenerator(second, clock).generate()
        )
        switch.push(rebind)  # packet 3: re-binds, arms a fresh ack
        reverse = _flow_packet(reverse=True, content=TLSClientHello(sni=""))
        switch.push(reverse)
        assert switch.stats.acks_attached == 1
        ack_cookie, _carrier = default_registry().extract(reverse)
        assert ack_cookie.cookie_id == second.cookie_id
