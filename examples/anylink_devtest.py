#!/usr/bin/env python3
"""AnyLink: cookie-selected slow lanes for application developers.

The paper's public AnyLink service is Boost inverted — a cloud proxy that
emulates *slower* links so developers can feel what their app is like on
2G before shipping.  Cookies select the profile per flow, so one proxy
serves many developers with different emulation targets at once.

Run:  python examples/anylink_devtest.py
"""

from repro.core import CookieMatcher, DescriptorStore, UserAgent
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.anylink import AnyLinkProxy, STANDARD_PROFILES, make_anylink_server


def emulate(profile: str, loop, proxy, agent, sport: int) -> float:
    """Push a 30-packet download through the proxy under ``profile``;
    returns how long the virtual transfer took."""
    start = loop.now
    first = make_tcp_packet(
        "10.0.0.1", sport, "93.184.216.34", 443,
        content=TLSClientHello(sni="myapp.example"), payload_size=250,
    )
    agent.insert_cookie(first, f"anylink-{profile}")
    proxy.push(first)
    for _ in range(30):
        proxy.push(make_tcp_packet(
            "93.184.216.34", 443, "10.0.0.1", sport,
            payload_size=1200, encrypted=True,
        ))
    loop.run_until_idle()
    return loop.now - start


def main() -> None:
    loop = EventLoop()
    server = make_anylink_server(clock=lambda: loop.now)
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    proxy = AnyLinkProxy(loop, CookieMatcher(store))
    proxy >> Sink(keep=False)
    developer = UserAgent("dev", clock=lambda: loop.now,
                          channel=server.handle_request)

    print("profiles advertised by the AnyLink server:")
    for service in server.list_services():
        print(f"  {service['name']:<14} {service['description']}")
    print()

    payload_bits = 30 * (1200 + 40) * 8
    print(f"{'profile':<10}{'nominal rate':>14}{'38 KB transfer':>16}")
    for index, (name, profile) in enumerate(sorted(
        STANDARD_PROFILES.items(), key=lambda kv: kv[1].rate_bps
    )):
        elapsed = emulate(name, loop, proxy, developer, sport=41_000 + index)
        print(f"{name:<10}{profile.rate_bps / 1e6:>11.2f} Mb/s"
              f"{elapsed:>14.2f} s  "
              f"(ideal {payload_bits / profile.rate_bps:.2f} s)")

    print("\nEach flow picked its own lane via its cookie — one proxy, "
          "many emulation targets, no per-developer configuration.")


if __name__ == "__main__":
    main()
