"""Heavy-tail metrics for preference distributions (Figs. 1 and 2)."""

from __future__ import annotations

from collections import Counter

__all__ = [
    "uniqueness_fraction",
    "head_coverage",
    "coverage_curve",
    "is_heavy_tailed",
]


def uniqueness_fraction(counts: Counter) -> float:
    """Fraction of expressed preferences whose item was picked once.

    The paper's Fig. 1 headline: "43 % of expressed preferences were
    unique, i.e., the preferred website was picked by only one user".
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    singletons = sum(1 for count in counts.values() if count == 1)
    return singletons / total


def head_coverage(counts: Counter, head_size: int) -> float:
    """Fraction of preferences covered by the ``head_size`` most popular
    items — what a curated shortlist of that size could serve."""
    if head_size <= 0:
        return 0.0
    total = sum(counts.values())
    if total == 0:
        return 0.0
    head = sum(count for _item, count in counts.most_common(head_size))
    return head / total


def coverage_curve(counts: Counter) -> list[tuple[int, float]]:
    """(shortlist size, preference coverage) for every prefix size.

    The curve's slow climb is the quantitative case against
    one-size-fits-all programs.
    """
    total = sum(counts.values())
    if total == 0:
        return []
    curve = []
    covered = 0
    for size, (_item, count) in enumerate(counts.most_common(), start=1):
        covered += count
        curve.append((size, covered / total))
    return curve


def is_heavy_tailed(
    counts: Counter,
    head_size: int = 10,
    max_head_coverage: float = 0.75,
    min_singleton_fraction: float = 0.15,
) -> bool:
    """A pragmatic heavy-tail test for preference data.

    True when a ``head_size`` shortlist still misses a quarter of
    preferences *and* singletons carry real mass — both hold for the
    paper's studies.
    """
    return (
        head_coverage(counts, head_size) <= max_head_coverage
        and uniqueness_fraction(counts) >= min_singleton_fraction
    )
