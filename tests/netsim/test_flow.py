"""Flow key and flow table tests."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.flow import FiveTuple, FlowTable, flow_key_of
from repro.netsim.packet import make_tcp_packet


def _tuple(src="1.1.1.1", sport=100, dst="2.2.2.2", dport=200, proto=6):
    return FiveTuple(src, sport, dst, dport, proto)


ips = st.tuples(*([st.integers(0, 255)] * 4)).map(lambda t: ".".join(map(str, t)))
ports = st.integers(0, 65535)


class TestFiveTuple:
    def test_reverse_is_involution(self):
        key = _tuple()
        assert key.reversed().reversed() == key

    def test_both_directions_share_canonical(self):
        key = _tuple()
        assert key.canonical() == key.reversed().canonical()

    def test_canonical_is_idempotent(self):
        key = _tuple()
        assert key.canonical().canonical() == key.canonical()

    def test_of_packet(self):
        packet = make_tcp_packet("10.0.0.1", 5000, "10.0.0.2", 443)
        key = FiveTuple.of_packet(packet)
        assert key.src_ip == "10.0.0.1" and key.dst_port == 443

    def test_of_packet_without_headers_raises(self):
        from repro.netsim.packet import Packet

        with pytest.raises(ValueError):
            FiveTuple.of_packet(Packet())

    @given(src=ips, sport=ports, dst=ips, dport=ports)
    def test_canonical_properties(self, src, sport, dst, dport):
        key = FiveTuple(src, sport, dst, dport, 6)
        canonical = key.canonical()
        assert canonical == key.reversed().canonical()
        assert canonical.canonical() == canonical


class TestFlowTable:
    def test_new_flow_detected(self):
        table = FlowTable()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        flow, is_new = table.observe(packet, now=0.0)
        assert is_new and flow.packets == 1

    def test_same_flow_not_new(self):
        table = FlowTable()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        table.observe(packet, now=0.0)
        _flow, is_new = table.observe(packet, now=0.1)
        assert not is_new

    def test_reverse_direction_same_flow(self):
        table = FlowTable()
        forward = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=10)
        reverse = make_tcp_packet("2.2.2.2", 2, "1.1.1.1", 1, payload_size=20)
        flow, _ = table.observe(forward, now=0.0)
        same, is_new = table.observe(reverse, now=0.1)
        assert same is flow and not is_new
        assert flow.packets_forward == 1 and flow.packets_reverse == 1

    def test_byte_counters(self):
        table = FlowTable()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=60)
        flow, _ = table.observe(packet, now=0.0)
        assert flow.bytes == packet.wire_length

    def test_idle_timeout_creates_new_flow(self):
        table = FlowTable(idle_timeout=10.0)
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        old, _ = table.observe(packet, now=0.0)
        fresh, is_new = table.observe(packet, now=20.0)
        assert is_new and fresh is not old
        assert table.evicted_count == 1

    def test_expire_evicts_stale(self):
        table = FlowTable(idle_timeout=5.0)
        table.observe(make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2), now=0.0)
        table.observe(make_tcp_packet("3.3.3.3", 1, "4.4.4.4", 2), now=4.0)
        assert table.expire(now=7.0) == 1
        assert len(table) == 1

    def test_eviction_callback(self):
        evicted = []
        table = FlowTable(idle_timeout=1.0, on_evict=evicted.append)
        table.observe(make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2), now=0.0)
        table.expire(now=5.0)
        assert len(evicted) == 1

    def test_lookup(self):
        table = FlowTable()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        assert table.lookup(packet) is None
        flow, _ = table.observe(packet, now=0.0)
        assert table.lookup(packet) is flow

    def test_remove(self):
        table = FlowTable()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        table.observe(packet, now=0.0)
        assert table.remove(packet) is not None
        assert len(table) == 0
        assert table.remove(packet) is None

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(idle_timeout=0)

    def test_flow_key_of_canonicalizes(self):
        forward = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        reverse = make_tcp_packet("2.2.2.2", 2, "1.1.1.1", 1)
        assert flow_key_of(forward) == flow_key_of(reverse)

    def test_iteration(self):
        table = FlowTable()
        table.observe(make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2), now=0.0)
        table.observe(make_tcp_packet("3.3.3.3", 3, "4.4.4.4", 4), now=0.0)
        assert len(list(table)) == 2
