"""Trace workloads: the synthetic campus wireless trace (§4.6) and a
MoonGen-style cookie-flow generator (Fig. 4)."""

from .campus import PUBLISHED_TRACE, CampusTraceGenerator, CampusTraceStats
from .moongen import PacketGenerator, build_descriptor_pool
from .records import FlowRecord, flow_to_packets
from .stats import ThroughputSample, percentile, throughput_report

__all__ = [
    "PUBLISHED_TRACE",
    "CampusTraceGenerator",
    "CampusTraceStats",
    "PacketGenerator",
    "build_descriptor_pool",
    "FlowRecord",
    "flow_to_packets",
    "ThroughputSample",
    "percentile",
    "throughput_report",
]
