"""Telemetry layer: instruments, snapshots, merging, export."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    TelemetrySnapshot,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_buckets_and_sum(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 5000):
            histogram.observe(value)
        data = histogram.snapshot()
        assert data.count == 4
        assert data.sum == 5055.5
        assert data.counts == [1, 1, 1, 1]  # inf bucket appended

    def test_histogram_quantile(self):
        histogram = Histogram("h", buckets=(1, 2, 4, 8))
        for _ in range(99):
            histogram.observe(1)
        histogram.observe(8)
        data = histogram.snapshot()
        assert data.quantile(0.5) == 1
        assert data.quantile(1.0) == 8

    def test_histogram_merge_mismatched_buckets_raises(self):
        a = Histogram("h", buckets=(1, 2)).snapshot()
        b = Histogram("h", buckets=(1, 3)).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)


class TestSnapshotMerge:
    def test_counters_and_gauges_sum(self):
        a = TelemetrySnapshot(counters={"c": 2}, gauges={"g": 10})
        b = TelemetrySnapshot(counters={"c": 3, "d": 1}, gauges={"g": 5})
        merged = a.merge(b)
        assert merged.counters == {"c": 5, "d": 1}
        assert merged.gauges == {"g": 15}

    def test_histograms_merge_bucketwise(self):
        h1 = Histogram("h", buckets=(1, 10))
        h2 = Histogram("h", buckets=(1, 10))
        h1.observe(0.5)
        h2.observe(5)
        merged = TelemetrySnapshot(histograms={"h": h1.snapshot()}).merge(
            TelemetrySnapshot(histograms={"h": h2.snapshot()})
        )
        assert merged.histograms["h"].count == 2
        assert merged.histograms["h"].counts[:2] == [1, 1]

    def test_merged_classmethod_over_shards(self):
        shards = [
            TelemetrySnapshot(counters={"middlebox.packets": 100})
            for _ in range(4)
        ]
        assert TelemetrySnapshot.merged(shards).counters[
            "middlebox.packets"
        ] == 400

    def test_merge_does_not_mutate_inputs(self):
        a = TelemetrySnapshot(counters={"c": 1})
        b = TelemetrySnapshot(counters={"c": 2})
        a.merge(b)
        assert a.counters == {"c": 1} and b.counters == {"c": 2}


class TestSnapshotExport:
    def test_json_round_trip(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1.5)
        original = TelemetrySnapshot(
            counters={"c": 7},
            gauges={"g": 3.5},
            histograms={"h": histogram.snapshot()},
        )
        restored = TelemetrySnapshot.from_json(original.to_json())
        assert restored.counters == original.counters
        assert restored.gauges == original.gauges
        assert restored.histograms["h"].counts == original.histograms["h"].counts
        assert restored.histograms["h"].buckets[-1] == float("inf")

    def test_rows_flatten_histograms(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1)
        rows = TelemetrySnapshot(histograms={"h": histogram.snapshot()}).rows()
        names = {row["name"] for row in rows}
        assert {"h.count", "h.sum", "h.mean", "h.p50", "h.p99"} <= names

    def test_format_text_sections(self):
        text = TelemetrySnapshot(
            counters={"a.hits": 3}, gauges={"a.level": 2}
        ).format_text()
        assert "counters:" in text and "gauges:" in text
        assert "a.hits" in text

    def test_empty_snapshot(self):
        snapshot = TelemetrySnapshot()
        assert snapshot.empty
        assert "no telemetry" in snapshot.format_text()


class TestRegistry:
    def test_instruments_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_polled_gauge_reads_at_snapshot_time(self):
        registry = MetricsRegistry()
        table = {}
        registry.gauge("flows", fn=lambda: len(table))
        table["a"] = 1
        table["b"] = 2
        assert registry.snapshot().gauges["flows"] == 2

    def test_collector_merged_into_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("own").inc(1)
        registry.register_collector(
            "component",
            lambda: TelemetrySnapshot(counters={"component.hits": 9}),
        )
        snapshot = registry.snapshot()
        assert snapshot.counters == {"own": 1, "component.hits": 9}

    def test_collector_replacement_is_idempotent(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "c", lambda: TelemetrySnapshot(counters={"c.n": 1})
        )
        registry.register_collector(
            "c", lambda: TelemetrySnapshot(counters={"c.n": 2})
        )
        assert registry.snapshot().counters == {"c.n": 2}
        assert registry.collector_names == ["c"]

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("c", TelemetrySnapshot)
        assert registry.unregister_collector("c")
        assert not registry.unregister_collector("c")
        assert registry.snapshot().empty

    def test_duplicate_names_across_collectors_sum(self):
        """Two shards registering the same metric names → fleet totals."""
        registry = MetricsRegistry()
        for shard in range(3):
            registry.register_collector(
                f"shard-{shard}",
                lambda: TelemetrySnapshot(counters={"mb.packets": 10}),
            )
        assert registry.snapshot().counters["mb.packets"] == 30
