"""Carrier interface for moving cookies in-band with traffic.

The paper deliberately supports several carriers — "a special HTTP header,
a TLS-handshake extension, an IPv6 extension header" and TCP long options —
so the right layer can be picked per application and network service.  Each
carrier implements this small interface; the registry composes them.
"""

from __future__ import annotations

import abc

from ...netsim.packet import Packet
from ..cookie import Cookie

__all__ = ["CookieCarrier"]


class CookieCarrier(abc.ABC):
    """One way of carrying a cookie inside a packet.

    Implementations must be symmetric: ``extract`` recovers exactly the
    cookie a prior ``attach`` embedded, and returns ``None`` (never raises)
    when scanning a packet that carries nothing — the data path scans every
    packet.
    """

    #: Registry key, also referenced by descriptor ``transports`` attributes.
    name: str = "abstract"

    #: Extra wire bytes one attached cookie costs on this carrier.
    overhead_bytes: int = 0

    @abc.abstractmethod
    def can_carry(self, packet: Packet) -> bool:
        """Whether this packet has the right shape for this carrier."""

    @abc.abstractmethod
    def attach(self, packet: Packet, cookie: Cookie) -> None:
        """Embed the cookie; raises TransportError if the packet cannot
        carry it (callers should check :meth:`can_carry` first)."""

    @abc.abstractmethod
    def extract(self, packet: Packet) -> Cookie | None:
        """Recover an embedded cookie, or None if this carrier finds none.

        Malformed cookie bytes also yield None: on the data path a garbled
        cookie must degrade to best-effort, not take down the middlebox.
        """

    def extract_all(self, packet: Packet) -> list[Cookie]:
        """All cookies this carrier finds in the packet.

        Cookies are composable — "users can combine multiple services
        (potentially by different networks) by composing multiple cookies
        together" — so carriers that can hold several (TCP options, IPv6
        extension chains, comma-joined text fields) override this.  The
        default wraps :meth:`extract`.
        """
        cookie = self.extract(packet)
        return [cookie] if cookie is not None else []

    def __repr__(self) -> str:
        return f"<carrier {self.name}>"
