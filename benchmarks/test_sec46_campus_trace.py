"""§4.6 — can the middlebox process all wireless traffic of a campus?

Paper: the trace holds 11.3 M flows from 73 613 IPs over 15 h (median flow
50 packets, p99 new-flows/s 442), and the middlebox's sustainable rate
("~48000 new flows per second" at its operating point) is "much more than
required by the university trace".

We generate a scaled synthetic trace matched to the published marginals,
validate them, replay it through the middlebox, and compare capacity
against the published p99 demand.
"""

import pytest

from repro.experiments import run_sec46
from repro.trace import PUBLISHED_TRACE


def test_sec46_campus_replay(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_sec46(scale=0.0004, cookie_fraction=0.5),
        rounds=1,
        iterations=1,
    )

    report("§4.6 — scaled campus trace replay")
    for key, value in result.summary().items():
        report(f"  {key}: {value}")
    report()
    report("published trace marginals for reference:")
    for key, value in PUBLISHED_TRACE.items():
        report(f"  {key}: {value}")

    benchmark.extra_info["sustainable_new_flows_per_s"] = round(
        result.sustainable_new_flows_per_second
    )
    benchmark.extra_info["headroom_over_p99"] = round(result.headroom_over_p99, 2)

    # Trace marginals reproduce the published ones.
    assert result.trace.median_flow_packets == pytest.approx(
        PUBLISHED_TRACE["median_flow_packets"], rel=0.15
    )
    assert result.trace.p99_new_flows_per_second == pytest.approx(
        PUBLISHED_TRACE["p99_new_flows_per_second"], rel=0.30
    )
    # Every valid cookie verified; per-IP accounting covered the pool.
    assert result.cookie_hits == result.cookie_flows
    assert result.subscribers_accounted > 0
    # "Much more than required by the university trace."
    assert result.headroom_over_p99 > 1.0
