"""Netsim kernel micros: events/s and packets/s vs the pre-PR kernel.

The fast-path work (``__slots__`` events, lazy-deletion heap,
``schedule_periodic`` re-arm, closure-free link transmission) claims a
real constant-factor win on the kernel hot loop.  Rather than pinning
absolute numbers — which would tie the suite to one machine — this
benchmark embeds a faithful copy of the *pre-PR* kernel and link
(dataclass events, ``itertools.count`` seq, per-packet lambda closures)
and races the two implementations on identical workloads in the same
process.  The speedup floors are asserted; both raw throughputs and the
ratios land in ``benchmarks/reports/netsim_kernel.json``.

Floors (ratios, machine-independent):

- events/s (timer-churn micro): >= 1.3x
- packets/s (saturated-link micro): >= 1.0x (no regression)
"""

from __future__ import annotations

import heapq
import itertools
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.netsim.events import EventLoop
from repro.netsim.links import Link
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"

EVENTS_MICRO_TOTAL = 150_000
EVENTS_MICRO_TIMERS = 256
PACKETS_MICRO_COUNT = 30_000
REPEATS = 3

EVENTS_SPEEDUP_FLOOR = 1.3
PACKETS_SPEEDUP_FLOOR = 1.0


# ----------------------------------------------------------------------
# The pre-PR kernel, verbatim semantics (see git history of events.py):
# dataclass(order=True) events, itertools.count sequence, no tombstone
# accounting, no compaction, no periodic primitive.
# ----------------------------------------------------------------------
@dataclass(order=True)
class LegacyScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class LegacyEventLoop:
    def __init__(self) -> None:
        self._heap: list[LegacyScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback) -> LegacyScheduledEvent:
        event = LegacyScheduledEvent(
            time=self._now + delay, seq=next(self._seq), callback=callback
        )
        heapq.heappush(self._heap, event)
        return event

    def run_until_idle(self) -> float:
        processed = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            processed += 1
        self.events_processed += processed
        return self._now


class LegacyLink:
    """The pre-PR transmission path: a fresh lambda per packet for both
    the serialization completion and the propagation delivery."""

    def __init__(self, loop, rate_bps: float, delay: float, sink) -> None:
        self.loop = loop
        self.rate_bps = rate_bps
        self.delay = delay
        self.sink = sink
        self._queue: list = []
        self._busy = False
        self.transmitted_packets = 0

    def push(self, packet) -> None:
        self._queue.append(packet)
        if not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        if not self._queue:
            self._busy = False
            return
        packet = self._queue.pop(0)
        self._busy = True
        serialization = packet.wire_length * 8.0 / self.rate_bps
        self.loop.schedule(serialization, lambda p=packet: self._finish(p))

    def _finish(self, packet) -> None:
        self.transmitted_packets += 1
        if self.delay > 0:
            self.loop.schedule(
                self.delay, lambda p=packet: self.sink.push(p)
            )
        else:
            self.sink.push(packet)
        self._start_transmission()


# ----------------------------------------------------------------------
# Workloads — identical logical processes on either kernel.
# ----------------------------------------------------------------------
def _timer_churn(loop, total_events: int) -> int:
    """The RTO pattern: a population of timers where every firing arms a
    replacement and cancels a pending neighbour — the tombstone-heavy
    workload the lazy-deletion heap exists for."""
    state = {"fired": 0}
    timers: list = [None] * EVENTS_MICRO_TIMERS

    def make_tick(slot: int):
        def tick():
            state["fired"] += 1
            if state["fired"] >= total_events:
                return
            delay = 0.1 + (slot * 7 % 13) * 0.01
            timers[slot] = loop.schedule(delay, make_tick(slot))
            victim = (slot * 31 + state["fired"]) % EVENTS_MICRO_TIMERS
            event = timers[victim]
            if victim != slot and event is not None and not event.cancelled:
                event.cancel()
                timers[victim] = loop.schedule(
                    delay + 0.05, make_tick(victim)
                )

        return tick

    for slot in range(EVENTS_MICRO_TIMERS):
        timers[slot] = loop.schedule(
            0.01 + slot * 0.001, make_tick(slot)
        )
    loop.run_until_idle()
    return state["fired"]


def _events_micro_legacy() -> float:
    loop = LegacyEventLoop()
    start = time.perf_counter()
    fired = _timer_churn(loop, EVENTS_MICRO_TOTAL)
    elapsed = time.perf_counter() - start
    assert fired >= EVENTS_MICRO_TOTAL
    return loop.events_processed / elapsed


def _events_micro_current() -> float:
    loop = EventLoop()
    start = time.perf_counter()
    fired = _timer_churn(loop, EVENTS_MICRO_TOTAL)
    elapsed = time.perf_counter() - start
    assert fired >= EVENTS_MICRO_TOTAL
    return loop.events_processed / elapsed


def _packet_stream(n: int):
    packet = make_tcp_packet(
        "203.0.113.5", 443, "192.168.1.50", 50_000, payload_size=1200
    )
    return [packet.clone() for _ in range(n)]


def _packets_micro_legacy() -> float:
    loop = LegacyEventLoop()
    sink = Sink(keep=False)
    link = LegacyLink(loop, rate_bps=1e9, delay=0.002, sink=sink)
    packets = _packet_stream(PACKETS_MICRO_COUNT)
    # Pre-PR source idiom: one closure per injection.
    for i, packet in enumerate(packets):
        loop.schedule(i * 1e-5, lambda p=packet: link.push(p))
    start = time.perf_counter()
    loop.run_until_idle()
    elapsed = time.perf_counter() - start
    assert link.transmitted_packets == PACKETS_MICRO_COUNT
    return PACKETS_MICRO_COUNT / elapsed


def _packets_micro_current() -> float:
    loop = EventLoop()
    sink = Sink(keep=False)
    link = Link(loop, rate_bps=1e9, delay=0.002)
    link >> sink
    packets = _packet_stream(PACKETS_MICRO_COUNT)
    for i, packet in enumerate(packets):
        loop.schedule(i * 1e-5, lambda p=packet: link.push(p))
    start = time.perf_counter()
    loop.run_until_idle()
    elapsed = time.perf_counter() - start
    assert link.transmitted_packets == PACKETS_MICRO_COUNT
    return PACKETS_MICRO_COUNT / elapsed


def _best_of(fn, repeats: int = REPEATS) -> float:
    return max(fn() for _ in range(repeats))


def test_kernel_micros_beat_pre_pr_baseline(report):
    legacy_eps = _best_of(_events_micro_legacy)
    current_eps = _best_of(_events_micro_current)
    legacy_pps = _best_of(_packets_micro_legacy)
    current_pps = _best_of(_packets_micro_current)

    events_speedup = current_eps / legacy_eps
    packets_speedup = current_pps / legacy_pps

    payload = {
        "events_micro": {
            "workload": (
                f"timer churn, {EVENTS_MICRO_TIMERS} live timers, "
                f"{EVENTS_MICRO_TOTAL} firings, cancel+re-arm per firing"
            ),
            "legacy_events_per_s": round(legacy_eps),
            "current_events_per_s": round(current_eps),
            "speedup": round(events_speedup, 3),
            "floor": EVENTS_SPEEDUP_FLOOR,
        },
        "packets_micro": {
            "workload": (
                f"{PACKETS_MICRO_COUNT} packets, saturated 1 Gb/s link, "
                "2 ms propagation"
            ),
            "legacy_packets_per_s": round(legacy_pps),
            "current_packets_per_s": round(current_pps),
            "speedup": round(packets_speedup, 3),
            "floor": PACKETS_SPEEDUP_FLOOR,
        },
        "repeats": REPEATS,
        "method": "best-of-N in-process race vs embedded pre-PR kernel",
    }
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / "netsim_kernel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    report("netsim kernel micros — current vs embedded pre-PR baseline")
    for name, micro in (("events", payload["events_micro"]),
                        ("packets", payload["packets_micro"])):
        report(f"  {name}: {micro['speedup']}x "
               f"(floor {micro['floor']}x) — {micro['workload']}")

    assert events_speedup >= EVENTS_SPEEDUP_FLOOR, payload["events_micro"]
    assert packets_speedup >= PACKETS_SPEEDUP_FLOOR, payload["packets_micro"]
