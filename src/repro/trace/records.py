"""Flow records: the unit both trace generators produce.

A :class:`FlowRecord` describes one HTTP(S) flow compactly;``to_packets``
expands a record into the packet sequence a middlebox would see, with an
optional cookie on the first packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.cookie import Cookie
from ..core.transport import TransportRegistry, default_registry
from ..netsim.appmsg import TLSClientHello
from ..netsim.packet import Packet, make_tcp_packet

__all__ = ["FlowRecord", "flow_to_packets"]


@dataclass(frozen=True)
class FlowRecord:
    """One flow in a trace."""

    start_time: float
    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    packets: int
    avg_packet_size: int = 800
    https: bool = True
    sni: str = ""

    @property
    def bytes(self) -> int:
        return self.packets * self.avg_packet_size


def flow_to_packets(
    record: FlowRecord,
    cookie: Cookie | None = None,
    registry: TransportRegistry | None = None,
    downlink_fraction: float = 0.75,
) -> Iterator[Packet]:
    """Expand a flow record into packets.

    The first packet is the client's request (ClientHello with the
    record's SNI) and carries ``cookie`` if given; the rest split between
    directions by ``downlink_fraction``.
    """
    registry = registry or default_registry()
    first = make_tcp_packet(
        record.client_ip,
        record.client_port,
        record.server_ip,
        record.server_port,
        payload_size=min(record.avg_packet_size, 400),
        content=TLSClientHello(sni=record.sni) if record.https else None,
        created_at=record.start_time,
    )
    if cookie is not None:
        registry.attach(first, cookie)
    yield first
    remaining = record.packets - 1
    downlink = int(remaining * downlink_fraction)
    uplink = remaining - downlink
    for _ in range(uplink):
        yield make_tcp_packet(
            record.client_ip,
            record.client_port,
            record.server_ip,
            record.server_port,
            payload_size=record.avg_packet_size,
            encrypted=record.https,
            created_at=record.start_time,
        )
    for _ in range(downlink):
        yield make_tcp_packet(
            record.server_ip,
            record.server_port,
            record.client_ip,
            record.client_port,
            payload_size=record.avg_packet_size,
            encrypted=record.https,
            created_at=record.start_time,
        )
