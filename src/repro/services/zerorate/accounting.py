"""Billing on top of the zero-rating counters.

The middlebox counts; this module turns counters into the things carriers
actually operate: data caps, overage, invoices, and the "your free app
doesn't count" arithmetic that motivates zero-rating in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

from .middlebox import SubscriberCounters, ZeroRatingMiddlebox

__all__ = ["BillingPlan", "Invoice", "AccountingLedger"]

GB = 1_000_000_000


@dataclass(frozen=True)
class BillingPlan:
    """A subscriber's data plan."""

    name: str = "standard"
    monthly_cap_bytes: int = 2 * GB
    overage_per_gb: float = 10.0
    base_price: float = 30.0


@dataclass
class Invoice:
    """One billing-cycle statement for one subscriber."""

    subscriber: str
    plan: BillingPlan
    charged_bytes: int
    free_bytes: int
    base_price: float
    overage: float

    @property
    def total(self) -> float:
        return self.base_price + self.overage

    @property
    def cap_used_fraction(self) -> float:
        if self.plan.monthly_cap_bytes == 0:
            return 0.0
        return self.charged_bytes / self.plan.monthly_cap_bytes


class AccountingLedger:
    """Maps subscribers to plans and produces invoices from middlebox
    counters.  Zero-rated bytes never count against the cap — that is the
    entire product."""

    def __init__(self, default_plan: BillingPlan | None = None) -> None:
        self.default_plan = default_plan or BillingPlan()
        self.plans: dict[str, BillingPlan] = {}

    def enroll(self, subscriber: str, plan: BillingPlan) -> None:
        self.plans[subscriber] = plan

    def plan_of(self, subscriber: str) -> BillingPlan:
        return self.plans.get(subscriber, self.default_plan)

    def over_cap(self, subscriber: str, counters: SubscriberCounters) -> bool:
        """Has this subscriber's *charged* usage exceeded the cap?"""
        return counters.charged_bytes > self.plan_of(subscriber).monthly_cap_bytes

    def invoice(self, subscriber: str, counters: SubscriberCounters) -> Invoice:
        plan = self.plan_of(subscriber)
        overage_bytes = max(0, counters.charged_bytes - plan.monthly_cap_bytes)
        overage = (overage_bytes / GB) * plan.overage_per_gb
        return Invoice(
            subscriber=subscriber,
            plan=plan,
            charged_bytes=counters.charged_bytes,
            free_bytes=counters.free_bytes,
            base_price=plan.base_price,
            overage=overage,
        )

    def invoice_all(self, middlebox: ZeroRatingMiddlebox) -> list[Invoice]:
        """Statements for every subscriber the middlebox has seen."""
        return [
            self.invoice(subscriber, counters)
            for subscriber, counters in sorted(middlebox.counters.items())
        ]

    def savings_report(self, middlebox: ZeroRatingMiddlebox) -> dict[str, float]:
        """Per-subscriber fraction of traffic that rode for free."""
        return {
            subscriber: counters.free_fraction
            for subscriber, counters in sorted(middlebox.counters.items())
        }
