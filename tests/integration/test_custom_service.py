"""The docs/TUTORIAL.md service, verbatim: a custom "study-hours"
deprioritization lane built from the public API only.

If this test breaks, the tutorial is lying — fix both.
"""

from repro.core import (
    CookieAttributes,
    CookieDescriptor,
    CookieMatcher,
    CookieServer,
    DescriptorStore,
    ServiceOffering,
    UserAgent,
)
from repro.core.switch import CookieSwitch
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.events import EventLoop
from repro.netsim.links import Link
from repro.netsim.middlebox import Sink
from repro.netsim.packet import Packet, make_tcp_packet
from repro.netsim.queues import StrictPriorityScheduler

STUDY_CLASS = 3


def study_hours_applier(descriptor: CookieDescriptor, packet: Packet) -> None:
    packet.meta["qos_class"] = STUDY_CLASS
    packet.meta["service"] = descriptor.service_data


def _build(context=None):
    clock = lambda: 0.0  # noqa: E731
    server = CookieServer(clock=clock)

    def study_attributes(now: float) -> CookieAttributes:
        return CookieAttributes(
            shared=True,
            expires_at=now + 14 * 3600,
            extra={"constraints": {"network": "home-wifi"}},
        )

    server.offer(
        ServiceOffering(
            name="study-hours",
            description="deprioritize this device on school nights",
            service_data="study-hours",
            attribute_factory=study_attributes,
        )
    )
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    switch = CookieSwitch(
        CookieMatcher(store),
        clock=clock,
        applier=study_hours_applier,
        context=context if context is not None else {"network": "home-wifi"},
    )
    sink = Sink()
    switch >> sink
    parent = UserAgent("parent", clock=clock, channel=server.handle_request)
    parent.acquire("study-hours")
    return server, switch, sink, parent


def _child_packet(parent=None, sport=5000):
    packet = make_tcp_packet(
        "192.168.1.30", sport, "142.250.72.1", 443,
        content=TLSClientHello(sni="game-servers.example"),
    )
    if parent is not None:
        parent.insert_cookie(packet, "study-hours")
    return packet


class TestStudyHoursService:
    def test_tagged_traffic_deprioritized(self):
        _server, _switch, sink, parent = _build()
        _switch.push(_child_packet(parent))
        assert sink.packets[0].meta["qos_class"] == STUDY_CLASS
        assert sink.packets[0].meta["service"] == "study-hours"

    def test_untagged_traffic_untouched(self):
        _server, switch, sink, _parent = _build()
        switch.push(_child_packet())
        assert "qos_class" not in sink.packets[0].meta

    def test_constraint_scopes_to_home_network(self):
        """The same cookies do nothing at the coffee shop."""
        _server, switch, sink, parent = _build(context={"network": "coffee-shop"})
        switch.push(_child_packet(parent))
        assert "qos_class" not in sink.packets[0].meta

    def test_revocation_restores_service(self):
        server, switch, sink, parent = _build()
        switch.push(_child_packet(parent, sport=5000))
        assert parent.request_revocation("study-hours")
        # Even already-bound flows drop back to normal service.
        switch.push(_child_packet(sport=5000))
        assert "qos_class" not in sink.packets[1].meta
        report = server.audit_log.regulator_report()
        assert report["services"]["study-hours"]["revoked"] == 1

    def test_enforcement_on_a_real_link(self):
        """Study-hours traffic yields the bottleneck to everything else."""
        _server, switch, _sink, parent = _build()
        loop = EventLoop()
        link = Link(
            loop, rate_bps=10_000,
            scheduler=StrictPriorityScheduler(levels=4),
        )
        egress = Sink()
        switch.downstream = link
        link >> egress

        # The AP's default classifier puts untagged traffic in a normal
        # class above the study lane (unmarked packets would otherwise
        # fall into the scheduler's lowest class by default).
        def classify_default(packet):
            packet.meta.setdefault("qos_class", 1)

        # Seize the transmitter, then queue one study packet and one
        # normal packet: the normal one must depart first.
        filler = _child_packet(sport=6001)
        classify_default(filler)
        switch.push(filler)
        study = _child_packet(parent, sport=6000)
        switch.push(study)
        normal = _child_packet(sport=6002)
        classify_default(normal)
        switch.push(normal)
        loop.run_until_idle()
        order = [p.packet_id for p in egress.packets]
        assert order.index(normal.packet_id) < order.index(study.packet_id)
