"""Batched element plumbing: push_batch/process_batch/emit_batch and the
per-tick BatchDriver.

The contract under test is the one ``Element.process_batch`` documents:
a batch must leave every element exactly as the equivalent scalar loop
would — same counters, same emitted packets in the same order — and the
default implementation must provide that automatically for elements that
never opted into batching.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netsim.events import EventLoop
from repro.netsim.middlebox import (
    BatchDriver,
    Counter,
    Element,
    Filter,
    Pipeline,
    Sink,
)
from repro.netsim.packet import make_tcp_packet


def _packets(count, payload=100):
    return [
        make_tcp_packet(
            "10.0.0.1", 5000 + i, "2.2.2.2", 80, payload_size=payload + i
        )
        for i in range(count)
    ]


class _Doubler(Element):
    """Scalar-only element: emits every packet twice (no batch override)."""

    def __init__(self):
        super().__init__()
        self.handled = 0

    def handle(self, packet):
        self.handled += 1
        self.emit(packet)
        self.emit(packet)


class TestDefaultBatchPath:
    @settings(max_examples=25, deadline=None)
    @given(count=st.integers(0, 20))
    def test_default_process_batch_equals_scalar_loop(self, count):
        packets = _packets(count)
        scalar, batched = _Doubler(), _Doubler()
        scalar_sink, batched_sink = Sink(), Sink()
        scalar >> scalar_sink
        batched >> batched_sink
        for packet in packets:
            scalar.push(packet)
        batched.push_batch(packets)
        assert batched.handled == scalar.handled == count
        assert [p.packet_id for p in batched_sink.packets] == [
            p.packet_id for p in scalar_sink.packets
        ]

    def test_emit_batch_skips_empty_and_unwired(self):
        element = Element()
        element.emit_batch([])  # no downstream, no packets: both no-ops
        sink = Sink()
        element >> sink
        element.emit_batch([])
        assert sink.count == 0


class TestBatchedElements:
    @settings(max_examples=25, deadline=None)
    @given(count=st.integers(0, 20))
    def test_counter_batch_equals_scalar(self, count):
        packets = _packets(count)
        scalar, batched = Counter(), Counter()
        for packet in packets:
            scalar.push(packet)
        batched.push_batch(packets)
        assert (batched.count, batched.bytes) == (scalar.count, scalar.bytes)

    @settings(max_examples=25, deadline=None)
    @given(count=st.integers(0, 20))
    def test_sink_batch_equals_scalar(self, count):
        packets = _packets(count)
        scalar, batched = Sink(), Sink()
        for packet in packets:
            scalar.push(packet)
        batched.push_batch(packets)
        assert (batched.count, batched.bytes) == (scalar.count, scalar.bytes)
        assert batched.packets == scalar.packets

    @settings(max_examples=25, deadline=None)
    @given(threshold=st.integers(0, 300), count=st.integers(0, 20))
    def test_filter_batch_equals_scalar(self, threshold, count):
        packets = _packets(count)
        predicate = lambda packet: packet.wire_length > threshold
        scalar, batched = Filter(predicate), Filter(predicate)
        scalar_sink, batched_sink = Sink(), Sink()
        scalar >> scalar_sink
        batched >> batched_sink
        for packet in packets:
            scalar.push(packet)
        batched.push_batch(packets)
        assert (batched.passed, batched.filtered) == (
            scalar.passed,
            scalar.filtered,
        )
        assert [p.packet_id for p in batched_sink.packets] == [
            p.packet_id for p in scalar_sink.packets
        ]

    def test_pipeline_push_batch_traverses_chain(self):
        packets = _packets(7)
        counter, sink = Counter(), Sink()
        pipeline = Pipeline(Filter(lambda p: True), counter, sink)
        pipeline.push_batch(packets)
        assert counter.count == sink.count == 7
        assert sink.packets == packets


class TestBatchDriver:
    def test_feeds_source_in_per_tick_bursts(self):
        loop = EventLoop()
        packets = _packets(10)
        sink = Sink()
        driver = BatchDriver(
            loop, packets, sink, batch_size=4, tick=0.001
        ).start()
        loop.run_until_idle()
        assert driver.done
        assert driver.packets_fed == 10
        assert driver.batches_fed == 3  # 4 + 4 + 2
        assert sink.packets == packets

    def test_batch_size_caps_each_burst(self):
        loop = EventLoop()
        delivered = []

        class Recorder(Element):
            def process_batch(self, batch):
                delivered.append(len(batch))

        BatchDriver(
            loop, _packets(9), Recorder(), batch_size=3, tick=0.5
        ).start()
        loop.run_until_idle()
        assert delivered == [3, 3, 3]
        # One burst per tick: the last burst fires two ticks in.
        assert loop.now >= 1.0

    def test_on_done_fires_once_after_final_batch(self):
        loop = EventLoop()
        sink = Sink()
        events = []
        driver = BatchDriver(
            loop,
            _packets(5),
            sink,
            batch_size=2,
            on_done=lambda: events.append(sink.count),
        ).start()
        loop.run_until_idle()
        assert driver.done
        # Fired exactly once, after the final (partial) batch was pushed.
        assert events == [5]
        assert driver.on_done is None

    def test_on_done_fires_for_empty_source(self):
        loop = EventLoop()
        fired = []
        BatchDriver(
            loop, [], Sink(), batch_size=4, on_done=lambda: fired.append(True)
        ).start()
        loop.run_until_idle()
        assert fired == [True]

    def test_empty_source_stops_immediately(self):
        loop = EventLoop()
        sink = Sink()
        driver = BatchDriver(loop, [], sink, batch_size=8).start()
        loop.run_until_idle()
        assert driver.done
        assert driver.batches_fed == 0
        assert sink.count == 0

    def test_rejects_bad_parameters(self):
        loop = EventLoop()
        for kwargs in ({"batch_size": 0}, {"tick": 0.0}):
            try:
                BatchDriver(loop, [], Sink(), **kwargs)
            except ValueError:
                pass
            else:  # pragma: no cover - defensive
                raise AssertionError(f"expected ValueError for {kwargs}")
