"""Table 1 — properties of cookies vs DPI, OOB, and DiffServ.

Every cell the paper prints is recomputed here, probe-backed where the
property is checkable by running this repository's implementations, and
asserted equal to the published matrix.
"""

from repro.baselines import (
    MECHANISMS,
    PAPER_TABLE1,
    evaluate_table1,
    format_table1,
)


def test_table1_property_matrix(benchmark, report):
    rows = benchmark(evaluate_table1)

    report("Table 1 — mechanism property matrix (recomputed)")
    report(format_table1(rows))

    mismatches = []
    for name, expected in PAPER_TABLE1.items():
        got = tuple(rows[name][mechanism] for mechanism in MECHANISMS)
        if got != expected:
            mismatches.append((name, expected, got))
    report()
    report(f"cells matching the paper: "
           f"{(len(PAPER_TABLE1) - len(mismatches)) * len(MECHANISMS)}"
           f"/{len(PAPER_TABLE1) * len(MECHANISMS)}")

    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["mismatches"] = len(mismatches)
    assert mismatches == []
