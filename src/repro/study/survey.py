"""The 1000-user zero-rating survey (Fig. 2).

"We asked 1,000 smartphone users their preferences on zero-rating through
an online survey.  65 % of users expressed interest in a service that lets
them choose one application that does not count against their monthly
cellular data cap ... responses were heavy-tailed", naming 106 distinct
applications across every category.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from .appstore import App, AppCatalog
from .preferences import AppPreferenceSampler

__all__ = ["SurveyResult", "ZeroRatingSurvey", "PUBLISHED_FIG2"]

#: The aggregates the paper reports for Fig. 2.
PUBLISHED_FIG2 = {
    "respondents": 1000,
    "interest_rate": 0.65,
    "distinct_apps": 106,
    "top_app": "facebook",
    "top_app_users": 50,
}


@dataclass
class SurveyResult:
    """Responses plus the aggregates Fig. 2 reports."""

    respondents: int
    interested: int
    choices: Counter = field(default_factory=Counter)
    catalog: AppCatalog = field(default_factory=AppCatalog)

    @property
    def interest_rate(self) -> float:
        return self.interested / self.respondents if self.respondents else 0.0

    @property
    def distinct_apps(self) -> int:
        return len(self.choices)

    @property
    def top_app(self) -> tuple[str, int]:
        name, count = self.choices.most_common(1)[0]
        return name, count

    def users_for(self, app_name: str) -> int:
        return self.choices.get(app_name, 0)

    def preference_fraction(self, app_names: set[str]) -> float:
        """Fraction of expressed preferences landing on ``app_names`` —
        the quantity zero-rating coverage is measured in."""
        covered = sum(count for name, count in self.choices.items() if name in app_names)
        total = sum(self.choices.values())
        return covered / total if total else 0.0

    def chosen_category_breakdown(self) -> dict[str, int]:
        """Distinct chosen apps per category (Fig. 2's left table)."""
        counts: dict[str, int] = {}
        for name in self.choices:
            app = self.catalog.get(name)
            category = app.category if app is not None else "other"
            counts[category] = counts.get(category, 0) + 1
        return counts

    def chosen_popularity_breakdown(self) -> dict[str, int]:
        """Distinct chosen apps per install bucket (the right table)."""
        counts: dict[str, int] = {}
        for name in self.choices:
            app = self.catalog.get(name)
            bucket = app.installs_bucket if app is not None else "N/A"
            counts[bucket] = counts.get(bucket, 0) + 1
        return counts

    def figure2_bars(self, limit: int = 30) -> list[tuple[str, int]]:
        """The bar chart: apps by respondent count, descending."""
        return self.choices.most_common(limit)

    def summary(self) -> dict[str, object]:
        top_name, top_count = self.top_app
        return {
            "respondents": self.respondents,
            "interested": self.interested,
            "interest_rate": round(self.interest_rate, 3),
            "distinct_apps": self.distinct_apps,
            "top_app": top_name,
            "top_app_users": top_count,
        }


class ZeroRatingSurvey:
    """Runs the survey: interest roll, then one app pick per interested
    respondent."""

    def __init__(
        self,
        respondents: int = 1000,
        interest_rate: float = 0.65,
        sampler: AppPreferenceSampler | None = None,
        seed: int = 2015,
    ) -> None:
        if respondents <= 0:
            raise ValueError("need at least one respondent")
        if not 0 < interest_rate <= 1:
            raise ValueError("interest_rate must be in (0, 1]")
        self.respondents = respondents
        self.interest_rate = interest_rate
        self.rng = random.Random(seed)
        self.sampler = sampler or AppPreferenceSampler(seed=seed)

    def run(self) -> SurveyResult:
        interested = sum(
            1 for _ in range(self.respondents) if self.rng.random() < self.interest_rate
        )
        result = SurveyResult(
            respondents=self.respondents,
            interested=interested,
            catalog=self.sampler.catalog,
        )
        for _ in range(interested):
            app: App = self.sampler.draw()
            result.choices[app.name] += 1
        return result
