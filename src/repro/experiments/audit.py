"""The adversarial neutrality-audit campaign (PROTOCOL.md §13).

Runs the record/replay auditor (:mod:`repro.audit.auditor`) across the
full matrix the acceptance bar names: the honest stack on every element
(stateful + stateless zero-rating, Boost, AnyLink) must come back clean
— zero false positives — and every malicious persona from
:mod:`repro.audit.personas` must be flagged on each of its target
elements.  The campaign is a pure function of the seed; CI runs it with
the pinned default and renders the personas × verdicts table from the
JSON report.

This reproduces no paper figure — it is the end-to-end oracle behind the
regulatory story of §6 ("Net neutrality"): an outside party, armed only
with matched traffic pairs and the public control plane, can verify the
network applies the advertised special treatment and nothing else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..audit.auditor import AUDIT_SEED, AuditConfig, AuditVerdict, NeutralityAuditor
from ..audit.personas import PERSONAS, HonestOperator, OperatorPersona

__all__ = ["AuditCampaignConfig", "AuditCampaignReport", "run_audit"]

#: The elements each audit target name maps to.
_TARGET_ELEMENTS: dict[str, tuple[str, ...]] = {
    "zerorate": ("zerorate-stateful", "zerorate-stateless"),
    "boost": ("boost",),
    "anylink": ("anylink",),
}


@dataclass(frozen=True)
class AuditCampaignConfig:
    """Knobs for one campaign; the default is the CI acceptance profile."""

    seed: int = AUDIT_SEED
    trials: int = 12
    alpha: float = 0.01
    #: Restrict the malicious personas to run (None = all of them).
    personas: tuple[str, ...] | None = None

    def audit_config(self) -> AuditConfig:
        return AuditConfig(seed=self.seed, trials=self.trials, alpha=self.alpha)


@dataclass
class AuditCampaignReport:
    """Everything CI needs: one row per element × persona audit."""

    config: dict[str, Any]
    verdicts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def false_positives(self) -> list[str]:
        return [
            f"honest stack flagged on {v['element']}: {v['violations']}"
            for v in self.verdicts
            if v["persona"] == "honest" and v["flagged"]
        ]

    @property
    def missed_personas(self) -> list[str]:
        return [
            f"{v['persona']} escaped the auditor on {v['element']}"
            for v in self.verdicts
            if v["persona"] != "honest" and not v["flagged"]
        ]

    @property
    def violations(self) -> list[str]:
        return self.false_positives + self.missed_personas

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": self.config,
                "ok": self.ok,
                "violations": self.violations,
                "verdicts": self.verdicts,
            },
            indent=2,
            sort_keys=True,
        )

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "audits": len(self.verdicts),
            "honest_clean": not self.false_positives,
            "personas_flagged": sum(
                1
                for v in self.verdicts
                if v["persona"] != "honest" and v["flagged"]
            ),
            "personas_missed": len(self.missed_personas),
        }

    def table_rows(self) -> list[dict[str, str]]:
        """Flat rows for the CI step-summary personas × verdicts table."""
        rows = []
        for v in self.verdicts:
            bad = [
                name
                for name, dim in v["dimensions"].items()
                if not dim["ok"]
            ]
            expected = "clean" if v["persona"] == "honest" else "flagged"
            actual = "flagged" if v["flagged"] else "clean"
            rows.append(
                {
                    "persona": v["persona"],
                    "element": v["element"],
                    "expected": expected,
                    "verdict": actual,
                    "dimensions": ", ".join(bad) or "-",
                    "ok": "yes" if expected == actual else "NO",
                }
            )
        return rows


def _run_one(
    auditor: NeutralityAuditor, persona: OperatorPersona, element: str
) -> AuditVerdict:
    if element == "zerorate-stateful":
        return auditor.audit_zero_rating(persona, element="stateful")
    if element == "zerorate-stateless":
        return auditor.audit_zero_rating(persona, element="stateless")
    if element == "boost":
        return auditor.audit_boost(persona)
    if element == "anylink":
        return auditor.audit_anylink(persona)
    raise ValueError(f"unknown element {element!r}")


def run_audit(
    config: AuditCampaignConfig | None = None,
    telemetry=None,
) -> AuditCampaignReport:
    """Run the full honest + personas matrix; deterministic in the seed.

    ``telemetry``, if given (a :class:`~repro.telemetry.MetricsRegistry`),
    gets an ``audit`` collector exporting the campaign verdict counts —
    the same collector pattern every data-plane element uses.
    """
    config = config or AuditCampaignConfig()
    if config.personas is not None:
        unknown = sorted(set(config.personas) - set(PERSONAS))
        if unknown:
            raise ValueError(f"unknown personas: {', '.join(unknown)}")
    auditor = NeutralityAuditor(config.audit_config())
    report = AuditCampaignReport(
        config={
            "seed": config.seed,
            "trials": config.trials,
            "alpha": config.alpha,
        }
    )

    honest_elements = [
        element
        for elements in _TARGET_ELEMENTS.values()
        for element in elements
    ]
    for element in honest_elements:
        verdict = _run_one(auditor, HonestOperator(), element)
        report.verdicts.append(verdict.to_json())

    for name, factory in PERSONAS.items():
        if config.personas is not None and name not in config.personas:
            continue
        for target in factory().targets:
            for element in _TARGET_ELEMENTS[target]:
                verdict = _run_one(auditor, factory(), element)
                report.verdicts.append(verdict.to_json())

    if telemetry is not None:
        register_audit_telemetry(telemetry, report)
    return report


def register_audit_telemetry(
    registry, report: AuditCampaignReport, prefix: str = "audit"
) -> None:
    """Expose a campaign report through the shared metrics registry."""
    from ..telemetry import TelemetrySnapshot

    def collect() -> TelemetrySnapshot:
        summary = report.summary()
        flagged_dimensions = sum(
            1
            for v in report.verdicts
            for dim in v["dimensions"].values()
            if not dim["ok"]
        )
        return TelemetrySnapshot(
            counters={
                f"{prefix}.audits": summary["audits"],
                f"{prefix}.personas_flagged": summary["personas_flagged"],
                f"{prefix}.personas_missed": summary["personas_missed"],
                f"{prefix}.false_positives": len(report.false_positives),
                f"{prefix}.flagged_dimensions": flagged_dimensions,
            },
            gauges={f"{prefix}.ok": int(summary["ok"])},
        )

    registry.register_collector(prefix, collect)
