"""Table 1: property matrix of cookies vs DPI vs OOB vs DiffServ.

Each row of the paper's Table 1 is evaluated here.  Wherever a property is
checkable by running code, the cell is computed by a live probe against
the actual implementations in this repository (replay protection,
authentication, revocability, privacy, NAT independence, transport
diversity, delivery guarantees).  Structural properties that are claims
about workflow economics (transaction cost, composability, ...) are
declared constants with the paper's reasoning in the docstring — they are
still cross-checked against :data:`PAPER_TABLE1` by the benchmark.
"""

from __future__ import annotations

from ..core import (
    AcquisitionDenied,
    AuthenticatedUsersPolicy,
    CookieGenerator,
    CookieMatcher,
    CookieServer,
    CookieDescriptor,
    CookieAttributes,
    DescriptorStore,
    ServiceOffering,
    default_registry,
)
from ..netsim.appmsg import TLSClientHello
from ..netsim.packet import make_tcp_packet
from .diffserv import BoundaryRemarker, DscpClassTable, DscpEnforcer, OpportunisticMarker
from .oob import FlowDescription, OobSwitch

__all__ = ["MECHANISMS", "PAPER_TABLE1", "evaluate_table1", "format_table1"]

MECHANISMS = ("cookies", "dpi", "oob", "diffserv")

#: The matrix exactly as printed in the paper (✓=True, ✗=False), rows in
#: paper order, cells in :data:`MECHANISMS` order.
PAPER_TABLE1: dict[str, tuple[bool, bool, bool, bool]] = {
    "arbitrary traffic <-> arbitrary state": (True, False, True, False),
    "low transaction cost": (True, False, True, True),
    "high-level preferences": (True, False, True, True),
    "composable": (True, False, True, False),
    "delegatable": (True, False, True, False),
    "protection from replay, spoofing": (True, True, False, True),
    "built-in authentication": (True, False, True, False),
    "respect privacy": (True, False, True, True),
    "revocable": (True, False, True, False),
    "independent from headerspace, payload, path": (True, False, False, False),
    "high accuracy": (True, False, True, True),
    "multiple transport mechanisms": (True, False, False, False),
    "low overhead": (True, True, False, True),
    "network delivery guarantees": (True, False, True, False),
}


# ----------------------------------------------------------------------
# Live probes (cells demonstrated by running the implementations)
# ----------------------------------------------------------------------
def _probe_cookie_replay_protection() -> bool:
    """A replayed cookie must be rejected; a forged signature must be
    rejected."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="probe"))
    matcher = CookieMatcher(store)
    cookie = CookieGenerator(descriptor, clock=lambda: 100.0).generate()
    first = matcher.match(cookie, now=100.0)
    replayed = matcher.match(cookie, now=100.1)
    forged = CookieGenerator(
        CookieDescriptor(cookie_id=descriptor.cookie_id, key=b"wrong-key"),
        clock=lambda: 100.0,
    ).generate()
    forged_result = matcher.match(forged, now=100.2)
    return first is not None and replayed is None and forged_result is None


def _probe_oob_spoofing() -> bool:
    """OOB rules are unauthenticated matches: anyone who sends traffic
    matching an installed destination rule receives the service.  Returns
    True if OOB *is* protected (it is not)."""
    switch = OobSwitch()
    switch.install_rule(FlowDescription(dst_ip="10.9.9.9", dst_port=443), "fast")
    spoofed = make_tcp_packet("172.16.0.66", 4242, "10.9.9.9", 443)
    return switch.service_of(spoofed) is None


def _probe_cookie_authentication() -> bool:
    """Descriptor acquisition can demand credentials; bad ones are denied."""
    server = CookieServer(
        clock=lambda: 0.0,
        policy=AuthenticatedUsersPolicy(accounts={"alice": "s3cret"}),
    )
    server.offer(ServiceOffering(name="Boost"))
    try:
        server.acquire("mallory", "Boost", credentials={"secret": "guess"})
        return False
    except AcquisitionDenied:
        pass
    server.acquire("alice", "Boost", credentials={"secret": "s3cret"})
    return True


def _probe_diffserv_authentication() -> bool:
    """Any device can set DSCP bits and obtain the class — no consent.
    Returns True if DiffServ *is* authenticated (it is not)."""
    table = DscpClassTable()
    table.define(34, "premium")
    enforcer = DscpEnforcer(table)
    packet = make_tcp_packet("192.168.1.50", 1111, "8.8.8.8", 443)
    marker = OpportunisticMarker(dscp=34)
    marker >> enforcer
    marker.push(packet)
    unauthorized_served = packet.meta.get("service") == "premium"
    return not unauthorized_served


def _probe_cookie_revocation() -> bool:
    """After revocation, freshly generated cookies stop matching."""
    store = DescriptorStore()
    server = CookieServer(clock=lambda: 0.0)
    server.offer(ServiceOffering(name="Boost"))
    server.attach_enforcement_store(store)
    descriptor = server.acquire("alice", "Boost")
    matcher = CookieMatcher(store)
    generator = CookieGenerator(descriptor, clock=lambda: 1.0)
    before = matcher.match(generator.generate(), now=1.0)
    server.revoke(descriptor.cookie_id)
    # The user-side generator object may still sign, but the network must
    # now refuse (simulate an uncontrollable application still emitting).
    stale = CookieGenerator(
        CookieDescriptor(
            cookie_id=descriptor.cookie_id, key=descriptor.key, service_data="Boost"
        ),
        clock=lambda: 2.0,
    ).generate()
    after = matcher.match(stale, now=2.0)
    return before is not None and after is None


def _probe_cookie_privacy() -> bool:
    """A cookie on a fully encrypted packet (no SNI at all) still matches:
    the network grants service without learning what the traffic is."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="Boost"))
    matcher = CookieMatcher(store)
    registry = default_registry()
    packet = make_tcp_packet(
        "192.168.1.2", 5000, "203.0.113.5", 443, payload_size=800, encrypted=True
    )
    cookie = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
    registry.attach(packet, cookie)  # falls through to the TCP option carrier
    found = registry.extract(packet)
    if found is None:
        return False
    return matcher.match(found[0], now=0.0) is not None


def _probe_cookie_nat_independence() -> bool:
    """Rewriting the 5-tuple (NAT) must not disturb cookie matching."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="Boost"))
    matcher = CookieMatcher(store)
    registry = default_registry()
    packet = make_tcp_packet(
        "192.168.1.2", 5000, "203.0.113.5", 443,
        content=TLSClientHello(sni="example.com"),
    )
    cookie = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
    registry.attach(packet, cookie)
    # NAT rewrites addresses; the cookie rides above the rewritten fields.
    packet.ip.src = "198.51.100.7"
    packet.l4.src_port = 23_456
    found = registry.extract(packet)
    return found is not None and matcher.match(found[0], now=0.0) is not None


def _probe_oob_nat_dependence() -> bool:
    """A full-tuple OOB rule captured pre-NAT fails post-NAT.  Returns
    True if OOB *is* path independent (it is not)."""
    pre_nat = make_tcp_packet("192.168.1.2", 5000, "203.0.113.5", 443)
    rule = FlowDescription.of_packet(pre_nat, mode="full_tuple")
    switch = OobSwitch()
    switch.install_rule(rule, "fast")
    post_nat = make_tcp_packet("198.51.100.7", 23_456, "203.0.113.5", 443)
    return switch.service_of(post_nat) is not None


def _probe_diffserv_path_dependence() -> bool:
    """Marks are bleached at network boundaries.  Returns True if DiffServ
    marks *do* survive (they do not, under common operator policy)."""
    packet = make_tcp_packet("10.0.0.1", 1, "10.0.0.2", 2, dscp=34)
    boundary = BoundaryRemarker(mode="bleach")
    boundary.push(packet)
    return packet.dscp == 34


def _probe_cookie_transports() -> bool:
    """Cookies ride over at least HTTP, TLS, IPv6, TCP and UDP carriers."""
    names = set(default_registry().names)
    return {"http", "tls", "ipv6", "tcp", "udp"}.issubset(names)


def _probe_cookie_delivery_guarantee() -> bool:
    """A switch with a delivery-guarantee descriptor attaches an
    acknowledgment cookie to reverse traffic."""
    from ..core.switch import CookieSwitch
    from ..netsim.middlebox import Sink

    store = DescriptorStore()
    descriptor = store.add(
        CookieDescriptor.create(
            service_data="Boost",
            attributes=CookieAttributes(delivery_guarantee=True),
        )
    )
    matcher = CookieMatcher(store)
    switch = CookieSwitch(matcher, clock=lambda: 0.0)
    sink = Sink()
    switch >> sink
    registry = default_registry()
    forward = make_tcp_packet(
        "192.168.1.2", 5000, "203.0.113.5", 443,
        content=TLSClientHello(sni="x.com"),
    )
    cookie = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
    registry.attach(forward, cookie)
    switch.push(forward)
    reverse = make_tcp_packet(
        "203.0.113.5", 443, "192.168.1.2", 5000,
        content=TLSClientHello(sni=""),
    )
    switch.push(reverse)
    return registry.extract(reverse) is not None


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def evaluate_table1() -> dict[str, dict[str, bool]]:
    """Compute every cell; probe-backed where possible.

    Returns ``{row: {mechanism: bool}}`` in paper row order.
    """
    rows: dict[str, dict[str, bool]] = {}

    def row(name: str, cookies: bool, dpi: bool, oob: bool, diffserv: bool) -> None:
        rows[name] = {
            "cookies": cookies, "dpi": dpi, "oob": oob, "diffserv": diffserv,
        }

    # --- Simple & expressive -----------------------------------------
    # DPI can only bind traffic its rule base describes; DiffServ can only
    # bind to one of <64 shared classes.  Cookies and OOB name arbitrary
    # state.
    row("arbitrary traffic <-> arbitrary state",
        cookies=True, dpi=False, oob=True, diffserv=False)
    # Adding one more preference: cookies/OOB are one API call; DiffServ a
    # local marking rule; DPI needs a new signature authored and deployed
    # (SomaFM's 18 months).
    row("low transaction cost", cookies=True, dpi=False, oob=True, diffserv=True)
    # "Boost this webpage": endpoint-resident mechanisms see the page;
    # DPI in the network reconstructs at best a fraction (Fig. 6).
    row("high-level preferences", cookies=True, dpi=False, oob=True, diffserv=True)
    # Multiple services on one flow: several cookies or several rules
    # compose; one 6-bit field and one signature label do not.
    row("composable", cookies=True, dpi=False, oob=True, diffserv=False)
    # A descriptor (or a controller token) can be handed to a content
    # provider; a DPI signature or DSCP value cannot carry a grant.
    row("delegatable", cookies=True, dpi=False, oob=True, diffserv=False)

    # --- Tussle aware -------------------------------------------------
    row("protection from replay, spoofing",
        cookies=_probe_cookie_replay_protection(),
        dpi=True,  # nothing to replay: service follows content, not tokens
        oob=_probe_oob_spoofing(),
        diffserv=True)  # likewise no token to steal; consent is the gap below
    row("built-in authentication",
        cookies=_probe_cookie_authentication(),
        dpi=False,  # the ISP decides; the user never authorizes anything
        oob=True,  # the controller API can authenticate its callers
        diffserv=_probe_diffserv_authentication())
    row("respect privacy",
        cookies=_probe_cookie_privacy(),
        dpi=False,  # classification *is* content inspection
        oob=True, diffserv=True)
    row("revocable",
        cookies=_probe_cookie_revocation(),
        dpi=False,  # a user cannot make an ISP un-recognize her traffic
        oob=True,  # rules can be withdrawn
        diffserv=False)  # the opportunistic console cannot be revoked
    # --- Deployable ----------------------------------------------------
    row("independent from headerspace, payload, path",
        cookies=_probe_cookie_nat_independence(),
        dpi=False,  # payload/SNI dependent by construction
        oob=_probe_oob_nat_dependence(),
        diffserv=_probe_diffserv_path_dependence())
    row("high accuracy",
        cookies=True, dpi=False, oob=True, diffserv=True)  # Fig. 6 outcome
    row("multiple transport mechanisms",
        cookies=_probe_cookie_transports(), dpi=False, oob=False, diffserv=False)
    # DPI and DiffServ are data-plane only; cookies add ~64 B to a flow's
    # first packet; OOB pays a controller round trip per flow.
    row("low overhead", cookies=True, dpi=True, oob=False, diffserv=True)
    row("network delivery guarantees",
        cookies=_probe_cookie_delivery_guarantee(),
        dpi=False, oob=True, diffserv=False)
    return rows


def format_table1(rows: dict[str, dict[str, bool]] | None = None) -> str:
    """Render the matrix like the paper's Table 1."""
    rows = rows if rows is not None else evaluate_table1()
    width = max(len(name) for name in rows) + 2
    header = "".join(m.rjust(10) for m in MECHANISMS)
    lines = [" " * width + header]
    for name, cells in rows.items():
        marks = "".join(
            ("yes" if cells[m] else "no").rjust(10) for m in MECHANISMS
        )
        lines.append(name.ljust(width) + marks)
    return "\n".join(lines)
