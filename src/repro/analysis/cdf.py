"""Empirical CDFs, for the Fig. 5(b) completion-time curves."""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """An empirical cumulative distribution over a sample."""

    def __init__(self, samples: list[float]) -> None:
        if not samples:
            raise ValueError("CDF needs at least one sample")
        self.samples = sorted(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def at(self, x: float) -> float:
        """F(x): fraction of samples <= x."""
        return bisect_right(self.samples, x) / len(self.samples)

    def quantile(self, q: float) -> float:
        """Inverse CDF; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if q == 0.0:
            return self.samples[0]
        index = min(len(self.samples) - 1, int(q * len(self.samples)))
        return self.samples[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def curve(self, points: int = 50) -> list[tuple[float, float]]:
        """(x, F(x)) pairs suitable for plotting or table output."""
        lo, hi = self.samples[0], self.samples[-1]
        if hi == lo:
            return [(lo, 1.0)]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.at(lo + i * step)) for i in range(points)]

    def stochastically_dominates(self, other: "EmpiricalCDF", points: int = 50) -> bool:
        """True if this distribution is everywhere at least as fast: its
        CDF lies on or above ``other``'s at every probed x (first-order
        stochastic dominance, the relationship between the boosted and
        throttled curves in Fig. 5b)."""
        lo = min(self.samples[0], other.samples[0])
        hi = max(self.samples[-1], other.samples[-1])
        if hi == lo:
            return True
        step = (hi - lo) / (points - 1)
        return all(
            self.at(lo + i * step) >= other.at(lo + i * step) - 1e-12
            for i in range(points)
        )
