"""Cookie descriptors (Listing 1 of the paper).

A descriptor is the control-plane object a user acquires from a cookie
server.  It carries a 64-bit lookup id, the shared HMAC key cookies are
signed with, opaque ``service_data`` naming the network service, and an
optional attribute block.  From one descriptor the client locally generates
many single-use cookies.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Any

from .attributes import CookieAttributes

__all__ = ["CookieDescriptor", "COOKIE_ID_BITS", "DEFAULT_KEY_BYTES"]

COOKIE_ID_BITS = 64
_COOKIE_ID_MAX = 2**COOKIE_ID_BITS - 1
DEFAULT_KEY_BYTES = 32


@dataclass
class CookieDescriptor:
    """The shared state between a cookie issuer and its verifiers.

    ``cookie_id`` identifies the descriptor and acts as the verifier's
    lookup key; ``key`` signs cookies; ``service_data`` identifies the
    network service to apply (a plain name like ``"Boost"`` or any richer
    structure); ``attributes`` qualify when and how cookies may be used.
    """

    cookie_id: int
    key: bytes
    service_data: Any = ""
    attributes: CookieAttributes = field(default_factory=CookieAttributes)
    revoked: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.cookie_id <= _COOKIE_ID_MAX:
            raise ValueError(
                f"cookie_id must fit in {COOKIE_ID_BITS} bits, got {self.cookie_id}"
            )
        if not isinstance(self.key, (bytes, bytearray)) or len(self.key) == 0:
            raise ValueError("descriptor key must be non-empty bytes")
        self.key = bytes(self.key)

    @classmethod
    def create(
        cls,
        service_data: Any = "",
        attributes: CookieAttributes | None = None,
        *,
        key_bytes: int = DEFAULT_KEY_BYTES,
    ) -> "CookieDescriptor":
        """Mint a fresh descriptor with a random id and key."""
        return cls(
            cookie_id=secrets.randbits(COOKIE_ID_BITS),
            key=secrets.token_bytes(key_bytes),
            service_data=service_data,
            attributes=attributes or CookieAttributes(),
        )

    def revoke(self) -> None:
        """Revoke the descriptor.

        Either party can do this: a user asks the network to invalidate a
        descriptor she can no longer control, or the network stops matching
        to withdraw a service.  Verification of cookies from a revoked
        descriptor fails from this point on.
        """
        self.revoked = True

    def is_usable(self, now: float) -> bool:
        """Neither revoked nor past its expiration attribute."""
        return not self.revoked and not self.attributes.is_expired(now)

    def to_json(self, include_key: bool = True) -> dict[str, Any]:
        """Serialize for the acquisition API.

        ``include_key=False`` yields the audit-safe form: regulators can see
        *who* received *which* descriptor without learning the signing key.
        """
        data: dict[str, Any] = {
            "cookie_id": self.cookie_id,
            "service_data": self.service_data,
            "attributes": self.attributes.to_json(),
            "revoked": self.revoked,
        }
        if include_key:
            data["key"] = self.key.hex()
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CookieDescriptor":
        """Inverse of :meth:`to_json` (requires the key to be present)."""
        if "key" not in data:
            raise ValueError("descriptor JSON lacks the signing key")
        return cls(
            cookie_id=int(data["cookie_id"]),
            key=bytes.fromhex(data["key"]),
            service_data=data.get("service_data", ""),
            attributes=CookieAttributes.from_json(data.get("attributes", {})),
            revoked=bool(data.get("revoked", False)),
        )

    def __repr__(self) -> str:  # avoid leaking the key in logs
        return (
            f"CookieDescriptor(id={self.cookie_id:#018x}, "
            f"service={self.service_data!r}, revoked={self.revoked})"
        )
