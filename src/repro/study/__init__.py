"""User studies: the 161-home Boost deployment (Fig. 1), the 1000-user
zero-rating survey (Fig. 2), and curated-program coverage analysis (§2)."""

from .alexa import FIG1_SITES, AlexaIndex, RankedSite
from .appstore import (
    CATEGORY_COUNTS,
    POPULARITY_BUCKETS,
    POPULARITY_COUNTS,
    App,
    AppCatalog,
)
from .boost_study import PUBLISHED_FIG1, BoostStudy, BoostStudyResult
from .coverage import (
    LICENSED_STATIONS,
    MUSIC_FREEDOM_COVERED_MUSIC_APPS,
    MUSIC_FREEDOM_STATIONS,
    MUSIC_SURVEY_APPS,
    CoverageReport,
    ZeroRatingProgram,
    analyze_coverage,
    builtin_programs,
    ndpi_app_coverage,
)
from .population import (
    DEFAULT_EVENT_MIX,
    ChurnEvent,
    SubscriberPopulation,
)
from .preferences import (
    AppPreferenceSampler,
    WebsitePreferenceSampler,
    WeightedSampler,
)
from .survey import PUBLISHED_FIG2, SurveyResult, ZeroRatingSurvey

__all__ = [
    "FIG1_SITES",
    "AlexaIndex",
    "RankedSite",
    "CATEGORY_COUNTS",
    "POPULARITY_BUCKETS",
    "POPULARITY_COUNTS",
    "App",
    "AppCatalog",
    "PUBLISHED_FIG1",
    "BoostStudy",
    "BoostStudyResult",
    "LICENSED_STATIONS",
    "MUSIC_FREEDOM_COVERED_MUSIC_APPS",
    "MUSIC_FREEDOM_STATIONS",
    "MUSIC_SURVEY_APPS",
    "CoverageReport",
    "ZeroRatingProgram",
    "analyze_coverage",
    "builtin_programs",
    "ndpi_app_coverage",
    "DEFAULT_EVENT_MIX",
    "ChurnEvent",
    "SubscriberPopulation",
    "AppPreferenceSampler",
    "WebsitePreferenceSampler",
    "WeightedSampler",
    "PUBLISHED_FIG2",
    "SurveyResult",
    "ZeroRatingSurvey",
]
