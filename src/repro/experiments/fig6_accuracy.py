"""Fig. 6: matching accuracy of cookies vs nDPI vs out-of-band rules.

For each target site (cnn.com, youtube.com, skai.gr) the experiment loads
the target *and* the other catalog pages plus a background facebook
session through a NAT'd home network, asks one mechanism to boost the
target, and scores the outcome against ground truth:

- ``matched``: fraction of the target page's packets that got boosted;
- ``false``: packets from *other* traffic that got boosted, reported both
  per-site (nDPI marks 12 % of skai.gr's packets when boosting
  youtube.com) and as a fraction of everything marked (OOB's ≈40 % false
  positives on cnn.com).

The mechanisms run over the same WAN vantage point the paper's head-end
router has: uplink packets post-NAT, downlink packets addressed to the
public IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.dpi import DpiBooster, DpiEngine
from ..baselines.oob import FlowDescription, OobController, OobSwitch
from ..core import CookieMatcher, CookieServer, DescriptorStore, ServiceOffering
from ..core.switch import CookieSwitch
from ..netsim.middlebox import Element, Sink
from ..netsim.nat import NAT44
from ..netsim.packet import Packet
from ..services.boost import BOOST_SERVICE, BoostAgent
from ..web.browser import Browser
from ..web.sites import site_catalog

__all__ = ["AccuracyResult", "run_accuracy", "run_all_targets", "TARGET_SITES",
           "DPI_APP_OF_SITE"]

TARGET_SITES = ("cnn.com", "youtube.com", "skai.gr")

#: What a DPI operator would configure to boost each site.
DPI_APP_OF_SITE = {"cnn.com": "cnn", "youtube.com": "youtube", "skai.gr": "skai"}


@dataclass
class AccuracyResult:
    """Scores for one (mechanism, target) run."""

    mechanism: str
    target: str
    target_packets: int = 0
    matched_packets: int = 0
    false_packets: int = 0
    false_by_site: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def matched_fraction(self) -> float:
        return self.matched_packets / self.target_packets if self.target_packets else 0.0

    @property
    def marked_packets(self) -> int:
        return self.matched_packets + self.false_packets

    @property
    def false_fraction_of_marked(self) -> float:
        """False positives as a fraction of everything the mechanism
        marked (the paper's "40 % false positives" metric for OOB)."""
        return self.false_packets / self.marked_packets if self.marked_packets else 0.0

    def false_fraction_of_site(self, site: str) -> float:
        """Falsely marked packets of one site over that site's packets
        (the paper's "12 % of packets from skai.gr" metric for nDPI)."""
        marked, total = self.false_by_site.get(site, (0, 0))
        return marked / total if total else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "mechanism": self.mechanism,
            "target": self.target,
            "matched": round(self.matched_fraction, 4),
            "false_of_marked": round(self.false_fraction_of_marked, 4),
            "false_by_site": {
                site: round(marked / total, 4) if total else 0.0
                for site, (marked, total) in self.false_by_site.items()
            },
        }


class _WanRewriter(Element):
    """Presents the head-end (WAN) view of both directions.

    Uplink packets pass through the NAT's outbound face; downlink packets
    (which the browser addressed to the private client) are rewritten to
    the public endpoint the server would actually have replied to.
    """

    def __init__(self, nat: NAT44) -> None:
        super().__init__(name="wan-view")
        self.nat = nat

    def handle(self, packet: Packet) -> None:
        if packet.meta.get("direction") == "up":
            self.nat.outbound.downstream = self.downstream
            self.nat.outbound.push(packet)
            return
        if packet.ip is not None and packet.l4 is not None:
            mapping = self.nat.mapping_for_private(
                packet.ip.dst, packet.l4.dst_port, int(packet.proto or 0)
            )
            packet.ip.dst = mapping.public_ip
            packet.l4.dst_port = mapping.public_port
        self.emit(packet)


def _is_boosted(packet: Packet) -> bool:
    return packet.meta.get("qos_class") == 0 or "boosted_by" in packet.meta


def _score(result: AccuracyResult, packets: list[Packet]) -> AccuracyResult:
    per_site_totals: dict[str, int] = {}
    for packet in packets:
        site = packet.meta.get("site", "?")
        per_site_totals[site] = per_site_totals.get(site, 0) + 1
    per_site_false: dict[str, int] = {}
    for packet in packets:
        site = packet.meta.get("site", "?")
        boosted = _is_boosted(packet)
        if site == result.target:
            result.target_packets += 1
            if boosted:
                result.matched_packets += 1
        elif boosted:
            result.false_packets += 1
            per_site_false[site] = per_site_false.get(site, 0) + 1
    for site, total in per_site_totals.items():
        if site != result.target:
            result.false_by_site[site] = (per_site_false.get(site, 0), total)
    return result


def _generate_mix(target: str, seed: int, hook=None) -> list[Packet]:
    """All four page loads through one browser, one tab per site.

    ``hook(packet, context)`` is registered before loading so mechanisms
    with an endpoint agent (cookies, OOB) see every request.
    """
    browser = Browser(seed=seed)
    if hook is not None:
        browser.on_request(hook)
    catalog = site_catalog()
    ordered_sites = [target] + [s for s in catalog if s != target]
    packets: list[Packet] = []
    for site in ordered_sites:
        tab = browser.open_tab(site)
        packets.extend(browser.load_page(tab, catalog[site]))
    return packets


def _push_through(packets: list[Packet], nat: NAT44, mechanism: Element) -> list[Packet]:
    sink = Sink()
    wan = _WanRewriter(nat)
    wan >> mechanism
    mechanism >> sink
    for packet in packets:
        wan.push(packet)
    return sink.packets


# ----------------------------------------------------------------------
# Mechanism runs
# ----------------------------------------------------------------------
def run_cookies(target: str, seed: int = 0) -> AccuracyResult:
    """Boost ``target`` via the Boost agent + cookie switch."""
    clock = lambda: 0.0  # noqa: E731 - single shared instant
    store = DescriptorStore()
    server = CookieServer(clock=clock)
    server.offer(ServiceOffering(name=BOOST_SERVICE, lifetime=3600.0))
    server.attach_enforcement_store(store)
    agent = BoostAgent("resident", clock=clock, channel=server.handle_request)
    agent.always_boost(target)
    packets = _generate_mix(target, seed, hook=agent.on_request)
    nat = NAT44(public_ip="198.51.100.7")
    switch = CookieSwitch(CookieMatcher(store), clock=clock, name="fig6-cookies")
    observed = _push_through(packets, nat, switch)
    return _score(AccuracyResult("cookies", target), observed)


def run_ndpi(target: str, seed: int = 0) -> AccuracyResult:
    """Boost ``target`` via DPI classification."""
    engine = DpiEngine()
    booster = DpiBooster(engine, target_app=DPI_APP_OF_SITE[target])
    packets = _generate_mix(target, seed)
    nat = NAT44(public_ip="198.51.100.7")
    observed = _push_through(packets, nat, booster)
    return _score(AccuracyResult("ndpi", target), observed)


def run_oob(target: str, seed: int = 0, mode: str = "dst_only") -> AccuracyResult:
    """Boost ``target`` via out-of-band flow descriptions.

    ``mode='dst_only'`` is the NAT workaround the paper analyzes;
    ``mode='full_tuple'`` shows the unworked-around failure (nothing
    matches post-NAT).
    """
    switch = OobSwitch(name="fig6-oob")
    controller = OobController(switch)

    def hook(packet: Packet, context) -> None:
        if context.address_bar_domain == target:
            controller.request_service(
                "resident", FlowDescription.of_packet(packet, mode=mode), "boost"
            )

    packets = _generate_mix(target, seed, hook=hook)
    nat = NAT44(public_ip="198.51.100.7")
    observed = _push_through(packets, nat, switch)
    return _score(AccuracyResult(f"oob-{mode}", target), observed)


def run_accuracy(target: str, seed: int = 0) -> dict[str, AccuracyResult]:
    """All three mechanisms against one target."""
    return {
        "cookies": run_cookies(target, seed),
        "ndpi": run_ndpi(target, seed),
        "oob": run_oob(target, seed),
    }


def run_all_targets(seed: int = 0) -> dict[str, dict[str, AccuracyResult]]:
    """The full Fig. 6 grid: {target: {mechanism: result}}."""
    return {target: run_accuracy(target, seed) for target in TARGET_SITES}
