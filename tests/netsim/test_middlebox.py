"""Element pipeline tests: wiring, filters, classifiers, shapers."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.middlebox import (
    Classifier,
    Counter,
    Filter,
    FunctionElement,
    Pipeline,
    ShaperElement,
    Sink,
    Tap,
)
from repro.netsim.packet import make_tcp_packet
from repro.netsim.queues import TokenBucket


def _packet(size=100):
    return make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=size)


class TestWiring:
    def test_rshift_chains(self):
        a, b, sink = Counter(), Counter(), Sink()
        a >> b >> sink
        a.push(_packet())
        assert a.count == b.count == sink.count == 1

    def test_pipeline_wires_elements(self):
        counter, sink = Counter(), Sink()
        pipeline = Pipeline(counter, sink)
        pipeline.push(_packet())
        assert sink.count == 1
        assert pipeline.head is counter and pipeline.tail is sink

    def test_pipeline_push_many(self):
        sink = Sink()
        Pipeline(Counter(), sink).push_many([_packet(), _packet()])
        assert sink.count == 2

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline()

    def test_emit_at_end_is_silent(self):
        Counter().push(_packet())  # no downstream: packet dropped quietly


class TestSink:
    def test_collects_packets(self):
        sink = Sink()
        packet = _packet()
        sink.push(packet)
        assert sink.packets == [packet]
        assert sink.bytes == packet.wire_length

    def test_keep_false_counts_only(self):
        sink = Sink(keep=False)
        sink.push(_packet())
        assert sink.count == 1 and sink.packets == []


class TestFilter:
    def test_predicate_filters(self):
        sink = Sink()
        flt = Filter(lambda p: p.payload.size > 50)
        flt >> sink
        flt.push(_packet(size=10))
        flt.push(_packet(size=100))
        assert sink.count == 1
        assert flt.passed == 1 and flt.filtered == 1


class TestTap:
    def test_callback_sees_every_packet(self):
        seen = []
        sink = Sink()
        tap = Tap(seen.append)
        tap >> sink
        tap.push(_packet())
        assert len(seen) == 1 and sink.count == 1


class TestClassifier:
    def test_routes_by_key(self):
        a_sink, b_sink = Sink(), Sink()
        classifier = Classifier(lambda p: "a" if p.payload.size < 50 else "b")
        classifier.connect("a", a_sink)
        classifier.connect("b", b_sink)
        classifier.push(_packet(size=10))
        classifier.push(_packet(size=100))
        assert a_sink.count == 1 and b_sink.count == 1

    def test_unknown_key_goes_to_default(self):
        default = Sink()
        classifier = Classifier(lambda p: "missing")
        classifier.connect("default", default)
        classifier.push(_packet())
        assert default.count == 1

    def test_none_key_goes_to_default(self):
        default = Sink()
        classifier = Classifier(lambda p: None)
        classifier.connect("default", default)
        classifier.push(_packet())
        assert default.count == 1

    def test_no_output_drops(self):
        classifier = Classifier(lambda p: "nowhere")
        classifier.push(_packet())  # silently dropped


class TestFunctionElement:
    def test_none_drops(self):
        sink = Sink()
        element = FunctionElement(lambda p: None)
        element >> sink
        element.push(_packet())
        assert sink.count == 0

    def test_mutation_forwards(self):
        sink = Sink()

        def stamp(packet):
            packet.meta["seen"] = True
            return packet

        element = FunctionElement(stamp)
        element >> sink
        element.push(_packet())
        assert sink.packets[0].meta["seen"]


class TestShaper:
    def test_conforming_passes_immediately(self):
        loop = EventLoop()
        sink = Sink()
        shaper = ShaperElement(loop, TokenBucket(rate_bps=1e6, burst_bytes=10_000))
        shaper >> sink
        shaper.push(_packet())
        assert sink.count == 1  # no event loop turn needed

    def test_nonconforming_delayed(self):
        loop = EventLoop()
        sink = Sink()
        shaper = ShaperElement(loop, TokenBucket(rate_bps=8000, burst_bytes=200))
        shaper >> sink
        shaper.push(_packet(size=160))  # 200 wire bytes: drains the bucket
        shaper.push(_packet(size=160))  # must wait ~0.2 s
        assert sink.count == 1
        loop.run_until_idle()
        assert sink.count == 2
        assert loop.now >= 0.15
        assert shaper.delayed == 1

    def test_order_preserved_through_backlog(self):
        loop = EventLoop()
        sink = Sink()
        shaper = ShaperElement(loop, TokenBucket(rate_bps=80_000, burst_bytes=150))
        shaper >> sink
        packets = [_packet(size=100) for _ in range(5)]
        for packet in packets:
            shaper.push(packet)
        loop.run_until_idle()
        assert [p.packet_id for p in sink.packets] == [p.packet_id for p in packets]

    def test_bypass_predicate(self):
        loop = EventLoop()
        sink = Sink()
        shaper = ShaperElement(
            loop,
            TokenBucket(rate_bps=8, burst_bytes=1),
            predicate=lambda p: p.meta.get("slow", False),
        )
        shaper >> sink
        shaper.push(_packet())  # not "slow": bypasses entirely
        assert sink.count == 1

    def test_backlog_overflow_drops(self):
        loop = EventLoop()
        shaper = ShaperElement(
            loop, TokenBucket(rate_bps=8, burst_bytes=1), max_backlog=2
        )
        for _ in range(5):
            shaper.push(_packet())
        assert shaper.backlog == 2
        assert shaper.dropped == 3
