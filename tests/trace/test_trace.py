"""Trace generator tests: campus marginals, MoonGen flows, stats helpers."""

import time

import pytest

from repro.core import CookieDescriptor, CookieGenerator, DescriptorStore
from repro.core.transport import default_registry
from repro.trace import (
    CampusTraceGenerator,
    FlowRecord,
    PacketGenerator,
    PUBLISHED_TRACE,
    ThroughputSample,
    build_descriptor_pool,
    flow_to_packets,
    percentile,
    throughput_report,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        assert percentile([3, 7, 9], 0) == 3
        assert percentile([3, 7, 9], 100) == 9

    def test_single_value(self):
        assert percentile([42], 99) == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestFlowRecord:
    def test_bytes(self):
        record = FlowRecord(
            start_time=0.0, client_ip="10.0.0.1", client_port=1000,
            server_ip="1.2.3.4", server_port=443, packets=10, avg_packet_size=500,
        )
        assert record.bytes == 5000

    def test_expansion_packet_count(self):
        record = FlowRecord(
            start_time=0.0, client_ip="10.0.0.1", client_port=1000,
            server_ip="1.2.3.4", server_port=443, packets=20,
        )
        packets = list(flow_to_packets(record))
        assert len(packets) == 20

    def test_first_packet_carries_cookie(self):
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create())
        cookie = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
        record = FlowRecord(
            start_time=0.0, client_ip="10.0.0.1", client_port=1000,
            server_ip="1.2.3.4", server_port=443, packets=5, sni="x.com",
        )
        packets = list(flow_to_packets(record, cookie=cookie))
        registry = default_registry()
        assert registry.extract(packets[0]) is not None
        assert all(registry.extract(p) is None for p in packets[1:])

    def test_directions_mixed(self):
        record = FlowRecord(
            start_time=0.0, client_ip="10.0.0.1", client_port=1000,
            server_ip="1.2.3.4", server_port=443, packets=20,
        )
        packets = list(flow_to_packets(record, downlink_fraction=0.75))
        downlink = [p for p in packets if p.src_ip == "1.2.3.4"]
        assert len(downlink) == int(19 * 0.75)


class TestCampusTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        generator = CampusTraceGenerator(scale=0.001)
        records = list(generator.generate())
        return generator, records, generator.summarize(records)

    def test_median_flow_size_matches_paper(self, trace):
        _generator, _records, stats = trace
        assert stats.median_flow_packets == pytest.approx(
            PUBLISHED_TRACE["median_flow_packets"], rel=0.15
        )

    def test_p99_arrival_rate_matches_paper(self, trace):
        _generator, _records, stats = trace
        assert stats.p99_new_flows_per_second == pytest.approx(
            PUBLISHED_TRACE["p99_new_flows_per_second"], rel=0.25
        )

    def test_mean_rate_near_published_ratio(self, trace):
        _generator, _records, stats = trace
        expected = PUBLISHED_TRACE["flows"] / (
            PUBLISHED_TRACE["duration_hours"] * 3600
        )
        assert stats.mean_new_flows_per_second == pytest.approx(expected, rel=0.2)

    def test_flow_count_scales(self, trace):
        _generator, records, _stats = trace
        expected = PUBLISHED_TRACE["flows"] * 0.001
        assert len(records) == pytest.approx(expected, rel=0.2)

    def test_heavy_hitter_ips(self, trace):
        """Zipf client activity: some IPs start many flows."""
        _generator, records, _stats = trace
        from collections import Counter

        counts = Counter(r.client_ip for r in records)
        assert max(counts.values()) > 5 * (len(records) / len(counts))

    def test_max_flows_cap(self):
        generator = CampusTraceGenerator(scale=0.01)
        records = list(generator.generate(max_flows=100))
        assert len(records) == 100

    def test_deterministic(self):
        a = [r.client_ip for r in CampusTraceGenerator(scale=0.0001, seed=5).generate()]
        b = [r.client_ip for r in CampusTraceGenerator(scale=0.0001, seed=5).generate()]
        assert a == b

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            CampusTraceGenerator(scale=0)
        with pytest.raises(ValueError):
            CampusTraceGenerator(scale=2.0)


class TestPacketGenerator:
    def test_flow_shape(self):
        store = DescriptorStore()
        pool = build_descriptor_pool(10, store)
        generator = PacketGenerator(
            pool, clock=time.perf_counter, packet_size=512, packets_per_flow=50
        )
        flows = list(generator.flows(3))
        assert len(flows) == 3
        assert all(len(flow) == 50 for flow in flows)

    def test_every_flow_cookied_and_verifiable(self):
        from repro.core import CookieMatcher

        store = DescriptorStore()
        pool = build_descriptor_pool(5, store)
        clock = time.perf_counter
        generator = PacketGenerator(pool, clock=clock, packets_per_flow=10)
        matcher = CookieMatcher(store, nct=60.0)
        registry = default_registry()
        for flow in generator.flows(10):
            found = registry.extract(flow[0])
            assert found is not None
            assert matcher.match(found[0], now=clock()) is not None

    def test_distinct_flows_distinct_tuples(self):
        store = DescriptorStore()
        pool = build_descriptor_pool(2, store)
        generator = PacketGenerator(pool, clock=time.perf_counter)
        firsts = [flow[0] for flow in generator.flows(20)]
        tuples = {(p.src_ip, p.src_port) for p in firsts}
        assert len(tuples) == 20

    def test_packet_size_respected(self):
        store = DescriptorStore()
        pool = build_descriptor_pool(2, store)
        generator = PacketGenerator(
            pool, clock=time.perf_counter, packet_size=512, packets_per_flow=10
        )
        flow = next(iter(generator.flows(1)))
        # Data packets (not the cookie-bearing first) hit the target size.
        assert all(p.wire_length == 512 for p in flow[1:])

    def test_validation(self):
        store = DescriptorStore()
        pool = build_descriptor_pool(1, store)
        with pytest.raises(ValueError):
            PacketGenerator([], clock=time.perf_counter)
        with pytest.raises(ValueError):
            PacketGenerator(pool, clock=time.perf_counter, packet_size=10)
        with pytest.raises(ValueError):
            PacketGenerator(pool, clock=time.perf_counter, packets_per_flow=0)

    def test_descriptor_pool_registered(self):
        store = DescriptorStore()
        pool = build_descriptor_pool(50, store)
        assert len(store) == 50
        assert all(store.get(d.cookie_id) is not None for d in pool)


class TestThroughputSample:
    def test_derived_rates(self):
        sample = ThroughputSample(
            packet_size=512, packets_per_flow=50,
            packets_processed=100_000, elapsed_s=1.0,
        )
        assert sample.packets_per_second == 100_000
        assert sample.gbps == pytest.approx(100_000 * 512 * 8 / 1e9)
        assert sample.new_flows_per_second == pytest.approx(2000)

    def test_report_renders(self):
        sample = ThroughputSample(512, 50, 1000, 0.5)
        text = throughput_report([sample])
        assert "512" in text and "Gbps" in text
