"""Packet-capture tests."""

import pytest

from repro.netsim.capture import PacketCapture
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet


def _packet(size=100, sport=1000, **meta):
    packet = make_tcp_packet("10.0.0.1", sport, "2.2.2.2", 443, payload_size=size)
    packet.meta.update(meta)
    return packet


class TestRecording:
    def test_records_and_forwards(self):
        capture = PacketCapture()
        sink = Sink()
        capture >> sink
        capture.push(_packet())
        assert len(capture) == 1 and sink.count == 1

    def test_record_fields(self):
        capture = PacketCapture(clock=lambda: 7.5)
        capture.push(_packet(size=60))
        record = capture.records[0]
        assert record.time == 7.5
        assert record.src_ip == "10.0.0.1" and record.dst_port == 443
        assert record.wire_length == 100

    def test_clock_from_loop(self):
        loop = EventLoop()
        capture = PacketCapture(loop=loop)
        loop.schedule(2.0, lambda: capture.push(_packet()))
        loop.run_until_idle()
        assert capture.records[0].time == 2.0

    def test_predicate_filters_recording_not_forwarding(self):
        capture = PacketCapture(predicate=lambda p: p.payload.size > 50)
        sink = Sink()
        capture >> sink
        capture.push(_packet(size=10))
        capture.push(_packet(size=100))
        assert len(capture) == 1 and sink.count == 2

    def test_meta_snapshot(self):
        capture = PacketCapture(keep_meta=("qos_class", "site"))
        capture.push(_packet(qos_class=0, site="cnn.com", irrelevant=1))
        record = capture.records[0]
        assert record.annotation("qos_class") == 0
        assert record.annotation("site") == "cnn.com"
        assert record.annotation("irrelevant") is None

    def test_ring_bound(self):
        capture = PacketCapture(max_records=3)
        for i in range(5):
            capture.push(_packet(sport=1000 + i))
        assert len(capture) == 3
        assert capture.records_dropped == 2
        assert capture.records[0].src_port == 1002  # oldest dropped

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketCapture(max_records=0)


class TestQueries:
    def _loaded(self):
        loop = EventLoop()
        capture = PacketCapture(loop=loop)
        for t, size in ((0.5, 100), (1.5, 200), (2.5, 300)):
            loop.schedule(t, lambda s=size: capture.push(_packet(size=s)))
        loop.run_until_idle()
        return capture

    def test_between(self):
        capture = self._loaded()
        assert len(capture.between(1.0, 3.0)) == 2

    def test_bytes_total(self):
        capture = self._loaded()
        assert capture.bytes_total() == sum(r.wire_length for r in capture)
        # 200 B and 300 B payloads = 240 and 340 wire bytes.
        assert capture.bytes_total(lambda r: r.wire_length > 200) == 580

    def test_throughput(self):
        capture = self._loaded()
        bits = (240 + 340) * 8  # packets at t=1.5 and 2.5 incl headers
        assert capture.throughput_bps(1.0, 3.0) == pytest.approx(bits / 2.0)
        with pytest.raises(ValueError):
            capture.throughput_bps(3.0, 1.0)

    def test_conversations_bidirectional(self):
        capture = PacketCapture()
        capture.push(make_tcp_packet("10.0.0.1", 1000, "2.2.2.2", 443))
        capture.push(make_tcp_packet("2.2.2.2", 443, "10.0.0.1", 1000))
        assert list(capture.conversations().values()) == [2]

    def test_clear(self):
        capture = self._loaded()
        capture.clear()
        assert len(capture) == 0


class TestExport:
    def test_csv_roundtrip(self):
        import csv as csv_module
        import io

        capture = PacketCapture(keep_meta=("qos_class",))
        capture.push(_packet(qos_class=0))
        capture.push(_packet(sport=1001))
        rows = list(csv_module.DictReader(io.StringIO(capture.to_csv())))
        assert len(rows) == 2
        assert rows[0]["src_ip"] == "10.0.0.1"
        assert rows[0]["qos_class"] == "0"
        assert rows[1]["qos_class"] == ""
