"""Cookie wire-format and signature tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cookie import (
    COOKIE_WIRE_BYTES,
    SIGNATURE_BYTES,
    UUID_BYTES,
    Cookie,
    sign_cookie_fields,
)
from repro.core.descriptor import CookieDescriptor
from repro.core.errors import MalformedCookie


def _cookie(key=b"k" * 32, cookie_id=42, uuid=b"u" * 16, timestamp=123.456):
    return Cookie(
        cookie_id=cookie_id,
        uuid=uuid,
        timestamp=timestamp,
        signature=sign_cookie_fields(key, cookie_id, uuid, timestamp),
    )


class TestEncoding:
    def test_binary_roundtrip(self):
        cookie = _cookie()
        assert Cookie.from_bytes(cookie.to_bytes()) == cookie

    def test_binary_length(self):
        assert len(_cookie().to_bytes()) == COOKIE_WIRE_BYTES == 48

    def test_text_roundtrip(self):
        cookie = _cookie()
        assert Cookie.from_text(cookie.to_text()) == cookie

    def test_text_is_base64(self):
        import base64

        text = _cookie().to_text()
        assert base64.b64decode(text) == _cookie().to_bytes()

    def test_timestamp_microsecond_precision(self):
        cookie = _cookie(timestamp=1.000001)
        assert Cookie.from_bytes(cookie.to_bytes()).timestamp == pytest.approx(
            1.000001, abs=1e-9
        )

    def test_wrong_length_rejected(self):
        with pytest.raises(MalformedCookie):
            Cookie.from_bytes(b"short")

    def test_bad_base64_rejected(self):
        with pytest.raises(MalformedCookie):
            Cookie.from_text("!!!not base64!!!")

    def test_valid_base64_wrong_length_rejected(self):
        with pytest.raises(MalformedCookie):
            Cookie.from_text("YWJj")  # "abc"

    @given(
        cookie_id=st.integers(0, 2**64 - 1),
        uuid=st.binary(min_size=16, max_size=16),
        # Bounded at 2**31 s (~epoch 2038): microsecond integers must stay
        # exactly representable in float64 for lossless round-trips.
        timestamp=st.floats(0, 2**31, allow_nan=False),
    )
    def test_roundtrip_property(self, cookie_id, uuid, timestamp):
        cookie = _cookie(cookie_id=cookie_id, uuid=uuid, timestamp=timestamp)
        recovered = Cookie.from_bytes(cookie.to_bytes())
        assert recovered.cookie_id == cookie_id
        assert recovered.uuid == uuid
        assert recovered.timestamp == pytest.approx(timestamp, abs=1e-5)


class TestValidation:
    def test_bad_uuid_length(self):
        with pytest.raises(MalformedCookie):
            Cookie(cookie_id=1, uuid=b"short", timestamp=0.0, signature=b"s" * 16)

    def test_bad_signature_length(self):
        with pytest.raises(MalformedCookie):
            Cookie(cookie_id=1, uuid=b"u" * 16, timestamp=0.0, signature=b"s")

    def test_repr_does_not_leak_signature(self):
        cookie = _cookie()
        assert cookie.signature.hex() not in repr(cookie)


class TestSignature:
    def test_verifies_under_right_key(self):
        descriptor = CookieDescriptor(cookie_id=42, key=b"k" * 32)
        assert _cookie(key=b"k" * 32).verify_signature(descriptor)

    def test_rejects_wrong_key(self):
        descriptor = CookieDescriptor(cookie_id=42, key=b"wrong" * 8)
        assert not _cookie(key=b"k" * 32).verify_signature(descriptor)

    def test_signature_covers_id(self):
        descriptor = CookieDescriptor(cookie_id=42, key=b"k" * 32)
        tampered = Cookie(
            cookie_id=43,
            uuid=b"u" * 16,
            timestamp=123.456,
            signature=_cookie().signature,
        )
        assert not tampered.verify_signature(descriptor)

    def test_signature_covers_uuid(self):
        descriptor = CookieDescriptor(cookie_id=42, key=b"k" * 32)
        tampered = Cookie(
            cookie_id=42,
            uuid=b"x" * 16,
            timestamp=123.456,
            signature=_cookie().signature,
        )
        assert not tampered.verify_signature(descriptor)

    def test_signature_covers_timestamp(self):
        descriptor = CookieDescriptor(cookie_id=42, key=b"k" * 32)
        tampered = Cookie(
            cookie_id=42,
            uuid=b"u" * 16,
            timestamp=999.0,
            signature=_cookie().signature,
        )
        assert not tampered.verify_signature(descriptor)

    def test_signature_length(self):
        assert len(sign_cookie_fields(b"k", 1, b"u" * 16, 0.0)) == SIGNATURE_BYTES

    def test_deterministic(self):
        a = sign_cookie_fields(b"key", 7, b"u" * UUID_BYTES, 5.0)
        b = sign_cookie_fields(b"key", 7, b"u" * UUID_BYTES, 5.0)
        assert a == b
