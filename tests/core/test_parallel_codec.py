"""Property tests for the multi-process batch wire codec.

The codec (PROTOCOL.md §10) is the only thing that crosses the
dispatcher/worker boundary, so these tests pin its whole contract:
frames round-trip bit-exactly, every malformed frame maps to
:class:`MalformedCookie` (never a silent mis-parse), and a verdict
array can express every verdict the matcher can reach — one code per
:class:`MatchStats` outcome, verified end-to-end on a batch that
triggers all of them.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.cookie import (
    COOKIE_WIRE_BYTES,
    SIGNATURE_BYTES,
    UUID_BYTES,
    Cookie,
)
from repro.core.errors import MalformedCookie
from repro.core.matcher import CookieMatcher, MatchStats
from repro.core.parallel import (
    VERDICT_ACCEPTED,
    VERDICT_CODES,
    VERDICT_REASONS,
    decode_batch,
    decode_verdicts,
    encode_batch,
    encode_verdicts,
)

from .test_batch_differential import NOW, _Env, _materialize

#: Timestamps on the wire's integer-microsecond grid round-trip to the
#: exact same float, so Cookie equality is field-exact.
_GRID_TIMESTAMPS = st.integers(0, 2**40).map(lambda micros: micros / 1e6)

_COOKIES = st.builds(
    Cookie,
    cookie_id=st.integers(0, 2**64 - 1),
    uuid=st.binary(min_size=UUID_BYTES, max_size=UUID_BYTES),
    timestamp=_GRID_TIMESTAMPS,
    signature=st.binary(min_size=SIGNATURE_BYTES, max_size=SIGNATURE_BYTES),
)


class TestBatchFrameRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(cookies=st.lists(_COOKIES, max_size=16))
    def test_round_trip(self, cookies):
        assert decode_batch(encode_batch(cookies)) == cookies

    @settings(max_examples=60, deadline=None)
    @given(cookies=st.lists(_COOKIES, max_size=16))
    def test_frame_is_wire_fixpoint(self, cookies):
        """Re-encoding a decoded frame is bit-identical — the frame is
        exactly the cookies' binary carrier form, nothing added."""
        blob = encode_batch(cookies)
        assert encode_batch(decode_batch(blob)) == blob
        assert len(blob) == 4 + len(cookies) * COOKIE_WIRE_BYTES

    @settings(max_examples=30, deadline=None)
    @given(cookies=st.lists(_COOKIES, min_size=1, max_size=8))
    def test_off_grid_timestamps_quantize_to_fixpoint(self, cookies):
        """Arbitrary float timestamps land on the µs grid after one
        encode; the quantized form then round-trips exactly.  (The HMAC
        signs the quantized value too, so verdicts are unaffected —
        pinned by the differential suite.)"""
        skewed = [
            Cookie(
                cookie_id=c.cookie_id,
                uuid=c.uuid,
                timestamp=c.timestamp + 1e-7,
                signature=c.signature,
            )
            for c in cookies
        ]
        once = decode_batch(encode_batch(skewed))
        assert decode_batch(encode_batch(once)) == once

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []


class TestMalformedBatchFrames:
    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=3))
    def test_short_header_rejected(self, blob):
        with pytest.raises(MalformedCookie):
            decode_batch(blob)

    @settings(max_examples=40, deadline=None)
    @given(
        cookies=st.lists(_COOKIES, max_size=4),
        # Cutting a full 48-byte cookie off the padded blob would leave a
        # self-consistent frame again; stay strictly inside the record.
        cut=st.integers(1, COOKIE_WIRE_BYTES - 1),
    )
    def test_truncated_body_rejected(self, cookies, cut):
        blob = encode_batch(cookies) + b"\x00" * COOKIE_WIRE_BYTES
        with pytest.raises(MalformedCookie):
            decode_batch(blob[:-cut])
        # Trailing garbage is a count/length mismatch, same rejection.
        with pytest.raises(MalformedCookie):
            decode_batch(encode_batch(cookies) + b"\xff" * cut)

    @settings(max_examples=40, deadline=None)
    @given(cookies=st.lists(_COOKIES, min_size=1, max_size=4))
    def test_lying_count_rejected(self, cookies):
        blob = encode_batch(cookies)
        wrong = (len(cookies) + 1).to_bytes(4, "big") + blob[4:]
        with pytest.raises(MalformedCookie):
            decode_batch(wrong)


class TestVerdictFrames:
    @settings(max_examples=60, deadline=None)
    @given(
        verdicts=st.lists(
            st.tuples(
                st.integers(0, len(VERDICT_REASONS) - 1),
                st.integers(0, 2**64 - 1),
            ),
            max_size=32,
        )
    )
    def test_round_trip(self, verdicts):
        assert decode_verdicts(encode_verdicts(verdicts)) == verdicts

    def test_codes_cover_match_stats_outcomes(self):
        """One reason code per MatchStats outcome, accepted first — the
        wire protocol can express every verdict the matcher can reach."""
        assert VERDICT_REASONS[VERDICT_ACCEPTED] == "accepted"
        assert set(VERDICT_REASONS) == set(MatchStats().as_dict()) - {
            "total",
            "rejected",
        }

    def test_out_of_range_code_rejected_both_ways(self):
        bad = len(VERDICT_REASONS)
        with pytest.raises(MalformedCookie):
            encode_verdicts([(bad, 0)])
        blob = encode_verdicts([(0, 7)])
        poisoned = blob[:4] + bytes([bad]) + blob[5:]
        with pytest.raises(MalformedCookie):
            decode_verdicts(poisoned)

    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=3))
    def test_short_header_rejected(self, blob):
        with pytest.raises(MalformedCookie):
            decode_verdicts(blob)

    @settings(max_examples=40, deadline=None)
    @given(
        verdicts=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 2**64 - 1)),
            min_size=1,
            max_size=8,
        ),
        cut=st.integers(1, 8),
    )
    def test_length_mismatch_rejected(self, verdicts, cut):
        blob = encode_verdicts(verdicts)
        with pytest.raises(MalformedCookie):
            decode_verdicts(blob[:-cut])
        with pytest.raises(MalformedCookie):
            decode_verdicts(blob + b"\x00" * cut)

    def test_every_reject_reason_in_one_batch(self):
        """End-to-end: one batch that triggers all seven outcomes maps
        to a verdict array carrying all seven codes, descriptor ids only
        on accepts."""
        env = _Env()
        specs = [
            ("valid", 0, 1, 0.0, 1.0),
            ("unknown", 0, 2, 0.0, 1.0),
            ("bad_sig", 1, 3, 0.0, 1.0),
            ("stale", 2, 4, 1.0, 2.0),
            ("valid", 0, 5, 0.0, 1.0),  # same descriptor, fresh uuid
            ("revoked", 0, 6, 0.0, 1.0),
            ("expired", 0, 7, 0.0, 1.0),
        ]
        cookies = _materialize(env, specs)
        cookies.append(cookies[0])  # replayed uuid, same shard by design
        matcher = CookieMatcher(env.store)
        reasons: list[str] = []
        matcher.match_batch(cookies, NOW, reasons=reasons)
        wire = decode_verdicts(
            encode_verdicts(
                [
                    (
                        VERDICT_CODES[reason],
                        cookie.cookie_id
                        if VERDICT_CODES[reason] == VERDICT_ACCEPTED
                        else 0,
                    )
                    for reason, cookie in zip(reasons, cookies)
                ]
            )
        )
        assert {code for code, _ in wire} == set(range(len(VERDICT_REASONS)))
        for (code, descriptor_id), cookie in zip(wire, cookies):
            if code == VERDICT_ACCEPTED:
                assert descriptor_id == cookie.cookie_id
                assert env.store.get(descriptor_id) is not None
            else:
                assert descriptor_id == 0
