"""Differential tests for the event-kernel fast path.

The kernel rewrite (slots, lazy-deletion heap with compaction, periodic
re-arm, memoized header packing) must be *invisible*: every optimisation
is checked against a straightforward reference implementation on random
workloads, and the observable order of callback execution must match
exactly — same times, same tie-breaks, same skips for cancelled events.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netsim.events import EventLoop, SimulationError
from repro.netsim.headers import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    TCPOption,
    UDPHeader,
    _packed_ethernet,
    _packed_ipv4,
    _packed_udp,
)


class ReferenceLoop:
    """The obviously-correct kernel: a sorted list, eager removal."""

    def __init__(self) -> None:
        self._entries: list[tuple[float, int, object]] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay: float, callback):
        entry = [self.now + delay, self._seq, callback, False]
        self._seq += 1
        self._entries.append(entry)
        return entry

    @staticmethod
    def cancel(entry) -> None:
        entry[3] = True

    def run(self, until=None):
        while True:
            live = [e for e in self._entries if not e[3]]
            if not live:
                break
            entry = min(live, key=lambda e: (e[0], e[1]))
            if until is not None and entry[0] > until:
                break
            self._entries.remove(entry)
            self.now = entry[0]
            entry[2]()
        if until is not None and self.now < until:
            self.now = until
        return self.now


# One program = a list of operations interpreted against both kernels:
#   ("schedule", delay_index, tag)
#   ("cancel", handle_index)      -- cancels the i-th scheduled handle
# Delays come from a small positive pool so ties happen often (the
# interesting case for seq-order determinism).
op = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=999),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
)

DELAY_POOL = (0.0, 0.1, 0.1, 0.25, 0.5, 1.0)


def interpret(ops, loop, schedule, cancel, trace, nested_depth=2):
    """Run one program: scheduled callbacks record tags and may schedule
    or cancel further work themselves (the hard case for lazy deletion:
    mutation while the heap is mid-drain)."""
    handles = []

    def make_callback(tag, depth):
        def callback():
            trace.append((round(loop.now, 6), tag))
            if depth > 0 and tag % 3 == 0:
                handles.append(
                    schedule(
                        DELAY_POOL[tag % len(DELAY_POOL)],
                        make_callback(tag + 1000, depth - 1),
                    )
                )
            if depth > 0 and tag % 5 == 0 and handles:
                cancel(handles[tag % len(handles)])

        return callback

    for operation in ops:
        if operation[0] == "schedule":
            _, delay_index, tag = operation
            handles.append(
                schedule(DELAY_POOL[delay_index], make_callback(tag, nested_depth))
            )
        else:
            _, handle_index = operation
            if handles:
                cancel(handles[handle_index % len(handles)])


@given(ops=st.lists(op, max_size=40))
@settings(max_examples=60, deadline=None)
def test_lazy_heap_matches_reference_model(ops):
    fast = EventLoop()
    fast_trace: list = []
    interpret(ops, fast, fast.schedule, lambda h: h.cancel(), fast_trace)
    fast.run_until_idle()

    reference = ReferenceLoop()
    ref_trace: list = []
    interpret(
        ops, reference, reference.schedule, ReferenceLoop.cancel, ref_trace
    )
    reference.run()

    assert fast_trace == ref_trace
    assert abs(fast.now - reference.now) < 1e-9 or not fast_trace


@given(
    ops=st.lists(op, max_size=30),
    until=st.sampled_from([0.0, 0.2, 0.5, 1.5]),
)
@settings(max_examples=40, deadline=None)
def test_bounded_run_matches_reference_model(ops, until):
    fast = EventLoop()
    fast_trace: list = []
    interpret(ops, fast, fast.schedule, lambda h: h.cancel(), fast_trace)
    fast.run(until=until)

    reference = ReferenceLoop()
    ref_trace: list = []
    interpret(
        ops, reference, reference.schedule, ReferenceLoop.cancel, ref_trace
    )
    reference.run(until=until)

    assert fast_trace == ref_trace
    assert abs(fast.now - reference.now) < 1e-9


def test_compaction_fires_and_preserves_live_events():
    loop = EventLoop()
    fired: list[int] = []
    # Live events interleaved among a tombstone avalanche.
    live = [
        loop.schedule(10.0 + i, lambda i=i: fired.append(i))
        for i in range(10)
    ]
    doomed = [loop.schedule(5.0, lambda: fired.append(-1))
              for _ in range(2 * EventLoop.COMPACT_MIN_TOMBSTONES)]
    for event in doomed:
        event.cancel()
    assert loop.compactions >= 1
    # Compaction dropped a tombstone block wholesale (everything
    # cancelled before the pass), without waiting for pops to surface it.
    assert loop.pending < len(live) + len(doomed)
    loop.run_until_idle()
    # ...without touching delivery order or the live set.
    assert fired == list(range(10))
    assert loop.pending == 0


def test_small_heaps_never_compact():
    loop = EventLoop()
    for _ in range(EventLoop.COMPACT_MIN_TOMBSTONES - 1):
        loop.schedule(1.0, lambda: None).cancel()
    assert loop.compactions == 0
    loop.run_until_idle()


def test_double_cancel_counts_once():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert loop._tombstones == 1


def test_schedule_periodic_matches_manual_chain():
    manual_loop = EventLoop()
    manual_ticks: list[float] = []

    def manual_tick():
        manual_ticks.append(manual_loop.now)
        if len(manual_ticks) < 50:
            manual_loop.schedule(0.25, manual_tick)

    manual_loop.schedule(0.25, manual_tick)
    manual_loop.run(until=100.0)

    periodic_loop = EventLoop()
    periodic_ticks: list[float] = []
    timer = periodic_loop.schedule_periodic(
        0.25, lambda: periodic_ticks.append(periodic_loop.now)
    )

    def stop_at_50():
        if len(periodic_ticks) >= 50:
            timer.stop()

    checker = periodic_loop.schedule_periodic(0.25, stop_at_50)
    periodic_loop.run(until=100.0)
    checker.stop()

    assert periodic_ticks == manual_ticks


def test_periodic_stop_from_inside_callback():
    loop = EventLoop()
    ticks: list[float] = []
    holder: dict = {}

    def tick():
        ticks.append(loop.now)
        if len(ticks) == 3:
            holder["timer"].stop()

    holder["timer"] = loop.schedule_periodic(1.0, tick)
    loop.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert holder["timer"].stopped


def test_periodic_reuses_one_event_object():
    loop = EventLoop()
    timer = loop.schedule_periodic(0.5, lambda: None)
    first = timer._event
    loop.run(until=5.0)
    assert timer._event is first  # re-armed, never reallocated


def test_periodic_interval_validation():
    loop = EventLoop()
    try:
        loop.schedule_periodic(0.0, lambda: None)
    except SimulationError:
        pass
    else:  # pragma: no cover
        raise AssertionError("zero interval must be rejected")


# ----------------------------------------------------------------------
# Memoized header serialization
# ----------------------------------------------------------------------
def test_packed_headers_bitwise_equal_uncached():
    """The lru_cache layer must return exactly what a cold pack returns."""
    cases = [
        (
            _packed_ethernet,
            EthernetHeader(dst_mac="aa:bb:cc:dd:ee:ff",
                           src_mac="11:22:33:44:55:66"),
        ),
        (
            _packed_ipv4,
            IPv4Header(src="10.0.0.1", dst="192.168.1.9", proto=6,
                       total_length=1440),
        ),
        (_packed_udp, UDPHeader(src_port=53, dst_port=4444, length=80)),
    ]
    for memo, header in cases:
        memo.cache_clear()
        cold = header.pack()
        warm = header.pack()
        assert cold == warm
        assert memo.cache_info().hits >= 1
        assert memo.__wrapped__(*_memo_args(memo, header)) == cold


def _memo_args(memo, header):
    if memo is _packed_ethernet:
        return (header.dst_mac, header.src_mac, header.ethertype)
    if memo is _packed_ipv4:
        return (header.src, header.dst, header.proto, header.ttl,
                header.tos, header.total_length, header.ident)
    return (header.src_port, header.dst_port, header.length)


def test_distinct_headers_do_not_share_cache_entries():
    a = UDPHeader(src_port=1, dst_port=2, length=8)
    b = UDPHeader(src_port=2, dst_port=1, length=8)
    assert a.pack() != b.pack()


def test_tcp_wire_length_fast_path_matches_option_math():
    bare = TCPHeader(src_port=443, dst_port=50_000)
    assert bare.wire_length == TCPHeader.BASE_WIRE_LENGTH
    option = TCPOption(kind=253, data=b"x" * 48)
    header = TCPHeader(src_port=443, dst_port=50_000, options=[option])
    padded = ((option.wire_length + 3) // 4) * 4
    assert header.wire_length == TCPHeader.BASE_WIRE_LENGTH + padded
    # Option serialization itself goes through the memo layer.
    assert option.pack() == option.pack()
    assert len(option.pack()) == option.wire_length
