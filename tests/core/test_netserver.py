"""Live TCP cookie server tests: real sockets, JSON-lines protocol."""

import asyncio
import json

import pytest

from repro.core import (
    CookieDescriptor,
    CookieServer,
    ServiceOffering,
)
from repro.core.netserver import AsyncCookieServer, CookieClient


def _make_server():
    server = CookieServer(clock=lambda: 0.0)
    server.offer(ServiceOffering(name="Boost", description="fast lane"))
    return server


def _run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_list_services_over_tcp(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                response = await client.request({"op": "list_services"})
            finally:
                await client.close()
                await tcp.stop()
            return response

        response = _run(scenario())
        assert response["ok"]
        assert response["services"][0]["name"] == "Boost"

    def test_acquire_yields_usable_descriptor(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                response = await client.request(
                    {"op": "acquire", "user": "alice", "service": "Boost"}
                )
            finally:
                await client.close()
                await tcp.stop()
            return response

        response = _run(scenario())
        descriptor = CookieDescriptor.from_json(response["descriptor"])
        assert descriptor.service_data == "Boost"

    def test_multiple_requests_one_connection(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                first = await client.request({"op": "list_services"})
                second = await client.request(
                    {"op": "acquire", "user": "alice", "service": "Boost"}
                )
            finally:
                await client.close()
                await tcp.stop()
            return first, second

        first, second = _run(scenario())
        assert first["ok"] and second["ok"]

    def test_malformed_json_answered_with_error(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await tcp.stop()
            return json.loads(line)

        response = _run(scenario())
        assert not response["ok"]
        assert "bad request" in response["error"]

    def test_non_object_request_rejected(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"[1, 2, 3]\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await tcp.stop()
            return json.loads(line)

        assert not _run(scenario())["ok"]

    def test_concurrent_clients(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()

            async def one_client(user):
                client = CookieClient(host, port)
                try:
                    return await client.request(
                        {"op": "acquire", "user": user, "service": "Boost"}
                    )
                finally:
                    await client.close()

            responses = await asyncio.gather(
                *(one_client(f"user{i}") for i in range(5))
            )
            await tcp.stop()
            return responses

        responses = _run(scenario())
        assert all(r["ok"] for r in responses)
        ids = {r["descriptor"]["cookie_id"] for r in responses}
        assert len(ids) == 5

    def test_server_closed_connection_raises(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            await client.connect()
            await tcp.stop()
            with pytest.raises((ConnectionError, OSError)):
                await client.request({"op": "list_services"})
            await client.close()

        _run(scenario())
