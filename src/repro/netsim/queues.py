"""Queueing disciplines used by links and QoS enforcement.

The Boost prototype provisions its fast lane with (i) a high-priority
wireless WMM queue and (ii) a token-bucket throttle on everything else
(Linux ``tc`` analogues).  This module provides those building blocks:

- :class:`DropTailQueue` — bounded FIFO.
- :class:`StrictPriorityScheduler` — N queues, lowest index drains first.
- :class:`WeightedScheduler` — deficit-round-robin across classes.
- :class:`TokenBucket` — shaper/policer with burst.
- :class:`WMMScheduler` — 4 access categories (VO/VI/BE/BK) approximated as
  a weighted scheduler with WMM-like weights.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .packet import Packet

__all__ = [
    "QueueStats",
    "DropTailQueue",
    "StrictPriorityScheduler",
    "WeightedScheduler",
    "TokenBucket",
    "WMMScheduler",
    "WMM_ACCESS_CATEGORIES",
]

WMM_ACCESS_CATEGORIES = ("voice", "video", "best_effort", "background")


@dataclass
class QueueStats:
    """Counters shared by all queue types."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dequeued: int = 0
    bytes_dropped: int = 0

    @property
    def drop_rate(self) -> float:
        total = self.enqueued + self.dropped
        return self.dropped / total if total else 0.0


class DropTailQueue:
    """A bounded FIFO that drops arrivals when full.

    ``capacity_packets`` and ``capacity_bytes`` each bound the queue; a
    packet is dropped if admitting it would exceed either bound.
    """

    def __init__(
        self,
        capacity_packets: int = 1000,
        capacity_bytes: int | None = None,
    ) -> None:
        if capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_depth(self) -> int:
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def enqueue(self, packet: Packet) -> bool:
        """Admit a packet; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.capacity_packets or (
            self.capacity_bytes is not None
            and self._bytes + packet.wire_length > self.capacity_bytes
        ):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.wire_length
            return False
        self._queue.append(packet)
        self._bytes += packet.wire_length
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.wire_length
        return True

    def dequeue(self) -> Packet | None:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.wire_length
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.wire_length
        return packet

    def peek(self) -> Packet | None:
        return self._queue[0] if self._queue else None


class StrictPriorityScheduler:
    """Strict-priority scheduling over N drop-tail queues.

    Class 0 is highest priority.  ``classify`` defaults to reading
    ``packet.meta['qos_class']`` (set by the enforcement layer), falling
    back to the lowest priority.
    """

    def __init__(self, levels: int = 2, capacity_packets: int = 1000) -> None:
        if levels < 1:
            raise ValueError("need at least one priority level")
        self.levels = levels
        self.queues = [
            DropTailQueue(capacity_packets=capacity_packets) for _ in range(levels)
        ]

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues)

    @property
    def is_empty(self) -> bool:
        return all(q.is_empty for q in self.queues)

    def classify(self, packet: Packet) -> int:
        level = packet.meta.get("qos_class", self.levels - 1)
        return max(0, min(self.levels - 1, int(level)))

    def enqueue(self, packet: Packet) -> bool:
        return self.queues[self.classify(packet)].enqueue(packet)

    def dequeue(self) -> Packet | None:
        for queue in self.queues:
            packet = queue.dequeue()
            if packet is not None:
                return packet
        return None

    def peek(self) -> Packet | None:
        for queue in self.queues:
            packet = queue.peek()
            if packet is not None:
                return packet
        return None


class WeightedScheduler:
    """Deficit-round-robin scheduler across named classes.

    Each class gets bandwidth proportional to its weight when backlogged;
    idle classes' share is redistributed (work-conserving).
    """

    def __init__(
        self,
        weights: dict[str, float],
        default_class: str | None = None,
        capacity_packets: int = 1000,
        quantum_bytes: int = 1500,
    ) -> None:
        if not weights:
            raise ValueError("need at least one class")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self.weights = dict(weights)
        self.default_class = default_class or next(iter(weights))
        if self.default_class not in self.weights:
            raise ValueError(f"default class {self.default_class!r} not in weights")
        self.quantum_bytes = quantum_bytes
        self.queues = {
            name: DropTailQueue(capacity_packets=capacity_packets) for name in weights
        }
        self._deficits = {name: 0.0 for name in weights}
        self._order = list(weights)
        self._cursor = 0
        self._topped_up = False  # has the cursor's class gotten this
        # round's quantum yet?

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues.values())

    @property
    def is_empty(self) -> bool:
        return all(q.is_empty for q in self.queues.values())

    def classify(self, packet: Packet) -> str:
        name = packet.meta.get("qos_class_name", self.default_class)
        return name if name in self.queues else self.default_class

    def enqueue(self, packet: Packet) -> bool:
        return self.queues[self.classify(packet)].enqueue(packet)

    def dequeue(self) -> Packet | None:
        if self.is_empty:
            return None
        # Classic DRR: each round-robin visit tops up the class's deficit
        # by weight * quantum exactly once, then the class sends while the
        # deficit covers its head packet.  Bounded visits guarantee
        # progress even with tiny weights (deficits accumulate per visit).
        max_visits = 2 * len(self._order) + int(
            max(p.wire_length for q in self.queues.values() for p in [q.peek()] if p)
            / (min(self.weights.values()) * self.quantum_bytes)
            + 1
        ) * len(self._order)
        for _ in range(max_visits):
            name = self._order[self._cursor]
            queue = self.queues[name]
            if queue.is_empty:
                self._deficits[name] = 0.0
                self._advance()
                continue
            if not self._topped_up:
                self._deficits[name] += self.weights[name] * self.quantum_bytes
                self._topped_up = True
            head = queue.peek()
            assert head is not None
            if self._deficits[name] >= head.wire_length:
                self._deficits[name] -= head.wire_length
                return queue.dequeue()
            self._advance()
        # Fallback: guaranteed progress even with pathological weights.
        for queue in self.queues.values():
            if not queue.is_empty:
                return queue.dequeue()
        return None

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)
        self._topped_up = False


class TokenBucket:
    """A token-bucket rate limiter (the ``tc`` throttle analogue).

    ``rate_bps`` is the sustained rate in *bits* per second;
    ``burst_bytes`` the bucket depth.  :meth:`consume` asks whether a packet
    may pass now; :meth:`delay_until_conforming` computes how long a shaper
    must hold it.
    """

    def __init__(self, rate_bps: float, burst_bytes: int = 15_000) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    def set_rate(self, rate_bps: float) -> None:
        """Retarget the sustained rate (used by adaptive throttling)."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0
            )
            self._last_refill = now

    #: Tolerance for float drift between a computed conforming delay and
    #: the refill arithmetic at that instant (tokens, i.e. bytes).
    EPSILON = 1e-6

    def consume(self, nbytes: int, now: float) -> bool:
        """Try to send ``nbytes`` at time ``now`` (policer behaviour)."""
        self._refill(now)
        if self._tokens >= nbytes - self.EPSILON:
            self._tokens -= nbytes
            return True
        return False

    def delay_until_conforming(self, nbytes: int, now: float) -> float:
        """Seconds to wait before ``nbytes`` conforms (shaper behaviour).

        The returned delay is padded slightly so that consuming at
        ``now + delay`` always succeeds despite float rounding.
        """
        self._refill(now)
        if self._tokens >= nbytes - self.EPSILON:
            return 0.0
        deficit = nbytes - self._tokens
        return deficit * 8.0 / self.rate_bps + 1e-9

    @property
    def tokens(self) -> float:
        return self._tokens


class WMMScheduler(WeightedScheduler):
    """WiFi Multimedia access categories as a weighted scheduler.

    Real WMM is EDCA contention; for a single-AP downlink the observable
    effect is an approximate bandwidth ratio between access categories,
    which the weights below model.  Boost maps fast-lane traffic to the
    ``video`` category.
    """

    DEFAULT_WEIGHTS = {
        "voice": 8.0,
        "video": 4.0,
        "best_effort": 1.0,
        "background": 0.5,
    }

    def __init__(self, capacity_packets: int = 1000) -> None:
        super().__init__(
            weights=dict(self.DEFAULT_WEIGHTS),
            default_class="best_effort",
            capacity_packets=capacity_packets,
        )
