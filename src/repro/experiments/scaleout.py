"""Fig. 4 scale-out: multi-core verification throughput (§5).

The paper reports 20.4 Gb/s on 4 cores — linear scaling — because each
descriptor's cookies are steered to one core (§4.6).  This harness
measures our reproduction of that claim: the same verification-bound
cookie stream is pushed through

- the in-process :class:`~repro.core.distributed.ShardedVerifierPool`
  (one Python core, whatever the shard count), and
- the :class:`~repro.core.parallel.ProcessShardExecutor` at 1/2/4
  (configurable) worker processes,

on identical batches, and wall-clock throughput is compared.  The
workload is *verification-bound*: every cookie is fresh and valid, so
each one pays the full HMAC + replay-cache path — the regime where the
paper's middlebox is CPU-limited and scale-out pays off.

Used by ``benchmarks/test_ablation_scaleout.py`` (asserts ≥3x vs the
in-process pool at 4 workers on ≥4-core machines and a ≥0.9x floor at
1 worker via the degrade path, emits the JSON report CI publishes) and
by ``python -m repro scaleout`` for a human-readable table.

Executors are built with :meth:`ProcessShardExecutor.auto`, so the
measured transport is whatever the box supports (shm rings, pipes, or
the single-core in-process degrade mode) and each config row records
``transport``/``degraded`` explicitly.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from ..core.descriptor import CookieDescriptor
from ..core.distributed import ShardedVerifierPool
from ..core.generator import CookieGenerator
from ..core.parallel import ProcessShardExecutor
from ..core.store import DescriptorStore

__all__ = [
    "build_verification_stream",
    "run_scaleout",
    "format_scaleout_report",
    "DEFAULT_WORKER_COUNTS",
]

DEFAULT_WORKER_COUNTS = (1, 2, 4)
DEFAULT_DESCRIPTORS = 64
DEFAULT_COOKIES = 24_000
DEFAULT_BATCH_SIZE = 2_048
#: Cookies are minted (untimed) before the run; a wide NCT keeps them
#: fresh however slow pre-generation is (same device-under-test framing
#: as fig4_throughput).
STREAM_NCT = 600.0
STREAM_NOW = 100.0


def build_verification_stream(
    descriptors: int = DEFAULT_DESCRIPTORS,
    cookies: int = DEFAULT_COOKIES,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> tuple[DescriptorStore, list[list]]:
    """A verification-bound workload: every cookie unique and valid.

    Returns the store and the stream pre-chunked into rx-burst batches;
    batches are what both pools consume, so the IPC framing cost per
    dispatch is identical across worker counts.
    """
    store = DescriptorStore()
    generators = [
        CookieGenerator(
            store.add(CookieDescriptor.create(service_data=f"svc-{i}")),
            clock=lambda: STREAM_NOW,
        )
        for i in range(descriptors)
    ]
    stream = [
        generators[i % descriptors].generate() for i in range(cookies)
    ]
    return store, [
        stream[start : start + batch_size]
        for start in range(0, len(stream), batch_size)
    ]


def _drive(pool, batches: Sequence[list]) -> int:
    grants = 0
    match_batch = pool.match_batch
    for batch in batches:
        verdicts = match_batch(batch, STREAM_NOW)
        grants += sum(1 for verdict in verdicts if verdict is not None)
    return grants


def run_scaleout(
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    descriptors: int = DEFAULT_DESCRIPTORS,
    cookies: int = DEFAULT_COOKIES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rounds: int = 3,
) -> dict:
    """Measure in-process vs multi-process wall-clock on one stream.

    Each configuration gets ``rounds`` best-of runs over the *same*
    pre-built batches (fresh pool per run — replay caches must start
    cold or later rounds would reject everything as replays).  Worker
    spawn/teardown happens outside the timed region, as the paper's
    testbed measured steady-state forwarding, not box boot.

    Returns a JSON-ready report: per-configuration cookies/s, grants,
    and speedups relative to both the 1-worker executor (parallel
    efficiency) and the in-process pool (end-to-end win including IPC).
    """
    store, batches = build_verification_stream(
        descriptors=descriptors, cookies=cookies, batch_size=batch_size
    )
    total = sum(len(batch) for batch in batches)
    max_workers = max(worker_counts)

    def best_of(make_pool, describe=None, close=None) -> tuple[int, float, dict]:
        best = float("inf")
        grants = 0
        info: dict = {}
        for _ in range(rounds):
            pool = make_pool()
            try:
                start = time.perf_counter()
                grants = _drive(pool, batches)
                best = min(best, time.perf_counter() - start)
                if describe is not None:
                    info = describe(pool)
            finally:
                if close is not None:
                    close(pool)
        return grants, best, info

    report: dict = {
        "workload": {
            "descriptors": descriptors,
            "cookies": total,
            "batch_size": batch_size,
            "rounds": rounds,
        },
        "cpu_count": os.cpu_count(),
        "configs": [],
    }

    # The in-process pool runs on one core whatever its shard count —
    # record the configuration it actually has (shards), not a worker
    # count it does not use.
    grants, elapsed, _ = best_of(
        lambda: ShardedVerifierPool(store, shards=max_workers, nct=STREAM_NCT)
    )
    in_process = {
        "mode": "in-process",
        "shards": max_workers,
        "grants": grants,
        "elapsed_s": round(elapsed, 6),
        "cookies_per_s": round(total / elapsed),
    }
    report["configs"].append(in_process)

    by_workers: dict[int, dict] = {}
    for workers in worker_counts:
        # ``auto`` picks the transport the box supports — shm rings on a
        # real multi-core machine, the in-process degrade mode on a
        # single-core runner.  The report labels whichever it got, so
        # the CI table can never silently compare wrong modes.
        grants, elapsed, info = best_of(
            lambda: ProcessShardExecutor.auto(
                store, workers=workers, nct=STREAM_NCT
            ),
            describe=lambda pool: {
                "transport": pool.transport,
                "degraded": pool.degraded,
            },
            close=lambda pool: pool.close(),
        )
        config = {
            "mode": "multi-process",
            "workers": workers,
            "transport": info.get("transport", "unknown"),
            "degraded": info.get("degraded", False),
            "grants": grants,
            "elapsed_s": round(elapsed, 6),
            "cookies_per_s": round(total / elapsed),
        }
        by_workers[workers] = config
        report["configs"].append(config)

    base = by_workers.get(1)
    for workers, config in by_workers.items():
        if base is not None:
            config["speedup_vs_1_worker"] = round(
                base["elapsed_s"] / config["elapsed_s"], 3
            )
        config["speedup_vs_in_process"] = round(
            in_process["elapsed_s"] / config["elapsed_s"], 3
        )
    return report


def format_scaleout_report(report: dict) -> str:
    """An aligned table for humans (the CLI and the CI step summary)."""
    workload = report["workload"]
    lines = [
        f"{workload['cookies']:,} valid cookies over "
        f"{workload['descriptors']} descriptors, "
        f"batches of {workload['batch_size']}, "
        f"best of {workload['rounds']} — {report['cpu_count']} CPU core(s)",
        f"{'config':<34}{'cookies/s':>12}{'vs 1 worker':>13}"
        f"{'vs in-proc':>12}",
    ]
    for config in report["configs"]:
        if config["mode"] == "in-process":
            name = f"in-process x{config['shards']} shards"
        else:
            name = f"multi-process x{config['workers']}"
            transport = config.get("transport")
            if config.get("degraded"):
                name += " [degraded]"
            elif transport and transport != "shm":
                name += f" [{transport}]"
        vs_one = config.get("speedup_vs_1_worker")
        vs_inproc = config.get("speedup_vs_in_process")
        lines.append(
            f"{name:<34}{config['cookies_per_s']:>12,}"
            f"{(f'{vs_one:.2f}x' if vs_one else '—'):>13}"
            f"{(f'{vs_inproc:.2f}x' if vs_inproc else '—'):>12}"
        )
    return "\n".join(lines)
