"""Ablation — scaling out verification without enabling double-spending.

§4.6 leaves distributed uniqueness verification as future work but
sketches the fix: route all cookies of a descriptor through one box.
This benchmark quantifies both sides on the same workload:

- a descriptor-affine sharded pool grants each cookie exactly once while
  spreading load across shards;
- a naive load-balanced pool grants the same cookie once *per shard* —
  measurable double-spending.

``test_scaleout_multicore`` then measures the payoff of doing it with
real cores: the :class:`ProcessShardExecutor` (shared-memory ring
transport via ``auto``) at 1/2/4 workers against the in-process pool on
one verification-bound stream (the paper's §5 linear-scaling claim,
Fig. 4's regime).  It always writes
``benchmarks/reports/scaleout_multicore.json`` for the CI step summary;
the ≥3x-vs-in-process floor is only asserted on ≥4-core machines, while
the ≥0.9x single-worker floor (the degrade ladder's guarantee) is
asserted everywhere.
"""

import json
import os
import pathlib

from repro.core import CookieDescriptor, CookieGenerator, DescriptorStore
from repro.core.distributed import NaiveVerifierPool, ShardedVerifierPool
from repro.experiments.scaleout import format_scaleout_report, run_scaleout

SHARDS = 4
DESCRIPTORS = 200
COOKIES = 1_000
REPLAYS_PER_COOKIE = 3


def _workload():
    store = DescriptorStore()
    descriptors = [
        store.add(CookieDescriptor.create(service_data="Boost"))
        for _ in range(DESCRIPTORS)
    ]
    generators = [CookieGenerator(d, clock=lambda: 0.0) for d in descriptors]
    cookies = [generators[i % DESCRIPTORS].generate() for i in range(COOKIES)]
    return store, cookies


def _grants(pool, cookies) -> int:
    grants = 0
    for cookie in cookies:
        for _ in range(1 + REPLAYS_PER_COOKIE):
            if pool.match(cookie, now=0.0) is not None:
                grants += 1
    return grants


def _presentations(cookies):
    """The same workload _grants drives, flattened into one sequence."""
    out = []
    for cookie in cookies:
        out.extend([cookie] * (1 + REPLAYS_PER_COOKIE))
    return out


def _grants_batched(pool, cookies, batch_size: int = 256) -> int:
    stream = _presentations(cookies)
    grants = 0
    for start in range(0, len(stream), batch_size):
        verdicts = pool.match_batch(stream[start : start + batch_size], now=0.0)
        grants += sum(1 for verdict in verdicts if verdict is not None)
    return grants


def test_ablation_scaleout_double_spend(benchmark, report):
    store, cookies = _workload()
    sharded = ShardedVerifierPool(store, shards=SHARDS)
    sharded_grants = benchmark.pedantic(
        lambda: _grants(ShardedVerifierPool(store, shards=SHARDS), cookies),
        rounds=1,
        iterations=1,
    )
    _grants(sharded, cookies)
    naive = NaiveVerifierPool(store, shards=SHARDS)
    naive_grants = _grants(naive, cookies)

    report(f"{COOKIES} cookies, each replayed {REPLAYS_PER_COOKIE}x, "
           f"{SHARDS} verifier shards")
    report(f"  descriptor-affine pool grants: {sharded_grants:,} "
           f"(exactly one per cookie)")
    report(f"  naive load-balanced grants:    {naive_grants:,} "
           f"({naive_grants / COOKIES:.2f} per cookie — double-spending)")

    benchmark.extra_info["sharded_grants"] = sharded_grants
    benchmark.extra_info["naive_grants"] = naive_grants

    assert sharded_grants == COOKIES
    # Round-robin over 4 shards with 4 presentations: every presentation
    # hits a fresh cache, so each cookie is granted SHARDS times.
    assert naive_grants == COOKIES * SHARDS


def test_ablation_scaleout_scalar_vs_batched(benchmark, report):
    """Batched dispatch must beat per-cookie dispatch while granting the
    exact same set.  Both paths now memoize the rendezvous hash (scalar
    ``match`` shares the batch path's ``_shard_memo``), so the remaining
    edge is per-shard ``match_batch`` amortization — HMAC context reuse
    and single-pass local binding — worth ~1.4x rather than the ~2x+ it
    measured when the scalar baseline still paid blake2b per call."""
    import time

    store, cookies = _workload()

    def best_of(fn, rounds=3):
        best = float("inf")
        grants = None
        for _ in range(rounds):
            pool = ShardedVerifierPool(store, shards=SHARDS)
            start = time.perf_counter()
            grants = fn(pool, cookies)
            best = min(best, time.perf_counter() - start)
        return grants, best

    scalar_grants, scalar_s = best_of(_grants)
    batched_grants, batched_s = benchmark.pedantic(
        lambda: best_of(_grants_batched), rounds=1, iterations=1
    )
    presentations = COOKIES * (1 + REPLAYS_PER_COOKIE)
    scalar_cps = presentations / scalar_s
    batched_cps = presentations / batched_s
    speedup = batched_cps / scalar_cps

    report(f"{presentations:,} cookie presentations over {SHARDS} shards")
    report(f"  scalar match():       {scalar_cps:,.0f} cookies/s")
    report(f"  batched match_batch(): {batched_cps:,.0f} cookies/s")
    report(f"  speedup: {speedup:.2f}x")
    benchmark.extra_info["scalar_cookies_per_s"] = round(scalar_cps)
    benchmark.extra_info["batched_cookies_per_s"] = round(batched_cps)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    assert scalar_grants == batched_grants == COOKIES
    assert speedup >= 1.15, (scalar_cps, batched_cps)


MULTICORE_WORKER_COUNTS = (1, 2, 4)
#: 4 shm-ring workers must beat the in-process pool end to end —
#: including every IPC cost — by at least this much on a ≥4-core box.
MULTICORE_SPEEDUP_FLOOR = 3.0
#: Ungated: 1 worker must never lose meaningfully to the in-process
#: pool.  On multi-core boxes the ring transport pipelines encode
#: against verification; on single-core boxes ``auto`` degrades to
#: in-process service — either way the 0.45x regression class of the
#: pipe transport cannot land again.
SINGLE_WORKER_FLOOR = 0.9
MULTICORE_JSON = pathlib.Path(__file__).parent / "reports" / "scaleout_multicore.json"


def test_scaleout_multicore(benchmark, report):
    """Fig. 4 scale-out: process shards vs the in-process pool.

    The JSON report is written unconditionally (CI publishes it to the
    step summary; the checked-in copy documents a reference run).  The
    headline assertion — ≥3x over the in-process pool at 4 workers —
    needs 4 real cores to be physics rather than scheduling noise, so
    it is gated on ``os.cpu_count()``; the ≥0.9x single-worker floor
    holds everywhere because the degrade ladder guarantees it by
    construction.
    """
    result = benchmark.pedantic(
        lambda: run_scaleout(worker_counts=MULTICORE_WORKER_COUNTS, rounds=2),
        rounds=1,
        iterations=1,
    )

    MULTICORE_JSON.parent.mkdir(exist_ok=True)
    MULTICORE_JSON.write_text(json.dumps(result, indent=2) + "\n")
    for line in format_scaleout_report(result).splitlines():
        report(line)

    configs = {
        c["workers"]: c
        for c in result["configs"]
        if c["mode"] == "multi-process"
    }
    total = result["workload"]["cookies"]
    # Every configuration grants every cookie exactly once: the stream is
    # all-valid and unique, and a fresh pool starts each round cold.
    for config in result["configs"]:
        assert config["grants"] == total, config
    one, four = configs[1], configs[4]
    benchmark.extra_info["cookies_per_s_4_workers"] = four["cookies_per_s"]
    benchmark.extra_info["speedup_vs_in_process"] = (
        four["speedup_vs_in_process"]
    )
    benchmark.extra_info["transport_4_workers"] = four["transport"]
    benchmark.extra_info["cpu_count"] = result["cpu_count"]

    # The report must say what it measured: a degrade-mode row can never
    # masquerade as a multi-core result.
    for config in configs.values():
        assert config["transport"] in {"shm", "pipe", "mixed", "in-process"}
        assert config["degraded"] == (config["transport"] == "in-process")

    assert one["speedup_vs_in_process"] >= SINGLE_WORKER_FLOOR, result

    cores = os.cpu_count() or 1
    if cores >= 4:
        assert not four["degraded"], result
        assert four["speedup_vs_in_process"] >= MULTICORE_SPEEDUP_FLOOR, result
    else:
        report()
        report(f"only {cores} core(s): multicore speedup floor not asserted")


def test_ablation_scaleout_load_balance(benchmark, report):
    """Affinity must not defeat the point of scaling out: descriptors
    spread roughly evenly across shards."""
    store, cookies = _workload()

    def measure():
        pool = ShardedVerifierPool(store, shards=SHARDS)
        per_shard = [0] * SHARDS
        for cookie in cookies:
            per_shard[pool.shard_for(cookie)] += 1
        return per_shard

    per_shard = benchmark(measure)
    report(f"cookies per shard: {per_shard}")
    expected = COOKIES / SHARDS
    for load in per_shard:
        assert expected * 0.5 < load < expected * 1.6
