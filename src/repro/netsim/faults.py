"""Deterministic fault injection for pipeline experiments.

The netsim delivers every packet perfectly, which proves nothing about the
paper's safety claims — those rest on cookies surviving *mis*behaviour:
loss, duplication, reordering, jitter, bit errors, and NCT-bounded clock
skew (the conditions FairNet-style measurement shows are the norm on real
paths).  :class:`FaultInjector` is an :class:`~repro.netsim.middlebox.Element`
you splice in front of any element or link to subject it to exactly those
faults, reproducibly: every decision comes from one seeded PRNG, so a
chaos run with a pinned seed replays bit-identically.

Corruption is aimed where it hurts: the injector flips bits (or mangles
text) in the **cookie wire region** of whatever carrier the packet uses —
TCP option, UDP shim, IPv6 extension, TLS extension, HTTP header.  Every
carrier already treats an unparseable cookie as
:class:`~repro.core.errors.MalformedCookie` and degrades to "no cookie
here", so a corrupted cookie must surface as a charged/best-effort flow,
never a crash; the chaos soak asserts exactly that.

Clock skew is not an in-flight fault: cookie timestamps are *signed*, so
a middlebox cannot alter them without tripping the HMAC.  Skew is a
property of the minting host — wrap the host's clock in
:class:`SkewedClock` so its agent signs honestly-skewed timestamps, and
the verifier's NCT window does the rest.
"""

from __future__ import annotations

import copy
import errno
import os
import random
import signal
from dataclasses import dataclass
from typing import Callable

from .events import EventLoop
from .middlebox import Element
from .packet import Packet

__all__ = [
    "DiskFaultInjector",
    "DiskFaultPlan",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "SkewedClock",
    "TornWrite",
]

# Carrier constants, duplicated from repro.core.transport so the netsim
# layer stays below core (the values are wire constants, not code).
_TCP_COOKIE_OPTION_KIND = 253
_IPV6_COOKIE_OPTION_TYPE = 0x1E
_TLS_COOKIE_EXTENSION_TYPE = 0xFFCE
_HTTP_COOKIE_HEADER = "X-Network-Cookie"


class SkewedClock:
    """A host clock offset by a constant ``skew`` from the base clock.

    Hand this to the host's :class:`~repro.core.client.UserAgent` /
    :class:`~repro.core.generator.CookieGenerator`: its cookies carry
    honestly-signed but skewed timestamps, exercising the verifier's NCT
    window from both sides (``skew`` may be negative).
    """

    def __init__(self, base: Callable[[], float], skew: float) -> None:
        self.base = base
        self.skew = skew

    def __call__(self) -> float:
        return self.base() + self.skew


@dataclass(frozen=True)
class FaultPlan:
    """Per-packet fault probabilities (each drawn independently).

    Rates are probabilities in [0, 1].  ``delay_jitter_s`` is the maximum
    extra latency applied to packets selected by ``delay_rate`` (needs an
    event loop; in batch mode a delayed packet is displaced to the end of
    its batch instead).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_jitter_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "duplicate_rate",
            "reorder_rate",
            "corrupt_rate",
            "delay_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_jitter_s < 0:
            raise ValueError("delay_jitter_s must be non-negative")


@dataclass
class FaultStats:
    """What the injector actually did (ground truth for invariants)."""

    packets: int = 0
    drops: int = 0
    duplicates: int = 0
    reorders: int = 0
    corruptions: int = 0
    delays: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "packets": self.packets,
            "drops": self.drops,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "corruptions": self.corruptions,
            "delays": self.delays,
        }


class FaultInjector(Element):
    """Element that drops, duplicates, reorders, delays, and corrupts.

    Per packet, one roll per fault class is drawn from the seeded PRNG in
    a fixed order (drop, corrupt, duplicate, reorder, delay) so runs are
    reproducible regardless of which faults fire.  Semantics:

    - **drop**: the packet vanishes.
    - **corrupt**: bits flip inside the cookie wire region (whichever
      carrier holds it); packets without a cookie pass unharmed.  The
      packet's ``meta["fault_corrupted"]`` is set and ``on_corrupt`` (if
      given) is called — harnesses use this as ground truth for "this
      flow's cookie was mangled".
    - **duplicate**: a deep copy (``meta["fault_duplicate"]``) follows
      the original — the network replaying the same bytes on the same
      path, which must trip the verifier's replay cache, not crash it.
    - **reorder**: the packet is held back and re-emitted after the next
      forwarded packet (an adjacent swap).
    - **delay**: the packet is re-emitted ``uniform(0, delay_jitter_s)``
      later via the event loop (batch mode: displaced to batch end).

    Call :meth:`flush` when the traffic source is exhausted to release a
    held reordered packet.
    """

    def __init__(
        self,
        plan: FaultPlan,
        loop: EventLoop | None = None,
        name: str = "fault-injector",
        on_corrupt: Callable[[Packet], None] | None = None,
        telemetry=None,
        telemetry_prefix: str = "faults",
    ) -> None:
        super().__init__(name)
        if plan.delay_rate > 0 and plan.delay_jitter_s > 0 and loop is None:
            raise ValueError("delay jitter needs an event loop")
        self.plan = plan
        self.loop = loop
        self.rng = random.Random(plan.seed)
        self.on_corrupt = on_corrupt
        self.stats = FaultStats()
        self._held: Packet | None = None
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    # ------------------------------------------------------------------
    # Scalar path
    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        plan = self.plan
        rng = self.rng
        stats = self.stats
        stats.packets += 1
        # One roll per fault class, fixed order, drawn before branching:
        # the PRNG stream is a pure function of the packet count.
        drop = rng.random() < plan.drop_rate
        corrupt = rng.random() < plan.corrupt_rate
        duplicate = rng.random() < plan.duplicate_rate
        reorder = rng.random() < plan.reorder_rate
        delay = rng.random() < plan.delay_rate
        if drop:
            stats.drops += 1
            return
        if corrupt and self._corrupt(packet):
            stats.corruptions += 1
        if delay and plan.delay_jitter_s > 0:
            stats.delays += 1
            assert self.loop is not None
            self.loop.schedule(
                rng.uniform(0.0, plan.delay_jitter_s),
                lambda p=packet: self._forward(p),
            )
        else:
            self._forward(packet, hold=reorder)
        if duplicate:
            stats.duplicates += 1
            self._forward(self._clone(packet))

    def _forward(self, packet: Packet, hold: bool = False) -> None:
        """Emit, honouring the one-slot reorder buffer: a held packet is
        released right after the next packet overtakes it."""
        if hold and self._held is None:
            self._held = packet
            return
        self.emit(packet)
        held = self._held
        if held is not None:
            self._held = None
            self.stats.reorders += 1
            self.emit(held)

    def flush(self) -> None:
        """Release a held (reordered) packet at end of stream."""
        held = self._held
        if held is not None:
            self._held = None
            self.stats.reorders += 1
            self.emit(held)

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def process_batch(self, packets: list[Packet]) -> None:
        """Batch faults: same per-packet rolls; reordering swaps within
        the batch and delayed packets are displaced to the batch's end
        (a batch is one observation instant, so lateness can only mean
        "after everything else this tick")."""
        plan = self.plan
        rng = self.rng
        stats = self.stats
        out: list[Packet] = []
        late: list[Packet] = []
        swap_pending = False
        for packet in packets:
            stats.packets += 1
            drop = rng.random() < plan.drop_rate
            corrupt = rng.random() < plan.corrupt_rate
            duplicate = rng.random() < plan.duplicate_rate
            reorder = rng.random() < plan.reorder_rate
            delay = rng.random() < plan.delay_rate
            if drop:
                stats.drops += 1
                continue
            if corrupt and self._corrupt(packet):
                stats.corruptions += 1
            if delay and plan.delay_jitter_s > 0:
                stats.delays += 1
                late.append(packet)
            elif swap_pending and out:
                stats.reorders += 1
                out.insert(len(out) - 1, packet)
                swap_pending = False
            else:
                out.append(packet)
            if duplicate:
                stats.duplicates += 1
                out.append(self._clone(packet))
            if reorder:
                swap_pending = True
        out.extend(late)
        self.emit_batch(out)

    # ------------------------------------------------------------------
    # Corruption
    # ------------------------------------------------------------------
    def _clone(self, packet: Packet) -> Packet:
        dup = copy.deepcopy(packet)
        dup.meta["fault_duplicate"] = True
        return dup

    def _corrupt(self, packet: Packet) -> bool:
        """Flip bits in the packet's cookie wire region, if it has one.

        Works directly on carrier storage (duck-typed so netsim does not
        import core): TCP options, UDP shim, IPv6 extensions, TLS
        extension, HTTP header.  Returns True if something was mangled.
        """
        rng = self.rng
        corrupted = False
        l4 = packet.l4
        options = getattr(l4, "options", None)
        if options:
            for option in options:
                if getattr(option, "kind", None) == _TCP_COOKIE_OPTION_KIND:
                    option.data = _flip_bit(option.data, rng)
                    corrupted = True
                    break
        ip = packet.ip
        extensions = getattr(ip, "extensions", None)
        if not corrupted and extensions:
            for extension in extensions:
                if (
                    getattr(extension, "option_type", None)
                    == _IPV6_COOKIE_OPTION_TYPE
                ):
                    extension.data = _flip_bit(extension.data, rng)
                    corrupted = True
                    break
        content = packet.payload.content
        if not corrupted and hasattr(content, "cookie_bytes"):
            content.cookie_bytes = _flip_bit(content.cookie_bytes, rng)
            corrupted = True
        hello_extensions = getattr(content, "extensions", None)
        if not corrupted and isinstance(hello_extensions, dict):
            data = hello_extensions.get(_TLS_COOKIE_EXTENSION_TYPE)
            if data:
                hello_extensions[_TLS_COOKIE_EXTENSION_TYPE] = _flip_bit(
                    data, rng
                )
                corrupted = True
        if (
            not corrupted
            and hasattr(content, "header")
            and hasattr(content, "set_header")
        ):
            text = content.header(_HTTP_COOKIE_HEADER)
            if text:
                content.set_header(_HTTP_COOKIE_HEADER, _mangle_text(text, rng))
                corrupted = True
        if corrupted:
            packet.meta["fault_corrupted"] = True
            if self.on_corrupt is not None:
                self.on_corrupt(packet)
        return corrupted

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def register_telemetry(self, registry, prefix: str = "faults") -> None:
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.{name}": value
                    for name, value in self.stats.as_dict().items()
                }
            )

        registry.register_collector(prefix, collect)


class TornWrite(OSError):
    """A torn-write injection fired: only a prefix of the frame reached
    the file.  In a real crash the process is gone at this point, so the
    raising writer must be treated as dead — only recovery through a
    fresh :class:`~repro.services.billing.journal.BillingJournal` makes
    the directory writable again."""


@dataclass(frozen=True)
class DiskFaultPlan:
    """Deterministic storage faults for write-ahead journals.

    Unlike :class:`FaultPlan`, these are *not* probabilistic: crash
    drills must tear the exact same byte of the exact same append every
    run, so faults are addressed by append index (0-based count of
    appends the injector has seen).

    - ``torn_write_at``: on that append, write only ``torn_write_bytes``
      of the frame to the file (a prefix), then either raise
      :class:`TornWrite` (in-process tests) or — if ``kill_on_tear`` —
      fsync the torn prefix and SIGKILL the process (the crash drill's
      "power loss mid-append").
    - ``enospc_at``: on that append, raise ``OSError(ENOSPC)`` before
      any byte is written (the journal maps it to ``JournalFull``).
    """

    torn_write_at: int | None = None
    torn_write_bytes: int = 0
    enospc_at: int | None = None
    kill_on_tear: bool = False

    def __post_init__(self) -> None:
        if self.torn_write_bytes < 0:
            raise ValueError("torn_write_bytes must be >= 0")


@dataclass
class DiskFaultInjector:
    """Hooks a journal's append path (``disk_faults=`` parameter).

    The journal calls :meth:`on_append` with its open file and the full
    frame; a clean append is a plain ``file.write(frame)``.
    """

    plan: DiskFaultPlan
    appends_seen: int = 0
    torn_writes: int = 0
    enospc_errors: int = 0

    def on_append(self, file, frame: bytes) -> None:
        index = self.appends_seen
        self.appends_seen += 1
        plan = self.plan
        if plan.enospc_at is not None and index == plan.enospc_at:
            self.enospc_errors += 1
            raise OSError(errno.ENOSPC, "injected disk full")
        if plan.torn_write_at is not None and index == plan.torn_write_at:
            self.torn_writes += 1
            prefix = frame[: min(plan.torn_write_bytes, len(frame))]
            file.write(prefix)
            file.flush()
            os.fsync(file.fileno())
            if plan.kill_on_tear:
                # Power loss mid-append: the torn prefix is durable, the
                # process is gone.  SIGKILL cannot be caught or blocked.
                os.kill(os.getpid(), signal.SIGKILL)
            raise TornWrite(
                f"torn write at append {index}: "
                f"{len(prefix)}/{len(frame)} bytes reached disk"
            )
        file.write(frame)

    def as_dict(self) -> dict[str, int]:
        return {
            "appends_seen": self.appends_seen,
            "torn_writes": self.torn_writes,
            "enospc_errors": self.enospc_errors,
        }


def _flip_bit(data: bytes, rng: random.Random) -> bytes:
    """Flip one random bit (bytes in, bytes out; empty stays empty)."""
    if not data:
        return data
    index = rng.randrange(len(data))
    mask = 1 << rng.randrange(8)
    return data[:index] + bytes([data[index] ^ mask]) + data[index + 1 :]


def _mangle_text(text: str, rng: random.Random) -> str:
    """Replace one random character (text carriers: HTTP header value)."""
    if not text:
        return text
    index = rng.randrange(len(text))
    replacement = chr(rng.randrange(33, 127))
    while replacement == text[index]:
        replacement = chr(rng.randrange(33, 127))
    return text[:index] + replacement + text[index + 1 :]
