#!/usr/bin/env python3
"""Application-assisted boosting: a video player saves its own playback.

The paper's motivating micro-scenario: "a video application could ask for
a short burst of high bandwidth when it runs low on buffers (and risks
rebuffering)".  Here a 3 Mb/s stream shares a 6 Mb/s home line with three
bulk downloads.  Without help it starves and stalls repeatedly.  With a
buffer-low trigger wired to the Boost agent, the player requests the fast
lane only when it is about to stall — user-consented, application-timed.

Run:  python examples/video_rebuffering.py
"""

from repro.core import CookieGenerator, DescriptorStore
from repro.core.transport import default_registry
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import FunctionElement
from repro.netsim.tcpmodel import TcpTransfer
from repro.netsim.topology import HomeNetwork, HomeNetworkConfig
from repro.services.boost import BOOST_SERVICE, BoostDaemon, make_boost_server
from repro.services.video import PlaybackStats, VideoPlayer


def watch_movie(with_boost: bool) -> PlaybackStats:
    """Play 30 s of 3 Mb/s video against household bulk traffic."""
    loop = EventLoop()
    server, _db = make_boost_server(clock=lambda: loop.now)
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    daemon = BoostDaemon(loop, store)
    home = HomeNetwork(loop, config=HomeNetworkConfig(),
                       middleboxes=[daemon.switch])
    daemon.attach(home)

    # The rest of the household: three long bulk downloads.
    for i in range(3):
        TcpTransfer(
            loop, home.wan_ingress, size_bytes=50_000_000,
            src_ip=f"203.0.113.{30 + i}", dst_ip="192.168.1.101",
            dst_port=40_000 + i,
        ).start()

    # The player's boost trigger: acquire a descriptor once and arm a
    # cookie tagger for the video's subsequent chunks.
    registry = default_registry()
    descriptor = server.acquire("resident", BOOST_SERVICE)
    generator = CookieGenerator(descriptor, clock=lambda: loop.now)
    armed = [False]

    def tag(packet):
        if (armed[0] and packet.meta.get("video")
                and packet.meta.get("segment", 99) < 2):
            registry.attach(packet, generator.generate())
        return packet

    tagger = FunctionElement(tag, name="video-cookie-tagger")
    tagger >> home.wan_ingress

    def buffer_low_trigger() -> bool:
        armed[0] = True
        return True

    player = VideoPlayer(
        loop, tagger,
        duration_seconds=30.0, bitrate_bps=3_000_000.0,
        boost_trigger=buffer_low_trigger if with_boost else None,
        transfer_meta={"video": True},
    )
    player.start()
    loop.run(until=300.0)
    return player.stats


def main() -> None:
    print("30 s of 3 Mb/s video on a 6 Mb/s line with 3 bulk downloads\n")
    print(f"{'':<22}{'plain':>12}{'buffer-boost':>14}")
    plain = watch_movie(with_boost=False)
    boosted = watch_movie(with_boost=True)
    rows = [
        ("rebuffer events", plain.rebuffer_events, boosted.rebuffer_events),
        ("seconds stalled", f"{plain.rebuffer_seconds:.1f}",
         f"{boosted.rebuffer_seconds:.1f}"),
        ("startup delay (s)", f"{plain.startup_delay:.1f}",
         f"{boosted.startup_delay:.1f}"),
        ("wall time to finish (s)", f"{plain.finished_at:.1f}",
         f"{boosted.finished_at:.1f}"),
        ("boost requests", plain.boost_requests, boosted.boost_requests),
    ]
    for label, a, b in rows:
        print(f"{label:<22}{a!s:>12}{b!s:>14}")
    print("\nOne application-timed boost request turned an unwatchable "
          "stream into a smooth one —")
    print("and the user (not the ISP, not the content provider) authorized it.")


if __name__ == "__main__":
    main()
