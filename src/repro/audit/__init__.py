"""The audit package: control-plane audit log + adversarial neutrality
auditor.

:mod:`repro.audit.log` is the append-only control-plane record (grants,
denials, revocations) the cookie server writes — promoted here from
``repro.core.audit``, which remains as a compat re-export.

:mod:`repro.audit.auditor` is the record/replay differential harness
that verifies the data plane enforces exactly the advertised policy, and
:mod:`repro.audit.personas` the malicious operators it must catch;
:mod:`repro.audit.stats` holds the paired statistical tests.

Only the log is imported eagerly: the auditor pulls in the whole service
stack, and ``repro.core`` imports this package for the compat shim, so
the heavyweight modules load lazily via module ``__getattr__``.
"""

from .log import AuditEvent, AuditLog, AuditRecord

__all__ = [
    "AuditEvent",
    "AuditRecord",
    "AuditLog",
    "AuditConfig",
    "AuditVerdict",
    "DimensionResult",
    "FlowOutcome",
    "HarnessContext",
    "NeutralityAuditor",
    "RecordingVerifier",
    "VerificationRecord",
    "AUDIT_SEED",
    "OperatorPersona",
    "HonestOperator",
    "PERSONAS",
    "persona_catalog",
    "PairedTestResult",
    "sign_test",
    "paired_permutation_test",
]

_LAZY = {
    "AuditConfig": "auditor",
    "AuditVerdict": "auditor",
    "DimensionResult": "auditor",
    "FlowOutcome": "auditor",
    "HarnessContext": "auditor",
    "NeutralityAuditor": "auditor",
    "RecordingVerifier": "auditor",
    "VerificationRecord": "auditor",
    "AUDIT_SEED": "auditor",
    "OperatorPersona": "personas",
    "HonestOperator": "personas",
    "NonCookieThrottler": "personas",
    "FreeByteInflater": "personas",
    "BoostUnderDeliverer": "personas",
    "ReplayHonorer": "personas",
    "DescriptorColluder": "personas",
    "RevocationIgnorer": "personas",
    "PERSONAS": "personas",
    "persona_catalog": "personas",
    "PairedTestResult": "stats",
    "sign_test": "stats",
    "paired_permutation_test": "stats",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
