"""Synthetic campus wireless trace (§4.6's evaluation workload).

The paper evaluated its middlebox against "a 15-hour anonymized trace that
includes all wireless traffic from our university's main campus, student
residences, and visitor WiFi.  It contains 11.3 million HTTP(S) flows
originating from 73613 distinct IP addresses (median flow size is 50
packets, and 99-percentile for new flows per second is 442)."

We cannot ship that trace, so :class:`CampusTraceGenerator` synthesizes
one matched to every published marginal:

- flow sizes are lognormal with median 50 packets;
- per-second flow arrivals are gamma-distributed with the mean set by the
  flow-count/duration ratio (11.3 M / 15 h ≈ 209 flows/s) and shape chosen
  so the 99th percentile lands at ≈442 (p99/mean ≈ 2.11);
- client IPs are drawn Zipf-style from a 73613-address pool.

``scale`` shrinks the trace proportionally (same marginals, fewer flows)
so tests and benchmarks stay fast.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from .records import FlowRecord

__all__ = ["CampusTraceGenerator", "CampusTraceStats", "PUBLISHED_TRACE"]

#: §4.6's published trace statistics.
PUBLISHED_TRACE = {
    "duration_hours": 15,
    "flows": 11_300_000,
    "distinct_ips": 73_613,
    "median_flow_packets": 50,
    "p99_new_flows_per_second": 442,
}

_FULL_DURATION_S = PUBLISHED_TRACE["duration_hours"] * 3600
_MEAN_ARRIVALS = PUBLISHED_TRACE["flows"] / _FULL_DURATION_S  # ~209 flows/s
#: Gamma shape giving p99/mean ~= 442/209 ~= 2.11.
_GAMMA_SHAPE = 5.6


@dataclass
class CampusTraceStats:
    """Summary of one generated trace."""

    flows: int
    duration_s: float
    distinct_ips: int
    median_flow_packets: float
    p99_new_flows_per_second: float
    mean_new_flows_per_second: float


class CampusTraceGenerator:
    """Generates flow records matching the published marginals."""

    #: lognormal sigma for flow sizes; median is exp(mu) = 50 packets and
    #: this spread reproduces a campus mix of beacons and bulk downloads.
    SIGMA = 1.4

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 26_01_2015,  # the trace's collection date
        ip_pool: int | None = None,
    ) -> None:
        if not 0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.scale = scale
        self.rng = random.Random(seed)
        self.duration_s = _FULL_DURATION_S * scale
        self.ip_pool = ip_pool or max(
            64, int(PUBLISHED_TRACE["distinct_ips"] * scale)
        )
        # Zipf-ish client activity: a few heavy hitters, many one-flow IPs.
        self._ip_weights = [1.0 / (i + 1) ** 0.6 for i in range(self.ip_pool)]
        self._ip_cumulative: list[float] = []
        total = 0.0
        for weight in self._ip_weights:
            total += weight
            self._ip_cumulative.append(total)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def _flow_size(self) -> int:
        median = PUBLISHED_TRACE["median_flow_packets"]
        size = self.rng.lognormvariate(math.log(median), self.SIGMA)
        return max(1, int(round(size)))

    def _arrivals_in_second(self) -> int:
        """Per-second arrival count: gamma-distributed rate."""
        rate = self.rng.gammavariate(
            _GAMMA_SHAPE, _MEAN_ARRIVALS / _GAMMA_SHAPE
        )
        # Poisson thinning around the sampled rate.
        return max(0, int(round(self.rng.gauss(rate, math.sqrt(max(rate, 1.0))))))

    def _client_ip(self) -> str:
        point = self.rng.random() * self._ip_cumulative[-1]
        lo, hi = 0, len(self._ip_cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ip_cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        return f"10.{(index >> 16) & 0xFF}.{(index >> 8) & 0xFF}.{index & 0xFF}"

    def _server_ip(self) -> str:
        return (
            f"93.{self.rng.randint(0, 255)}."
            f"{self.rng.randint(0, 255)}.{self.rng.randint(1, 254)}"
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, max_flows: int | None = None) -> Iterator[FlowRecord]:
        """Yield flow records in arrival order over the scaled duration."""
        produced = 0
        second = 0
        while second < self.duration_s:
            for _ in range(self._arrivals_in_second()):
                if max_flows is not None and produced >= max_flows:
                    return
                offset = self.rng.random()
                yield FlowRecord(
                    start_time=second + offset,
                    client_ip=self._client_ip(),
                    client_port=self.rng.randint(20_000, 60_000),
                    server_ip=self._server_ip(),
                    server_port=443 if self.rng.random() < 0.7 else 80,
                    packets=self._flow_size(),
                    avg_packet_size=self.rng.randint(400, 1400),
                    https=True,
                    sni=f"host{self.rng.randint(0, 9999)}.example.com",
                )
                produced += 1
            second += 1

    def summarize(self, records: list[FlowRecord]) -> CampusTraceStats:
        """Compute the published marginals over a generated trace."""
        from .stats import percentile

        per_second: dict[int, int] = {}
        ips: set[str] = set()
        sizes: list[int] = []
        for record in records:
            bucket = int(record.start_time)
            per_second[bucket] = per_second.get(bucket, 0) + 1
            ips.add(record.client_ip)
            sizes.append(record.packets)
        sizes.sort()
        arrivals = sorted(per_second.values())
        duration = (
            max(r.start_time for r in records) - min(r.start_time for r in records)
            if records
            else 0.0
        )
        return CampusTraceStats(
            flows=len(records),
            duration_s=duration,
            distinct_ips=len(ips),
            median_flow_packets=percentile(sizes, 50.0),
            p99_new_flows_per_second=percentile(arrivals, 99.0),
            mean_new_flows_per_second=(
                sum(arrivals) / len(arrivals) if arrivals else 0.0
            ),
        )
