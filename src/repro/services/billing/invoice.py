"""Per-operator invoices built from journaled billing records.

An :class:`OperatorInvoice` is the reconciled, customer-facing view of
one operator's journal slice: per-subscriber statements with line items
keyed by (app, byte_class, free) plus rollups.  Amounts are computed
from the operator's charged rate (free bytes cost nothing by
definition — that is what "zero-rated" means); the tariff cross-checks
in :mod:`repro.services.billing.reconcile` verify that the *split* into
free/charged obeyed the catalog, not this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..zerorate.catalog import GB

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .journal import BillingRecord

__all__ = ["InvoiceLine", "SubscriberStatement", "OperatorInvoice", "build_invoices"]


@dataclass
class InvoiceLine:
    """One (app, byte_class, free) bucket on a subscriber statement."""

    app: str
    byte_class: str
    free: bool
    nbytes: int = 0
    records: int = 0

    def key(self) -> tuple[str, str, bool]:
        return (self.app, self.byte_class, self.free)

    def to_json(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "byte_class": self.byte_class,
            "free": self.free,
            "bytes": self.nbytes,
            "records": self.records,
        }


@dataclass
class SubscriberStatement:
    subscriber: str
    lines: dict[tuple[str, str, bool], InvoiceLine] = field(default_factory=dict)

    def add(self, app: str, byte_class: str, free: bool, nbytes: int) -> None:
        key = (app, byte_class, free)
        line = self.lines.get(key)
        if line is None:
            line = self.lines[key] = InvoiceLine(app=app, byte_class=byte_class, free=free)
        line.nbytes += nbytes
        line.records += 1

    @property
    def free_bytes(self) -> int:
        return sum(l.nbytes for l in self.lines.values() if l.free)

    @property
    def charged_bytes(self) -> int:
        return sum(l.nbytes for l in self.lines.values() if not l.free)

    @property
    def total_bytes(self) -> int:
        return self.free_bytes + self.charged_bytes

    def sorted_lines(self) -> list[InvoiceLine]:
        return [self.lines[key] for key in sorted(self.lines)]

    def to_json(self) -> dict[str, Any]:
        return {
            "subscriber": self.subscriber,
            "free_bytes": self.free_bytes,
            "charged_bytes": self.charged_bytes,
            "lines": [line.to_json() for line in self.sorted_lines()],
        }


@dataclass
class OperatorInvoice:
    """All statements for one operator over one reconciliation window."""

    operator: str
    charged_rate_per_gb: float = 0.0
    statements: dict[str, SubscriberStatement] = field(default_factory=dict)
    records: int = 0

    def add_record(self, record: "BillingRecord") -> None:
        statement = self.statements.get(record.subscriber)
        if statement is None:
            statement = self.statements[record.subscriber] = SubscriberStatement(
                subscriber=record.subscriber
            )
        if record.free_bytes:
            statement.add(record.app, record.byte_class, True, record.free_bytes)
        if record.charged_bytes:
            statement.add(record.app, record.byte_class, False, record.charged_bytes)
        self.records += 1

    @property
    def free_bytes(self) -> int:
        return sum(s.free_bytes for s in self.statements.values())

    @property
    def charged_bytes(self) -> int:
        return sum(s.charged_bytes for s in self.statements.values())

    @property
    def total_bytes(self) -> int:
        return self.free_bytes + self.charged_bytes

    @property
    def amount_due(self) -> float:
        return self.charged_bytes / GB * self.charged_rate_per_gb

    def subscriber_total(self, subscriber: str) -> int:
        statement = self.statements.get(subscriber)
        return statement.total_bytes if statement else 0

    def per_subscriber_totals(self) -> dict[str, int]:
        return {
            ip: self.statements[ip].total_bytes for ip in sorted(self.statements)
        }

    def to_json(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "charged_rate_per_gb": self.charged_rate_per_gb,
            "free_bytes": self.free_bytes,
            "charged_bytes": self.charged_bytes,
            "total_bytes": self.total_bytes,
            "amount_due": round(self.amount_due, 6),
            "records": self.records,
            "statements": [
                self.statements[ip].to_json() for ip in sorted(self.statements)
            ],
        }

    def table_row(self) -> dict[str, Any]:
        """Compact row for CLI / CI step-summary tables."""
        return {
            "operator": self.operator,
            "subscribers": len(self.statements),
            "free_bytes": self.free_bytes,
            "charged_bytes": self.charged_bytes,
            "total_bytes": self.total_bytes,
            "amount_due": round(self.amount_due, 6),
        }


def build_invoices(
    records: Iterable["BillingRecord"],
    *,
    rates: dict[str, float] | None = None,
) -> dict[str, OperatorInvoice]:
    """Fold records into per-operator invoices (no dedup — callers that
    may see duplicated segments go through
    :func:`repro.services.billing.reconcile.reconcile` instead)."""
    rates = rates or {}
    invoices: dict[str, OperatorInvoice] = {}
    for record in records:
        invoice = invoices.get(record.operator)
        if invoice is None:
            invoice = invoices[record.operator] = OperatorInvoice(
                operator=record.operator,
                charged_rate_per_gb=rates.get(record.operator, 0.0),
            )
        invoice.add_record(record)
    return invoices
