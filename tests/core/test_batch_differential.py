"""Differential tests: the batched verification path against the scalar one.

Every property here has the same shape: build two identical verifiers
over one descriptor store, drive one with ``match`` per cookie and the
other with ``match_batch`` over the same sequence, and demand *complete*
observable equivalence — verdicts (by position), :class:`MatchStats`,
replay-cache internals (generation sets, rotation counters), and
telemetry snapshots.  Hypothesis supplies adversarial batches: replayed
uuids, timestamps straddling the 5 s NCT boundary, unknown descriptor
ids, malformed signatures, revoked and expired descriptors, all mixed.
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attributes import CookieAttributes
from repro.core.cookie import (
    SIGNATURE_BYTES,
    UUID_BYTES,
    Cookie,
    SignerCache,
    sign_cookie_fields,
)
from repro.core.descriptor import CookieDescriptor
from repro.core.distributed import NaiveVerifierPool, ShardedVerifierPool
from repro.core.matcher import (
    NETWORK_COHERENCY_TIME,
    CookieMatcher,
    ReplayCache,
    ShardedReplayCache,
)
from repro.core.store import DescriptorStore
from repro.telemetry import MetricsRegistry

NOW = 1_000.0
NCT = NETWORK_COHERENCY_TIME
N_ACTIVE = 4

#: Failure-mode mix the batch strategy draws from.  Small uuid-tag ranges
#: make within-batch replays common rather than rare.
KINDS = ("valid", "valid", "bad_sig", "stale", "unknown", "revoked", "expired")


class _Env:
    """One descriptor store with usable, revoked, and expired entries."""

    def __init__(self):
        self.store = DescriptorStore()
        self.active = [
            self.store.add(CookieDescriptor.create(service_data=f"svc-{i}"))
            for i in range(N_ACTIVE)
        ]
        self.revoked = self.store.add(
            CookieDescriptor.create(service_data="revoked")
        )
        self.revoked.revoke()
        self.expired = self.store.add(
            CookieDescriptor.create(
                service_data="expired",
                attributes=CookieAttributes(expires_at=NOW - 60.0),
            )
        )

    def unknown_id(self, seed: int) -> int:
        cookie_id = 1 + seed
        while self.store.get(cookie_id) is not None:
            cookie_id += 1
        return cookie_id


def _uuid(tag: int) -> bytes:
    return tag.to_bytes(UUID_BYTES, "big")


def _signed(descriptor, uuid: bytes, timestamp: float) -> Cookie:
    return Cookie(
        cookie_id=descriptor.cookie_id,
        uuid=uuid,
        timestamp=timestamp,
        signature=sign_cookie_fields(
            descriptor.key, descriptor.cookie_id, uuid, timestamp
        ),
    )


def _materialize(env: _Env, specs) -> list[Cookie]:
    cookies = []
    for kind, desc_index, tag, offset, skew in specs:
        uuid = _uuid(tag)
        if kind == "unknown":
            cookies.append(
                Cookie(
                    cookie_id=env.unknown_id(tag),
                    uuid=uuid,
                    timestamp=NOW,
                    signature=b"\x00" * SIGNATURE_BYTES,
                )
            )
            continue
        if kind == "revoked":
            descriptor = env.revoked
        elif kind == "expired":
            descriptor = env.expired
        else:
            descriptor = env.active[desc_index]
        timestamp = NOW + offset
        if kind == "stale":
            timestamp = NOW + math.copysign(NCT + skew, offset)
        cookie = _signed(descriptor, uuid, timestamp)
        if kind == "bad_sig":
            flipped = bytes([cookie.signature[0] ^ 0xFF])
            cookie = Cookie(
                cookie_id=cookie.cookie_id,
                uuid=uuid,
                timestamp=timestamp,
                signature=flipped + cookie.signature[1:],
            )
        cookies.append(cookie)
    return cookies


@st.composite
def batch_specs(draw, max_size=32):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(KINDS),
                st.integers(0, N_ACTIVE - 1),
                st.integers(0, 11),
                st.floats(-4.5, 4.5, allow_nan=False),
                st.floats(0.001, 30.0, allow_nan=False),
            ),
            max_size=max_size,
        )
    )


def _cache_state(cache):
    """Full observable state of a replay cache, shard-recursive."""
    if isinstance(cache, ShardedReplayCache):
        return [_cache_state(cache.shard(i)) for i in range(cache.shard_count)]
    return (
        set(cache._current),
        set(cache._previous),
        cache._generation_start,
        cache.rotations,
        cache.idle_resets,
    )


def _differential(specs, cache_factory=lambda: None, chunk: int | None = None):
    env = _Env()
    cookies = _materialize(env, specs)
    scalar = CookieMatcher(env.store, replay_cache=cache_factory())
    batched = CookieMatcher(env.store, replay_cache=cache_factory())
    scalar_verdicts = [scalar.match(cookie, NOW) for cookie in cookies]
    if chunk:
        batched_verdicts = []
        for start in range(0, len(cookies), chunk):
            batched_verdicts.extend(
                batched.match_batch(cookies[start : start + chunk], NOW)
            )
    else:
        batched_verdicts = batched.match_batch(cookies, NOW)
    return scalar, batched, scalar_verdicts, batched_verdicts


class TestMatcherDifferential:
    @settings(max_examples=60, deadline=None)
    @given(specs=batch_specs())
    def test_verdicts_equal_scalar(self, specs):
        _, _, scalar_verdicts, batched_verdicts = _differential(specs)
        # Descriptors come from one shared store, so identity comparison
        # is exact: same object accepted, or None in both paths.
        assert batched_verdicts == scalar_verdicts

    @settings(max_examples=60, deadline=None)
    @given(specs=batch_specs())
    def test_stats_equal_scalar(self, specs):
        scalar, batched, _, _ = _differential(specs)
        assert batched.stats.as_dict() == scalar.stats.as_dict()
        assert batched.stats.rejected == scalar.stats.rejected
        assert batched.stats.total == len(specs)

    @settings(max_examples=60, deadline=None)
    @given(specs=batch_specs())
    def test_replay_cache_state_equal_scalar(self, specs):
        scalar, batched, _, _ = _differential(specs)
        assert _cache_state(batched.replay_cache) == _cache_state(
            scalar.replay_cache
        )

    @settings(max_examples=40, deadline=None)
    @given(specs=batch_specs())
    def test_telemetry_snapshots_equal_scalar(self, specs):
        scalar, batched, _, _ = _differential(specs)
        scalar_registry, batched_registry = MetricsRegistry(), MetricsRegistry()
        scalar.register_telemetry(scalar_registry)
        batched.register_telemetry(batched_registry)
        scalar_snapshot = scalar_registry.snapshot()
        batched_snapshot = batched_registry.snapshot()
        assert batched_snapshot.counters == scalar_snapshot.counters
        assert batched_snapshot.gauges == scalar_snapshot.gauges

    @settings(max_examples=40, deadline=None)
    @given(specs=batch_specs(), shards=st.integers(1, 5))
    def test_sharded_replay_cache_equal_scalar(self, specs, shards):
        scalar, batched, scalar_verdicts, batched_verdicts = _differential(
            specs, cache_factory=lambda: ShardedReplayCache(shards=shards)
        )
        assert batched_verdicts == scalar_verdicts
        assert batched.stats.as_dict() == scalar.stats.as_dict()
        assert _cache_state(batched.replay_cache) == _cache_state(
            scalar.replay_cache
        )

    @settings(max_examples=40, deadline=None)
    @given(specs=batch_specs(), chunk=st.integers(1, 9))
    def test_chunked_batches_equal_scalar(self, specs, chunk):
        """Splitting one stream into arbitrary rx-burst sizes changes
        nothing: each chunk is a left-to-right pass at the same instant."""
        scalar, batched, scalar_verdicts, batched_verdicts = _differential(
            specs, chunk=chunk
        )
        assert batched_verdicts == scalar_verdicts
        assert batched.stats.as_dict() == scalar.stats.as_dict()

    @settings(max_examples=30, deadline=None)
    @given(specs=batch_specs(max_size=1))
    def test_singleton_batch_equals_match(self, specs):
        _, _, scalar_verdicts, batched_verdicts = _differential(specs)
        assert batched_verdicts == scalar_verdicts

    def test_empty_batch(self):
        env = _Env()
        matcher = CookieMatcher(env.store)
        assert matcher.match_batch([], NOW) == []
        assert matcher.stats.total == 0

    def test_duplicate_uuid_in_batch_first_wins(self):
        env = _Env()
        cookie = _signed(env.active[0], _uuid(7), NOW)
        matcher = CookieMatcher(env.store)
        verdicts = matcher.match_batch([cookie, cookie, cookie], NOW)
        assert verdicts == [env.active[0], None, None]
        assert matcher.stats.accepted == 1
        assert matcher.stats.replayed == 2

    def test_replay_detected_across_batches(self):
        env = _Env()
        cookie = _signed(env.active[0], _uuid(3), NOW)
        matcher = CookieMatcher(env.store)
        assert matcher.match_batch([cookie], NOW) == [env.active[0]]
        assert matcher.match_batch([cookie], NOW + 1.0) == [None]
        assert matcher.stats.replayed == 1

    def test_nct_boundary_bit_exact(self):
        """Timestamps exactly at ±NCT are accepted; one ulp beyond is
        stale — and the batched path agrees with scalar on every float."""
        env = _Env()
        descriptor = env.active[0]
        timestamps = [
            NOW + NCT,
            NOW - NCT,
            math.nextafter(NOW + NCT, math.inf),
            math.nextafter(NOW - NCT, -math.inf),
        ]
        cookies = [
            _signed(descriptor, _uuid(10 + i), ts)
            for i, ts in enumerate(timestamps)
        ]
        scalar = CookieMatcher(env.store)
        batched = CookieMatcher(env.store)
        scalar_verdicts = [scalar.match(c, NOW) for c in cookies]
        batched_verdicts = batched.match_batch(cookies, NOW)
        assert batched_verdicts == scalar_verdicts
        assert scalar_verdicts == [descriptor, descriptor, None, None]
        assert batched.stats.stale_timestamp == 2

    def test_failed_checks_do_not_record_uuid(self):
        """A bad-signature or stale cookie must not poison its uuid: a
        later well-formed cookie with the same uuid is still accepted —
        in both paths, even within one batch."""
        env = _Env()
        descriptor = env.active[0]
        uuid = _uuid(5)
        good = _signed(descriptor, uuid, NOW)
        bad_sig = Cookie(
            cookie_id=good.cookie_id,
            uuid=uuid,
            timestamp=good.timestamp,
            signature=bytes([good.signature[0] ^ 1]) + good.signature[1:],
        )
        stale = _signed(descriptor, uuid, NOW + NCT + 1.0)
        batch = [bad_sig, stale, good]
        scalar = CookieMatcher(env.store)
        batched = CookieMatcher(env.store)
        scalar_verdicts = [scalar.match(c, NOW) for c in batch]
        batched_verdicts = batched.match_batch(batch, NOW)
        assert batched_verdicts == scalar_verdicts == [None, None, descriptor]
        assert batched.stats.as_dict() == scalar.stats.as_dict()

    def test_unknown_revoked_expired_memoized_counts(self):
        """The per-batch descriptor memo must still count every cookie."""
        env = _Env()
        batch = (
            _materialize(env, [("unknown", 0, i, 0.0, 1.0) for i in range(3)])
            + _materialize(env, [("revoked", 0, i, 0.0, 1.0) for i in range(4)])
            + _materialize(env, [("expired", 0, i, 0.0, 1.0) for i in range(5)])
        )
        matcher = CookieMatcher(env.store)
        assert matcher.match_batch(batch, NOW) == [None] * 12
        assert matcher.stats.unknown_id == 3
        assert matcher.stats.revoked == 4
        assert matcher.stats.expired == 5


class TestSignerCache:
    @settings(max_examples=60, deadline=None)
    @given(
        key=st.binary(min_size=1, max_size=64),
        cookie_id=st.integers(0, 2**64 - 1),
        tag=st.integers(0, 2**32 - 1),
        timestamp=st.floats(
            0.0, 2**31, allow_nan=False, allow_infinity=False
        ),
    )
    def test_digest_matches_sign_cookie_fields(
        self, key, cookie_id, tag, timestamp
    ):
        cache = SignerCache()
        uuid = _uuid(tag)
        expected = sign_cookie_fields(key, cookie_id, uuid, timestamp)
        assert cache.sign(key, cookie_id, uuid, timestamp) == expected
        # Second call serves from the pre-keyed context: same digest.
        assert cache.sign(key, cookie_id, uuid, timestamp) == expected

    def test_eviction_preserves_correctness(self):
        cache = SignerCache(max_keys=2)
        keys = [bytes([i]) * 32 for i in range(5)]
        for key in keys + keys:
            assert cache.sign(key, 1, _uuid(1), NOW) == sign_cookie_fields(
                key, 1, _uuid(1), NOW
            )


class TestShardedReplayCache:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.0, 4.0, allow_nan=False)),
            max_size=40,
        ),
        shards=st.integers(1, 6),
    )
    def test_matches_standalone_caches_per_shard(self, ops, shards):
        """A sharded cache is observationally N unsharded caches: replay
        the same op sequence against both and compare every answer and
        every internal counter, per shard."""
        sharded = ShardedReplayCache(shards=shards)
        standalone = [ReplayCache() for _ in range(shards)]
        now = 0.0
        for tag, advance in ops:
            now += advance
            uuid = _uuid(tag)
            index = sharded.shard_for(uuid)
            assert sharded.check_and_record(uuid, now) == standalone[
                index
            ].check_and_record(uuid, now)
        for index in range(shards):
            assert _cache_state(sharded.shard(index)) == _cache_state(
                standalone[index]
            )
        assert sharded.size == sum(c.size for c in standalone)
        assert sharded.rotations == sum(c.rotations for c in standalone)
        assert sharded.idle_resets == sum(c.idle_resets for c in standalone)

    @settings(max_examples=60, deadline=None)
    @given(tag=st.integers(0, 2**64 - 1), shards=st.integers(1, 8))
    def test_shard_for_stable_and_in_range(self, tag, shards):
        cache = ShardedReplayCache(shards=shards)
        uuid = _uuid(tag)
        index = cache.shard_for(uuid)
        assert 0 <= index < shards
        assert cache.shard_for(uuid) == index

    def test_single_shard_equals_unsharded(self):
        sharded = ShardedReplayCache(shards=1)
        plain = ReplayCache()
        sequence = [(_uuid(1), 0.0), (_uuid(2), 3.0), (_uuid(1), 6.0),
                    (_uuid(1), 9.0), (_uuid(3), 30.0), (_uuid(3), 30.5)]
        for uuid, now in sequence:
            assert sharded.check_and_record(uuid, now) == plain.check_and_record(
                uuid, now
            )
        assert _cache_state(sharded.shard(0)) == _cache_state(plain)

    def test_replay_across_shard_rotation_regression(self):
        """Regression (the satellite's scenario): a uuid recorded before
        its shard rotates must still be caught afterwards — the rotation
        moves it to the shard's previous generation, not out of memory —
        and must be forgotten after two full windows, exactly like the
        unsharded cache."""
        window = NETWORK_COHERENCY_TIME
        sharded = ShardedReplayCache(shards=4)
        plain = ReplayCache()
        uuid = _uuid(42)
        index = sharded.shard_for(uuid)

        for cache in (sharded, plain):
            assert not cache.check_and_record(uuid, 0.0)
        # Drive the shard across its generation boundary with *other*
        # traffic that lands on the same shard (rotation is lazy).
        same_shard_tag = next(
            tag
            for tag in range(1000)
            if tag != 42 and sharded.shard_for(_uuid(tag)) == index
        )
        filler_time = window + 0.5
        assert not sharded.check_and_record(_uuid(same_shard_tag), filler_time)
        assert not plain.check_and_record(_uuid(same_shard_tag), filler_time)
        assert sharded.shard(index).rotations == 1

        # Replayed one rotation later: still within coverage, caught.
        assert sharded.check_and_record(uuid, window + 1.0)
        assert plain.check_and_record(uuid, window + 1.0)
        # Two full windows after the record: both caches have forgotten.
        late = 2 * window + 1.0
        assert not sharded.seen_before(uuid, late)
        assert not ReplayCache().seen_before(uuid, late)

    def test_rotation_is_per_shard(self):
        """Traffic that only touches one shard must not rotate others."""
        cache = ShardedReplayCache(shards=4)
        uuid = _uuid(0)
        index = cache.shard_for(uuid)
        cache.record(uuid, 0.0)
        cache.record(uuid, NETWORK_COHERENCY_TIME + 1.0)
        assert cache.shard(index).rotations == 1
        for other in range(cache.shard_count):
            if other != index:
                assert cache.shard(other).rotations == 0
        assert cache.rotations == 1

    def test_rejects_zero_shards(self):
        try:
            ShardedReplayCache(shards=0)
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError for zero shards")


class TestVerifierPoolBatch:
    @settings(max_examples=40, deadline=None)
    @given(specs=batch_specs(), shards=st.integers(1, 5))
    def test_sharded_pool_batch_equals_scalar(self, specs, shards):
        env = _Env()
        cookies = _materialize(env, specs)
        scalar_pool = ShardedVerifierPool(env.store, shards=shards)
        batched_pool = ShardedVerifierPool(env.store, shards=shards)
        scalar_verdicts = [scalar_pool.match(c, NOW) for c in cookies]
        batched_verdicts = batched_pool.match_batch(cookies, NOW)
        assert batched_verdicts == scalar_verdicts
        assert (batched_pool.stats.accepted, batched_pool.stats.rejected) == (
            scalar_pool.stats.accepted,
            scalar_pool.stats.rejected,
        )
        # Per-shard matcher stats agree too: affinity routed the same
        # cookies to the same shards in both modes.
        for scalar_shard, batched_shard in zip(
            scalar_pool.shards, batched_pool.shards
        ):
            assert (
                batched_shard.stats.as_dict() == scalar_shard.stats.as_dict()
            )

    @settings(max_examples=30, deadline=None)
    @given(specs=batch_specs(max_size=16), shards=st.integers(2, 4))
    def test_naive_pool_batch_equals_scalar_loop(self, specs, shards):
        """The base-class default must match a per-cookie loop exactly,
        including the round-robin cursor's progression."""
        env = _Env()
        cookies = _materialize(env, specs)
        loop_pool = NaiveVerifierPool(env.store, shards=shards)
        batch_pool = NaiveVerifierPool(env.store, shards=shards)
        loop_verdicts = [loop_pool.match(c, NOW) for c in cookies]
        batch_verdicts = batch_pool.match_batch(cookies, NOW)
        assert batch_verdicts == loop_verdicts
        assert batch_pool._cursor == loop_pool._cursor

    def test_sharded_pool_memo_matches_shard_for(self):
        env = _Env()
        pool = ShardedVerifierPool(env.store, shards=3)
        cookies = [
            _signed(descriptor, _uuid(i), NOW)
            for i, descriptor in enumerate(env.active)
        ]
        pool.match_batch(cookies, NOW)
        for cookie in cookies:
            assert pool._shard_memo[cookie.cookie_id] == pool.shard_for(cookie)

    def test_sharded_pool_no_double_spend_in_batch(self):
        """One cookie presented many times in one batch is granted once,
        regardless of batch boundaries."""
        env = _Env()
        pool = ShardedVerifierPool(env.store, shards=4)
        cookie = _signed(env.active[1], _uuid(9), NOW)
        verdicts = pool.match_batch([cookie] * 6, NOW)
        assert verdicts[0] is env.active[1]
        assert verdicts[1:] == [None] * 5
        assert pool.match_batch([cookie], NOW) == [None]
        assert pool.stats.accepted == 1

    def test_pool_empty_batch(self):
        env = _Env()
        pool = ShardedVerifierPool(env.store, shards=2)
        assert pool.match_batch([], NOW) == []
        assert pool.stats.accepted == pool.stats.rejected == 0
