"""Stateless (packet-based) zero-rating (§4.6).

"Transport protocols that guarantee a cookie is contained within a single
packet (e.g., IPv6 extension header, QUIC) ... In the extreme, if every
packet carries a cookie, flow-related state is eliminated (in the expense
of bandwidth overhead and higher matching rates)."

:class:`StatelessZeroRater` is that extreme: no flow table at all.  Every
packet is judged on its own cookie — present and valid means free, else
charged — so a box can restart (or a flow can migrate between boxes)
without losing accounting state.  Use packet-granularity descriptors and
a single-packet carrier (IPv6 extension header or the UDP shim).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ...core.matcher import CookieMatcher
from ...core.transport import TransportRegistry, default_registry
from ...netsim.middlebox import Element
from ...netsim.packet import Packet
from .middlebox import SubscriberCounters

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ...services.billing import BillingAccountant

__all__ = ["StatelessZeroRater"]


class StatelessZeroRater(Element):
    """Per-packet zero-rating with zero flow state.

    Keeps only the per-subscriber counters (which a real box persists
    anyway for billing); everything else is recomputed per packet.
    """

    def __init__(
        self,
        matcher: CookieMatcher,
        clock: Callable[[], float],
        registry: TransportRegistry | None = None,
        is_subscriber: Callable[[str], bool] | None = None,
        billing: "BillingAccountant | None" = None,
        telemetry=None,
        telemetry_prefix: str = "stateless",
        name: str = "zero-rating-stateless",
    ) -> None:
        super().__init__(name)
        self.matcher = matcher
        self.clock = clock
        self.registry = registry or default_registry()
        self.is_subscriber = is_subscriber or (
            lambda ip: ip.startswith("10.") or ip.startswith("192.168.")
        )
        #: Same contract as :class:`ZeroRatingMiddlebox`'s ``billing``:
        #: the cookie establishes the app, the subscriber's operator
        #: catalog decides freeness, and the accountant journals the
        #: delta.  Because every packet is judged alone, the stateless
        #: and stateful paths produce identical billing decisions for
        #: the same bytes (pinned by the parity property test).
        self.billing = billing
        self.counters: dict[str, SubscriberCounters] = {}
        self.packets_processed = 0
        self.cookie_hits = 0
        self.cookie_misses = 0
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    def handle(self, packet: Packet) -> None:
        self.packets_processed += 1
        ip = packet.ip
        if ip is None:
            self.emit(packet)
            return
        now = self.clock()
        cookied = False
        service = None
        found = self.registry.extract(packet)
        if found is not None:
            # Meta parity with the stateful box: a consumed (verified)
            # cookie is marked so downstream taps — the chaos attacker,
            # the neutrality auditor — see the same annotations on both
            # implementations.
            packet.meta["cookie_checked"] = True
            descriptor = self.matcher.match(found[0], now)
            if descriptor is not None:
                cookied = True
                service = descriptor.service_data
                self.cookie_hits += 1
            else:
                self.cookie_misses += 1
        subscriber = self._subscriber_of(ip.src, ip.dst)
        if self.billing is not None:
            remote = ip.dst if subscriber == ip.src else ip.src
            free = self.billing.account(
                subscriber,
                service if cookied else None,
                remote,
                packet.wire_length,
                cookied=cookied,
                now=now,
            )
        else:
            free = cookied
        if free:
            packet.meta["zero_rated"] = True
        counters = self.counters.get(subscriber)
        if counters is None:
            counters = SubscriberCounters()
            self.counters[subscriber] = counters
        if free:
            counters.free_bytes += packet.wire_length
        else:
            counters.charged_bytes += packet.wire_length
        self.emit(packet)

    def _subscriber_of(self, src: str, dst: str) -> str:
        if self.is_subscriber(src):
            return src
        if self.is_subscriber(dst):
            return dst
        return src

    def counters_for(self, subscriber_ip: str) -> SubscriberCounters:
        return self.counters.get(subscriber_ip, SubscriberCounters())

    @property
    def tracked_flows(self) -> int:
        """Always zero — the whole point."""
        return 0

    def register_telemetry(self, registry, prefix: str = "stateless") -> None:
        """Export the per-packet counters into a
        :class:`~repro.telemetry.MetricsRegistry` (same collector shape
        as :meth:`ZeroRatingMiddlebox.register_telemetry`; idempotent)."""
        from ...telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            free = sum(c.free_bytes for c in self.counters.values())
            charged = sum(c.charged_bytes for c in self.counters.values())
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.packets_processed": self.packets_processed,
                    f"{prefix}.cookie_hits": self.cookie_hits,
                    f"{prefix}.cookie_misses": self.cookie_misses,
                    f"{prefix}.free_bytes": free,
                    f"{prefix}.charged_bytes": charged,
                },
                gauges={
                    f"{prefix}.tracked_subscribers": len(self.counters),
                },
            )

        registry.register_collector(prefix, collect)
