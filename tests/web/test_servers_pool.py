"""Shared server pool sanity: the co-hosting substrate must be coherent."""

from repro.web import servers as S
from repro.web.sites import site_catalog


def _all_farms():
    return {
        "cnn": S.CNN_SERVERS,
        "skai": S.SKAI_SERVERS,
        "youtube": S.YOUTUBE_SERVERS,
        "facebook": S.FACEBOOK_SERVERS,
        "twitter": S.TWITTER_SERVERS,
        "akamai": S.AKAMAI_SERVERS,
        "cloudfront": S.CLOUDFRONT_SERVERS,
        "fastly": S.FASTLY_SERVERS,
        "googlevideo": S.GOOGLEVIDEO_SERVERS,
        "ytimg": S.YTIMG_SERVERS,
        "google": S.GOOGLE_SERVERS,
        "doubleclick": S.DOUBLECLICK_SERVERS,
        "trackers": S.TRACKER_SERVERS,
        "misc_ads": S.MISC_AD_SERVERS,
        "prefetch": S.PREFETCH_SERVERS,
    }


class TestServerPool:
    def test_ips_globally_unique(self):
        """Two different servers must never share an IP — co-hosting is
        modelled by *reusing the same object*, not by IP collisions."""
        ips = [s.ip for farm in _all_farms().values() for s in farm] + [
            S.RESOLVER.ip
        ]
        assert len(ips) == len(set(ips))

    def test_hostnames_globally_unique(self):
        names = [s.hostname for farm in _all_farms().values() for s in farm]
        assert len(names) == len(set(names))

    def test_cdn_flags(self):
        assert all(s.is_cdn for s in S.AKAMAI_SERVERS)
        assert not any(s.is_cdn for s in S.CNN_SERVERS)

    def test_operator_labels_consistent_per_farm(self):
        for farm in _all_farms().values():
            assert len({s.operator for s in farm}) == 1

    def test_catalog_site_objects_share_server_identity(self):
        """The overlap between pages is by object identity — the property
        the OOB false positives depend on."""
        catalog = site_catalog()
        cnn_servers = {
            id(f.server) for f in catalog["cnn.com"].web_flows
            if f.server.operator == "akamai"
        }
        fb_servers = {
            id(f.server) for f in catalog["facebook.com"].web_flows
            if f.server.operator == "akamai"
        }
        assert cnn_servers & fb_servers

    def test_googlevideo_attributed_to_youtube_operator(self):
        """The embed false-positive mechanism requires googlevideo's
        operator label to be youtube."""
        assert all(s.operator == "youtube" for s in S.GOOGLEVIDEO_SERVERS)
