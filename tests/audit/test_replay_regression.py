"""Replay regression satellite: a spent cookie replayed *inside* the
2xNCT acceptance window must be classified ``replayed`` — never free.

The dangerous variant is the future-skewed mint: a cookie stamped at
``t + 0.98 x NCT``, spent immediately, then replayed ~1.5 NCT later is
still timestamp-fresh at replay time, so only the replay cache stands
between it and a free ride.  This pins the harness's probe catalog and
the honest stack's behaviour against regressions.
"""

from repro.audit import PERSONAS, AuditConfig, NeutralityAuditor

FAST = AuditConfig(trials=8)


def _honest_verdict(element="stateful"):
    return NeutralityAuditor(FAST).audit_zero_rating(None, element=element)


def test_replay_probes_exist_in_every_trial():
    verdict = _honest_verdict()
    for trial in verdict.outcomes:
        assert "replayed" in trial
        assert "replayed_skewed" in trial


def test_reference_oracle_classifies_replays_as_replayed():
    verdict = _honest_verdict()
    for probe in ("replayed", "replayed_skewed"):
        records = [r for r in verdict.verifications if r.probe == probe]
        assert records, f"no verification attempts recorded for {probe}"
        assert all(r.reference_reason == "replayed" for r in records), [
            (r.probe, r.reference_reason) for r in records
        ]
        # The honest operator agrees with the oracle and rejects.
        assert not any(r.operator_accepted for r in records)


def test_replayed_flows_never_ride_free():
    for element in ("stateful", "stateless"):
        verdict = _honest_verdict(element)
        assert verdict.dimensions["replay"].violations == []
        for trial in verdict.outcomes:
            for probe in ("replayed", "replayed_skewed"):
                outcome = trial[probe]
                assert outcome.billed_free == 0
                assert outcome.free_marked_bytes == 0
                assert outcome.billed_charged > 0


def test_replay_honoring_operator_is_caught_by_the_same_probes():
    persona = PERSONAS["replay-honorer"]()
    verdict = NeutralityAuditor(FAST).audit_zero_rating(persona, element="stateful")
    replay = verdict.dimensions["replay"]
    assert not replay.ok
    assert replay.violations
    # The oracle still says "replayed"; only the operator's acceptance
    # flips — exactly the record/replay differential the audit is for.
    records = [r for r in verdict.verifications if r.probe == "replayed"]
    assert records
    assert all(r.reference_reason == "replayed" for r in records)
    assert any(r.operator_accepted for r in records)
