"""Live TCP cookie server tests: real sockets, JSON-lines protocol."""

import asyncio
import json

import pytest

from repro.core import (
    CookieDescriptor,
    CookieServer,
    ServiceOffering,
)
from repro.core.netserver import AsyncCookieServer, CookieClient


def _make_server():
    server = CookieServer(clock=lambda: 0.0)
    server.offer(ServiceOffering(name="Boost", description="fast lane"))
    return server


def _run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_list_services_over_tcp(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                response = await client.request({"op": "list_services"})
            finally:
                await client.close()
                await tcp.stop()
            return response

        response = _run(scenario())
        assert response["ok"]
        assert response["services"][0]["name"] == "Boost"

    def test_acquire_yields_usable_descriptor(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                response = await client.request(
                    {"op": "acquire", "user": "alice", "service": "Boost"}
                )
            finally:
                await client.close()
                await tcp.stop()
            return response

        response = _run(scenario())
        descriptor = CookieDescriptor.from_json(response["descriptor"])
        assert descriptor.service_data == "Boost"

    def test_multiple_requests_one_connection(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                first = await client.request({"op": "list_services"})
                second = await client.request(
                    {"op": "acquire", "user": "alice", "service": "Boost"}
                )
            finally:
                await client.close()
                await tcp.stop()
            return first, second

        first, second = _run(scenario())
        assert first["ok"] and second["ok"]

    def test_malformed_json_answered_with_error(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await tcp.stop()
            return json.loads(line)

        response = _run(scenario())
        assert not response["ok"]
        assert "bad request" in response["error"]

    def test_non_object_request_rejected(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"[1, 2, 3]\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await tcp.stop()
            return json.loads(line)

        assert not _run(scenario())["ok"]

    def test_concurrent_clients(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()

            async def one_client(user):
                client = CookieClient(host, port)
                try:
                    return await client.request(
                        {"op": "acquire", "user": user, "service": "Boost"}
                    )
                finally:
                    await client.close()

            responses = await asyncio.gather(
                *(one_client(f"user{i}") for i in range(5))
            )
            await tcp.stop()
            return responses

        responses = _run(scenario())
        assert all(r["ok"] for r in responses)
        ids = {r["descriptor"]["cookie_id"] for r in responses}
        assert len(ids) == 5

    def test_server_closed_connection_raises(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server())
            host, port = await tcp.start()
            client = CookieClient(host, port)
            await client.connect()
            await tcp.stop()
            with pytest.raises((ConnectionError, OSError)):
                await client.request({"op": "list_services"})
            await client.close()

        _run(scenario())


class TestAbuseGuards:
    """The JsonLineServer caps (PR 8): connection shedding + body cap."""

    def test_connection_cap_sheds_structured(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server(), max_connections=1)
            host, port = await tcp.start()
            first = CookieClient(host, port)
            try:
                # Occupy the only slot…
                await first.request({"op": "list_services"})
                # …then the next connection is shed, not hung.
                reader, writer = await asyncio.open_connection(host, port)
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                shed = json.loads(line)
                trailer = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
            finally:
                await first.close()
                await tcp.stop()
            return shed, trailer, tcp.connections_shed

        shed, trailer, shed_count = _run(scenario())
        assert shed == {
            "ok": False,
            "shed": True,
            "error": "server at connection capacity (1)",
        }
        assert trailer == b""  # server closed after shedding
        assert shed_count == 1

    def test_slot_freed_after_client_disconnects(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server(), max_connections=1)
            host, port = await tcp.start()
            try:
                first = CookieClient(host, port)
                await first.request({"op": "list_services"})
                await first.close()
                await asyncio.sleep(0)  # let the server reap the writer
                second = CookieClient(host, port)
                response = await second.request({"op": "list_services"})
                await second.close()
            finally:
                await tcp.stop()
            return response

        assert _run(scenario())["ok"]

    def test_oversize_request_shed_and_connection_closed(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server(), max_request_bytes=128)
            host, port = await tcp.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # A newline-less trickle larger than the body cap: the
                # reader's buffer limit trips before any newline shows up.
                writer.write(b"x" * 4096)
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                shed = json.loads(line)
                trailer = await asyncio.wait_for(reader.read(), timeout=5.0)
            finally:
                writer.close()
                await writer.wait_closed()
                await tcp.stop()
            return shed, trailer, tcp.oversize_requests

        shed, trailer, oversize = _run(scenario())
        assert shed["shed"] and not shed["ok"]
        assert "128 bytes" in shed["error"]
        assert trailer == b""  # framing lost, server closed
        assert oversize == 1

    def test_request_under_cap_still_served(self):
        async def scenario():
            tcp = AsyncCookieServer(_make_server(), max_request_bytes=256)
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                return await client.request({"op": "list_services"})
            finally:
                await client.close()
                await tcp.stop()

        assert _run(scenario())["ok"]
