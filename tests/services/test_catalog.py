"""Multi-operator zero-rating catalogs (tentpole, PROTOCOL.md §16.1).

Covers the EU-study semantics — per-operator app lists, partial
origin/CDN/third-party coverage, caps with fallback-to-charged, roaming
suspension, versioned mid-flight updates — and the property the whole
billing pipeline hangs off: invoices reconciled from the journal equal
the tariff an oracle computes straight from the catalog, under
hypothesis-driven churn, eviction, and flush interleavings, at the
pinned seed 20160822.  The stateful and stateless data paths must agree
byte-for-byte when fed identical per-packet-cookie streams.
"""

import shutil
import tempfile

import hypothesis.strategies as st
import pytest
from hypothesis import given, seed, settings

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    DescriptorStore,
)
from repro.core.transport import default_registry
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.billing import (
    BillingAccountant,
    BillingJournal,
    reconcile_directories,
)
from repro.services.zerorate import (
    COVERABLE_CLASSES,
    ROAMING_ZERO_RATE,
    UNASSIGNED_OPERATOR,
    AppCoverage,
    CatalogSet,
    OperatorCatalog,
    StatelessZeroRater,
    ZeroRatingMiddlebox,
)
from repro.web.sites import build_cnn

PINNED_SEED = 20160822

ORIGIN = "203.0.113.10"
CDN = "203.0.113.20"
TRACKER = "203.0.113.30"

APP = "news-app"
COVERAGE = AppCoverage(
    app=APP,
    origin_ips=frozenset({ORIGIN}),
    cdn_ips=frozenset({CDN}),
    origin_covered=True,
    cdn_covered=False,
)


def _catalog(**changes):
    base = dict(operator="op-x", apps=(COVERAGE,))
    base.update(changes)
    return OperatorCatalog(**base)


# ----------------------------------------------------------------------
# Decision precedence
# ----------------------------------------------------------------------
def test_precedence_uncookied_unlisted_uncovered():
    catalog = _catalog()
    args = dict(roaming=False, cap_used=0)
    assert catalog.decide(APP, ORIGIN, 100, cookied=False, **args).byte_class \
        == "uncookied"
    assert catalog.decide(None, ORIGIN, 100, cookied=True, **args).byte_class \
        == "uncookied"
    assert catalog.decide("other-app", ORIGIN, 100, cookied=True,
                          **args).byte_class == "unlisted"
    # Covered origin rides free; uncovered CDN and third parties bill
    # under their own class (the partial-coverage reality).
    origin = catalog.decide(APP, ORIGIN, 100, cookied=True, **args)
    assert origin.free and origin.byte_class == "origin"
    cdn = catalog.decide(APP, CDN, 100, cookied=True, **args)
    assert not cdn.free and cdn.byte_class == "cdn"
    tracker = catalog.decide(APP, TRACKER, 100, cookied=True, **args)
    assert not tracker.free and tracker.byte_class == "third_party"


def test_cdn_coverage_is_per_operator():
    generous = _catalog(operator="op-y", apps=(AppCoverage(
        app=APP, origin_ips=frozenset({ORIGIN}), cdn_ips=frozenset({CDN}),
        cdn_covered=True,
    ),))
    decision = generous.decide(APP, CDN, 100, cookied=True, roaming=False,
                               cap_used=0)
    assert decision.free and decision.byte_class == "cdn"


def test_roaming_policies():
    suspend = _catalog()
    assert not suspend.decide(APP, ORIGIN, 100, cookied=True, roaming=True,
                              cap_used=0).free
    assert suspend.decide(APP, ORIGIN, 100, cookied=True, roaming=True,
                          cap_used=0).byte_class == "roaming"
    keep = _catalog(roaming_policy=ROAMING_ZERO_RATE)
    assert keep.decide(APP, ORIGIN, 100, cookied=True, roaming=True,
                       cap_used=0).free


def test_cap_fallback_to_charged():
    capped = _catalog(cap_bytes=1000)
    assert capped.decide(APP, ORIGIN, 1000, cookied=True, roaming=False,
                         cap_used=0).free
    over = capped.decide(APP, ORIGIN, 1, cookied=True, roaming=False,
                         cap_used=1000)
    assert not over.free and over.byte_class == "cap_exhausted"
    # The cap gates on what THIS packet would push usage to.
    edge = capped.decide(APP, ORIGIN, 600, cookied=True, roaming=False,
                         cap_used=600)
    assert not edge.free


def test_versioned_update_and_validation():
    catalog = _catalog(cap_bytes=1000)
    updated = catalog.with_update(cap_bytes=2000)
    assert updated.version == catalog.version + 1
    assert updated.cap_bytes == 2000
    with pytest.raises(ValueError):
        OperatorCatalog(operator="")
    with pytest.raises(ValueError):
        OperatorCatalog(operator="x", apps=(COVERAGE, COVERAGE))
    with pytest.raises(ValueError):
        OperatorCatalog(operator="x", roaming_policy="whatever")


def test_from_page_partitions_cnn():
    page = build_cnn(seed=1)
    coverage = AppCoverage.from_page(page, cdn_covered=True)
    assert coverage.app == page.domain
    assert coverage.origin_ips and coverage.cdn_ips
    assert not (coverage.origin_ips & coverage.cdn_ips)
    # Ad/tracker servers in the page model are neither tranche.
    tranched = coverage.origin_ips | coverage.cdn_ips
    all_ips = {flow.server.ip for flow in page.flows}
    assert all_ips - tranched, "page model should have third parties"


# ----------------------------------------------------------------------
# CatalogSet: N operators concurrently
# ----------------------------------------------------------------------
def test_catalogset_routes_and_unassigned_charges():
    catalogs = CatalogSet([
        _catalog(operator="op-1"),
        _catalog(operator="op-2", cap_bytes=500),
        _catalog(operator="op-3", apps=()),
    ])
    catalogs.assign("10.1.0.2", "op-1")
    catalogs.assign("10.2.0.2", "op-2")
    catalogs.assign("10.3.0.2", "op-3")
    kwargs = dict(cookied=True, cap_used=0)
    # Same bytes, three different verdicts — concurrently.
    assert catalogs.decide("10.1.0.2", APP, ORIGIN, 600, **kwargs).free
    assert not catalogs.decide(
        "10.2.0.2", APP, ORIGIN, 600, **kwargs
    ).free  # cap 500 < 600
    assert catalogs.decide(
        "10.3.0.2", APP, ORIGIN, 600, **kwargs
    ).byte_class == "unlisted"
    # No catalog claims this subscriber: charged, no exceptions.
    stray = catalogs.decide("10.9.9.9", APP, ORIGIN, 600, **kwargs)
    assert stray.operator == UNASSIGNED_OPERATOR and not stray.free
    with pytest.raises(ValueError):
        catalogs.assign("10.1.0.2", "nope")
    with pytest.raises(ValueError):
        catalogs.update_catalog(_catalog(operator="nope"))
    with pytest.raises(ValueError):
        CatalogSet([_catalog(operator="dup"), _catalog(operator="dup")])


def test_midflight_update_changes_decisions():
    catalogs = CatalogSet([_catalog(operator="op-1", cap_bytes=100)])
    catalogs.assign("10.1.0.2", "op-1")
    assert not catalogs.decide("10.1.0.2", APP, ORIGIN, 500, cookied=True,
                               cap_used=0).free
    catalogs.update_catalog(
        catalogs.catalogs["op-1"].with_update(cap_bytes=1000)
    )
    assert catalogs.decide("10.1.0.2", APP, ORIGIN, 500, cookied=True,
                           cap_used=0).free
    assert catalogs.catalog_updates == 1


# ----------------------------------------------------------------------
# Property: invoices == tariff semantics under churn + eviction
# ----------------------------------------------------------------------
SERVERS = (ORIGIN, CDN, TRACKER)
SUBSCRIBERS = ("10.7.0.2", "10.7.1.2", "10.7.2.2", "10.7.3.2")

packet_st = st.tuples(
    st.integers(0, len(SUBSCRIBERS) - 1),   # subscriber
    st.integers(0, len(SERVERS) - 1),       # server
    st.booleans(),                          # cookied
    st.integers(1, 2000),                   # bytes
    st.integers(0, 9),                      # 0 => flush this subscriber now
)


@seed(PINNED_SEED)
@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    stream=st.lists(packet_st, min_size=1, max_size=120),
    cap=st.one_of(st.none(), st.integers(0, 6000)),
    update_at=st.integers(0, 120),
)
def test_invoices_equal_tariff_under_churn(stream, cap, update_at):
    """Whatever the interleaving of packets, mid-stream flushes, a
    mid-stream cap update, and a duplicate-directory replay, the
    reconciled invoices equal an oracle applying the catalog tariff
    packet-by-packet."""
    catalogs = CatalogSet([
        _catalog(operator="op-1", cap_bytes=cap),
        _catalog(operator="op-2"),
    ])
    for index, subscriber in enumerate(SUBSCRIBERS):
        catalogs.assign(subscriber, "op-1" if index % 2 == 0 else "op-2")
    catalogs.set_roaming(SUBSCRIBERS[3])
    journal_dir = tempfile.mkdtemp(prefix="repro-catalog-prop-")
    try:
        accountant = BillingAccountant(
            catalogs, BillingJournal(journal_dir, fsync="never")
        )
        # Oracle state: the tariff applied longhand, outside the unit
        # under test (no journal, no pending buffers).
        oracle_cap: dict[tuple, int] = {}
        oracle: dict[tuple, int] = {}
        new_cap = None if cap is None else cap * 2
        for index, (sub_i, srv_i, cookied, nbytes, flush) in enumerate(stream):
            if index == update_at:
                catalogs.update_catalog(
                    catalogs.catalogs["op-1"].with_update(cap_bytes=new_cap)
                )
            subscriber = SUBSCRIBERS[sub_i]
            server = SERVERS[srv_i]
            operator = catalogs.operator_of(subscriber)
            expected = catalogs.decide(
                subscriber, APP if cookied else None, server, nbytes,
                cookied=cookied,
                cap_used=oracle_cap.get((operator, subscriber), 0),
            )
            got = accountant.account(
                subscriber, APP if cookied else None, server, nbytes,
                cookied=cookied,
            )
            assert got == expected.free
            if expected.free:
                oracle_cap[(operator, subscriber)] = (
                    oracle_cap.get((operator, subscriber), 0) + nbytes
                )
            key = (expected.operator, subscriber, expected.app,
                   expected.byte_class, expected.free)
            oracle[key] = oracle.get(key, 0) + nbytes
            if flush == 0:
                # Simulates the eviction-driven flush: durable early,
                # exactly-once regardless.
                accountant.flush_subscriber(subscriber)
        accountant.flush_all()
        accountant.journal.close()
        # Replaying the directory twice must change nothing.
        report = reconcile_directories([journal_dir, journal_dir])
        assert not report.tariff_violations
        invoiced: dict[tuple, int] = {}
        for operator, invoice in report.invoices.items():
            for subscriber, statement in invoice.statements.items():
                for line in statement.sorted_lines():
                    key = (operator, subscriber, line.app, line.byte_class,
                           line.free)
                    invoiced[key] = invoiced.get(key, 0) + line.nbytes
        assert invoiced == oracle
        # Tariff invariant straight off the invoice: free bytes only
        # ever ride coverable classes.
        for key, nbytes in invoiced.items():
            if key[4]:
                assert key[3] in COVERABLE_CLASSES
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Stateful == stateless parity on identical per-packet-cookie streams
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _billing_stack(journal_dir, cap):
    catalogs = CatalogSet([
        OperatorCatalog(
            operator="op-par",
            apps=(AppCoverage(
                app="zero-rate", origin_ips=frozenset({ORIGIN}),
                cdn_ips=frozenset({CDN}),
            ),),
            cap_bytes=cap,
        ),
    ])
    for subscriber in SUBSCRIBERS:
        catalogs.assign(subscriber, "op-par")
    return BillingAccountant(
        catalogs, BillingJournal(journal_dir, fsync="never")
    )


@seed(PINNED_SEED)
@settings(max_examples=15, deadline=None, derandomize=True)
@given(
    flows=st.lists(
        st.tuples(
            st.integers(0, len(SUBSCRIBERS) - 1),
            st.integers(0, len(SERVERS) - 1),
            st.booleans(),                      # carry a cookie at all
            st.integers(1, 6),                  # packets in the flow
        ),
        min_size=1,
        max_size=24,
    ),
    cap=st.one_of(st.none(), st.integers(0, 40_000)),
)
def test_stateful_stateless_billing_parity(flows, cap):
    """Fed byte-identical streams (a cookie on EVERY packet — the
    paper's stateless-extreme overhead), the flow-table middlebox and
    the per-packet rater produce identical invoices, even with the
    stateful side under eviction pressure."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    clock = _Clock()
    transports = default_registry()
    dirs = {
        "stateful": tempfile.mkdtemp(prefix="repro-parity-sf-"),
        "stateless": tempfile.mkdtemp(prefix="repro-parity-sl-"),
    }
    try:
        stateful_billing = _billing_stack(dirs["stateful"], cap)
        stateless_billing = _billing_stack(dirs["stateless"], cap)
        stateful = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock,
            max_subscribers=2,  # force churn through the LRU
            billing=stateful_billing,
        )
        stateless = StatelessZeroRater(
            CookieMatcher(store), clock=clock, billing=stateless_billing,
        )
        stateful >> Sink()
        stateless >> Sink()
        for flow_index, (sub_i, srv_i, cookied, count) in enumerate(flows):
            subscriber = SUBSCRIBERS[sub_i]
            server = SERVERS[srv_i]
            for packet_index in range(count):
                clock.now += 0.01
                pair = []
                for _ in range(2):
                    packet = make_tcp_packet(
                        subscriber, 40_000 + flow_index, server, 443,
                        payload_size=400,
                    )
                    pair.append(packet)
                if cookied:
                    # One generated cookie, attached to both copies:
                    # the streams stay byte-identical.
                    cookie = CookieGenerator(descriptor, clock).generate()
                    for packet in pair:
                        transports.attach(packet, cookie)
                assert pair[0].wire_length == pair[1].wire_length
                stateful.push(pair[0])
                stateless.push(pair[1])
        stateful_billing.flush_all()
        stateful_billing.journal.close()
        stateless_billing.flush_all()
        stateless_billing.journal.close()
        left = reconcile_directories([dirs["stateful"]])
        right = reconcile_directories([dirs["stateless"]])
        assert left.invoices.keys() == right.invoices.keys()
        for operator in left.invoices:
            assert (left.invoices[operator].to_json()
                    == right.invoices[operator].to_json())
        # And the data-plane counters mirror the invoices on both paths.
        invoice = left.invoices.get("op-par")
        if invoice is not None:
            free = sum(
                counters.free_bytes
                for counters in stateless.counters.values()
            )
            assert free == invoice.free_bytes
    finally:
        for path in dirs.values():
            shutil.rmtree(path, ignore_errors=True)
