"""The zero-rating middlebox (§4.6).

"Our middle-box keeps two counters per IP address (one for free and
another for charged data), and enforces the service in software for both
directions of a flow."  For each packet it does one of three things:
search for a cookie (first packets of a flow), search-and-verify (a packet
that carries one), or simply map the packet to its flow's service — the
task mix that determines Fig. 4's throughput curve.

This is the performance-critical path of the repository, so unlike
:class:`repro.core.switch.CookieSwitch` it keeps its own minimal flow
dictionary instead of the full :class:`FlowTable`.

State is **bounded**: both the flow dictionary and the subscriber-counter
map are LRU-ordered (Python dicts preserve insertion order; entries are
re-inserted on touch, so iteration order *is* recency order) with an
idle timeout and a max-entries cap.  Under sustained flow churn the
middlebox holds at most ``max_flows`` flow entries and
``max_subscribers`` counter pairs, whatever the offered load — the
property the paper's line-rate argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ...core.matcher import CookieMatcher
from ...core.transport import TransportRegistry, default_registry
from ...netsim.flow import FiveTuple
from ...netsim.headers import IPv4Header as _IPv4Header
from ...netsim.headers import TCPHeader as _TCPHeader
from ...netsim.middlebox import Element
from ...netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ...core.distributed import ShardedVerifierPool
    from ...core.parallel import ProcessShardExecutor
    from ...services.billing import BillingAccountant
    from ...telemetry import MetricsRegistry

__all__ = [
    "BillingFlushRequired",
    "SubscriberCounters",
    "ZeroRatingMiddlebox",
    "ZERO_RATE_SNIFF_PACKETS",
    "DEFAULT_MAX_FLOWS",
    "DEFAULT_MAX_SUBSCRIBERS",
    "flow_key_to_fivetuple",
]


class BillingFlushRequired(RuntimeError):
    """A billing-enabled middlebox was about to evict a subscriber's
    counters with no flush callback wired — silent revenue loss.  The
    constructor installs the journal-flush callback automatically when
    ``billing=`` is given; this raise means someone cleared
    ``on_subscriber_evicted`` afterwards."""


def flow_key_to_fivetuple(key: tuple) -> FiveTuple:
    """Convert the middlebox's inline flow key to a canonical FiveTuple.

    The inline key is ``((ip, port), (ip, port), proto)`` with endpoints
    in lexicographic order — the same canonical ordering
    :meth:`FiveTuple.canonical` uses — so the conversion is direct.  Used
    to hand resolved flows to :class:`repro.core.offload.HardwarePrefilter`.
    """
    (a_ip, a_port), (b_ip, b_port), proto = key
    return FiveTuple(a_ip, a_port, b_ip, b_port, proto)

ZERO_RATE_SNIFF_PACKETS = 3

#: Flow-state cap: at ~100 B/entry this is ~10 MB of worst-case state.
DEFAULT_MAX_FLOWS = 100_000

#: Counter cap: two ints per subscriber IP; a million fits in ~100 MB and
#: matches the ROADMAP's "millions of users" target.  Evicted counters go
#: through :attr:`ZeroRatingMiddlebox.on_subscriber_evicted` so billing
#: can flush them instead of losing revenue data.
DEFAULT_MAX_SUBSCRIBERS = 1_000_000

#: Flows idle longer than this are dropped (same default as FlowTable).
DEFAULT_FLOW_IDLE_TIMEOUT = 60.0


@dataclass
class SubscriberCounters:
    """The paper's two per-IP counters."""

    free_bytes: int = 0
    charged_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.free_bytes + self.charged_bytes

    @property
    def free_fraction(self) -> float:
        total = self.total_bytes
        return self.free_bytes / total if total else 0.0


@dataclass(slots=True)
class _FlowState:
    """Per-flow fast-path state: the decision plus the sniff countdown."""

    zero_rated: bool = False
    packets_seen: int = 0
    subscriber_ip: str = ""
    remote_ip: str = ""
    service: object = None
    resolved: bool = False
    last_seen: float = 0.0


class ZeroRatingMiddlebox(Element):
    """Counts subscriber traffic as free (cookied) or charged.

    ``is_subscriber`` decides which side of a packet is the subscriber
    (default: any RFC1918-ish "10." / "192.168." address).  Both directions
    of a flow share one state entry keyed on the canonical 5-tuple.

    ``max_flows`` / ``flow_idle_timeout`` bound flow state;
    ``max_subscribers`` bounds the counter map, with
    ``on_subscriber_evicted(ip, counters)`` invoked before a counter pair
    is dropped so accounting can flush it.  ``telemetry`` (a
    :class:`~repro.telemetry.MetricsRegistry`) registers a collector
    exporting every counter below under the given prefix.

    ``matcher`` is any verifier exposing ``match(cookie, now)`` — a
    :class:`~repro.core.matcher.CookieMatcher` for a single-box deploy, or
    a pool (:class:`~repro.core.distributed.ShardedVerifierPool` /
    :class:`~repro.core.parallel.ProcessShardExecutor`) when verification
    is scaled out behind one middlebox front-end.
    """

    def __init__(
        self,
        matcher: (
            "CookieMatcher | ShardedVerifierPool | ProcessShardExecutor"
        ),
        clock: Callable[[], float],
        registry: TransportRegistry | None = None,
        is_subscriber: Callable[[str], bool] | None = None,
        sniff_packets: int = ZERO_RATE_SNIFF_PACKETS,
        on_flow_resolved: Callable[[tuple, "_FlowState"], None] | None = None,
        max_flows: int = DEFAULT_MAX_FLOWS,
        flow_idle_timeout: float = DEFAULT_FLOW_IDLE_TIMEOUT,
        max_subscribers: int = DEFAULT_MAX_SUBSCRIBERS,
        on_subscriber_evicted: (
            Callable[[str, SubscriberCounters], None] | None
        ) = None,
        billing: "BillingAccountant | None" = None,
        telemetry: "MetricsRegistry | None" = None,
        telemetry_prefix: str = "middlebox",
        name: str = "zero-rating",
    ) -> None:
        super().__init__(name)
        if max_flows < 1:
            raise ValueError("max_flows must be at least 1")
        if max_subscribers < 1:
            raise ValueError("max_subscribers must be at least 1")
        if flow_idle_timeout <= 0:
            raise ValueError("flow_idle_timeout must be positive")
        self.matcher = matcher
        self.clock = clock
        self.registry = registry or default_registry()
        self.is_subscriber = is_subscriber or (
            lambda ip: ip.startswith("10.") or ip.startswith("192.168.")
        )
        self.sniff_packets = sniff_packets
        #: Invoked once per flow the moment its fate is final (cookie
        #: matched, or the sniff window closed without one).  The §4.6
        #: hardware co-design hooks here to offload the rest of the flow.
        self.on_flow_resolved = on_flow_resolved
        self.max_flows = max_flows
        self.flow_idle_timeout = flow_idle_timeout
        self.max_subscribers = max_subscribers
        #: Optional :class:`~repro.services.billing.BillingAccountant`
        #: (duck-typed: ``account(...)`` + ``flush_subscriber(ip)``).
        #: With billing, packet freeness comes from the subscriber's
        #: operator catalog (coverage, caps, roaming) instead of the
        #: bare cookie verdict, and every eviction flushes the pending
        #: deltas to the journal first — the flush callback is wired
        #: here and is *mandatory*: evicting without it raises
        #: :class:`BillingFlushRequired`.
        self.billing = billing
        if billing is not None:
            user_callback = on_subscriber_evicted

            def _flush_then_notify(
                ip: str, counters: SubscriberCounters
            ) -> None:
                billing.flush_subscriber(ip)
                if user_callback is not None:
                    user_callback(ip, counters)

            on_subscriber_evicted = _flush_then_notify
        self.on_subscriber_evicted = on_subscriber_evicted
        # Both dicts are LRU-ordered: touched entries are re-inserted at
        # the end, so the first key is always the least recently active.
        self.counters: dict[str, SubscriberCounters] = {}
        self._flows: dict[tuple, _FlowState] = {}
        self.packets_processed = 0
        self.cookie_hits = 0
        self.cookie_misses = 0
        #: Fail-safe rule (§4.6 economics): if the verifier itself blows
        #: up — a pool whose workers are gone, a store backend erroring —
        #: the flow is **charged, never free**.  An attacker must not be
        #: able to turn a verifier crash into free data.
        self.verifier_failures = 0
        self.flows_resolved = 0
        self.flows_evicted_idle = 0
        self.flows_evicted_cap = 0
        self.subscribers_evicted = 0
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        self.emit(self._handle_one(packet, self.clock()))

    def _handle_one(self, packet: Packet, now: float) -> Packet:
        """Classify, account, and tag one packet; returns it for emit.

        Shared by the scalar path (one clock read per packet) and the
        billing-enabled batch path (one clock read per batch — billing
        needs per-packet catalog decisions, so the resolved-run
        coalescing of the counter-only batch path does not apply).
        """
        self.packets_processed += 1
        ip = packet.ip
        l4 = packet.l4
        if ip is None or l4 is None:
            return packet
        # Canonical bidirectional key without FlowTable overhead.
        a = (ip.src, l4.src_port)
        b = (ip.dst, l4.dst_port)
        key = (a, b, ip.proto) if a <= b else (b, a, ip.proto)
        # pop + reinsert moves the entry to the recent end of the dict.
        flows = self._flows
        state = flows.pop(key, None)
        if state is None:
            self._evict_for_space(now)
            state = self._new_flow_state(ip.src, ip.dst)
        elif now - state.last_seen > self.flow_idle_timeout:
            # The real box would have aged this entry out already; what it
            # sees now is a brand-new flow.
            self.flows_evicted_idle += 1
            state = self._new_flow_state(ip.src, ip.dst)
        state.last_seen = now
        flows[key] = state
        state.packets_seen += 1

        if not state.resolved and state.packets_seen <= self.sniff_packets:
            found = self.registry.extract(packet)
            if found is not None:
                # The cookie was consumed by verification (accepted or
                # not).  A cookie the box *skipped* — resolved flow, or
                # past the sniff window — stays unspent on the wire and
                # is outside the replay cache's protection.
                packet.meta["cookie_checked"] = True
                descriptor = self._match_failsafe(found[0], now)
                if descriptor is not None:
                    state.zero_rated = True
                    state.service = descriptor.service_data
                    self.cookie_hits += 1
                    self._resolve(key, state)
                else:
                    self.cookie_misses += 1
            if not state.resolved and state.packets_seen >= self.sniff_packets:
                # Sniff window closed without a valid cookie — whether the
                # last packet was bare or carried a cookie that failed to
                # verify, the flow is charged for good and the §4.6
                # offload hook must still fire.
                self._resolve(key, state)

        free = self._account(state, packet, now)
        if free:
            packet.meta["zero_rated"] = True
        return packet

    def process_batch(self, packets: list[Packet]) -> None:
        """Batched fast path: one tick's packets, one observation time.

        Semantically identical to ``for p in packets: self.handle(p)``
        with the clock frozen for the batch (the scalar path reads the
        clock per packet; batch arrival means the whole vector is
        observed at the tick's start).  The per-packet savings:

        - the clock is read once per batch, telemetry counters are
          aggregated in locals and flushed once;
        - every ``self.`` attribute used on the hot path is bound once;
        - consecutive packets of a *resolved* flow (the common burst
          shape — think GRO) coalesce into a run: the head packet pays
          the full dict/LRU path, the rest of the run only compares
          header fields against the head, accumulates bytes, and is
          billed to the flow's counter in one addition.  Final LRU order
          and counter values are unchanged — consecutive scalar touches
          of one key neither move it relative to other keys nor bill a
          different total.

        With billing enabled the coalescing is unsound (a cap can cross
        mid-run, flipping freeness per packet), so the batch degrades to
        the shared per-packet path with one clock read.
        """
        now = self.clock()
        if self.billing is not None:
            self.emit_batch([self._handle_one(p, now) for p in packets])
            return
        flows = self._flows
        counters = self.counters
        extract = self.registry.extract
        match = self._match_failsafe
        sniff = self.sniff_packets
        idle = self.flow_idle_timeout
        max_subscribers = self.max_subscribers
        on_subscriber_evicted = self.on_subscriber_evicted
        processed = 0
        hits = 0
        misses = 0
        out: list[Packet] = []
        append = out.append
        index = 0
        total = len(packets)
        while index < total:
            packet = packets[index]
            index += 1
            processed += 1
            ip = packet.ip
            l4 = packet.l4
            if ip is None or l4 is None:
                append(packet)
                continue
            src = ip.src
            dst = ip.dst
            sport = l4.src_port
            dport = l4.dst_port
            proto = ip.proto
            a = (src, sport)
            b = (dst, dport)
            key = (a, b, proto) if a <= b else (b, a, proto)
            state = flows.pop(key, None)
            if state is None:
                self._evict_for_space(now)
                state = _FlowState(subscriber_ip=self._subscriber_of(src, dst))
            elif now - state.last_seen > idle:
                self.flows_evicted_idle += 1
                state = _FlowState(subscriber_ip=self._subscriber_of(src, dst))
            state.last_seen = now
            flows[key] = state
            packets_seen = state.packets_seen + 1
            state.packets_seen = packets_seen

            if not state.resolved and packets_seen <= sniff:
                found = extract(packet)
                if found is not None:
                    packet.meta["cookie_checked"] = True
                    descriptor = match(found[0], now)
                    if descriptor is not None:
                        state.zero_rated = True
                        state.service = descriptor.service_data
                        hits += 1
                        self._resolve(key, state)
                    else:
                        misses += 1
                if not state.resolved and packets_seen >= sniff:
                    self._resolve(key, state)

            # Inlined _account for the head packet.
            subscriber_ip = state.subscriber_ip
            sub_counters = counters.get(subscriber_ip)
            if sub_counters is None:
                while len(counters) >= max_subscribers:
                    evicted_ip = next(iter(counters))
                    evicted = counters.pop(evicted_ip)
                    self.subscribers_evicted += 1
                    if on_subscriber_evicted is not None:
                        on_subscriber_evicted(evicted_ip, evicted)
                sub_counters = SubscriberCounters()
                counters[subscriber_ip] = sub_counters
            elif packets_seen == 1:
                del counters[subscriber_ip]
                counters[subscriber_ip] = sub_counters
            zero_rated = state.zero_rated
            if zero_rated:
                sub_counters.free_bytes += packet.wire_length
                packet.meta["zero_rated"] = True
            else:
                sub_counters.charged_bytes += packet.wire_length
            append(packet)

            if not state.resolved:
                continue
            # Resolved-run fast sub-loop: consume every immediately
            # following packet of the same conversation (either
            # direction) without re-touching the dicts.  Nothing the
            # scalar path would do for these packets survives skipping:
            # the LRU entry is already at the recent end with
            # last_seen == now, the verdict is final (resolved flows
            # skip cookie work), and byte accounting is additive.
            # Header *types* are per-flow constants, so the run head's
            # types pick constant-size wire-length arithmetic and only
            # packets carrying options/extensions fall back to the
            # header's own property.
            ip_is_v4 = type(ip) is _IPv4Header
            l4_is_tcp = type(l4) is _TCPHeader
            run_packets = 0
            run_bytes = 0
            while index < total:
                nxt = packets[index]
                nip = nxt.ip
                nl4 = nxt.l4
                if nip is None or nl4 is None:
                    break
                nsrc = nip.src
                ndst = nip.dst
                nsport = nl4.src_port
                ndport = nl4.dst_port
                if nip.proto != proto or not (
                    (
                        nsrc == src
                        and ndst == dst
                        and nsport == sport
                        and ndport == dport
                    )
                    or (
                        nsrc == dst
                        and ndst == src
                        and nsport == dport
                        and ndport == sport
                    )
                ):
                    break
                index += 1
                run_packets += 1
                wire = nxt.payload.size
                header = nxt.eth
                if header is not None:
                    wire += 14  # EthernetHeader.WIRE_LENGTH
                if ip_is_v4:
                    wire += 20  # IPv4Header.WIRE_LENGTH
                elif nip.extensions:
                    wire += nip.wire_length
                else:
                    wire += 40  # IPv6Header.BASE_WIRE_LENGTH
                if not l4_is_tcp:
                    wire += 8  # UDPHeader.WIRE_LENGTH
                elif nl4.options:
                    wire += nl4.wire_length
                else:
                    wire += 20  # TCPHeader.BASE_WIRE_LENGTH
                run_bytes += wire
                if zero_rated:
                    nxt.meta["zero_rated"] = True
                append(nxt)
            if run_packets:
                processed += run_packets
                state.packets_seen = packets_seen + run_packets
                if zero_rated:
                    sub_counters.free_bytes += run_bytes
                else:
                    sub_counters.charged_bytes += run_bytes
        self.packets_processed += processed
        self.cookie_hits += hits
        self.cookie_misses += misses
        self.emit_batch(out)

    def _match_failsafe(self, cookie, now: float):
        """``matcher.match`` with the fail-safe rule: a verifier *error*
        (as opposed to a clean rejection) counts as no match, so the flow
        stays charged.  Free data requires a working verifier saying yes.
        """
        try:
            return self.matcher.match(cookie, now)
        except Exception:
            self.verifier_failures += 1
            return None

    def _resolve(self, key: tuple, state: _FlowState) -> None:
        state.resolved = True
        self.flows_resolved += 1
        if self.on_flow_resolved is not None:
            self.on_flow_resolved(key, state)

    def _evict_for_space(self, now: float) -> None:
        """Make room before inserting a new flow entry.

        Drains idle entries from the LRU end first; if the table is still
        at the cap, the least recently active flow is dropped outright.
        Amortized O(1): each entry is evicted at most once.
        """
        flows = self._flows
        while flows:
            oldest_key = next(iter(flows))
            if now - flows[oldest_key].last_seen > self.flow_idle_timeout:
                del flows[oldest_key]
                self.flows_evicted_idle += 1
            else:
                break
        while len(flows) >= self.max_flows:
            del flows[next(iter(flows))]
            self.flows_evicted_cap += 1

    def _subscriber_of(self, src: str, dst: str) -> str:
        if self.is_subscriber(src):
            return src
        if self.is_subscriber(dst):
            return dst
        return src  # transit traffic: bill the sender

    def _new_flow_state(self, src: str, dst: str) -> _FlowState:
        subscriber = self._subscriber_of(src, dst)
        return _FlowState(
            subscriber_ip=subscriber,
            remote_ip=dst if subscriber == src else src,
        )

    def _account(self, state: _FlowState, packet: Packet, now: float) -> bool:
        """Bill one packet; returns whether its bytes rode free.

        Without billing, freeness is the flow's cookie verdict (the
        paper's idealized single operator).  With billing, the verdict
        only establishes the *app*; the subscriber's operator catalog
        decides freeness per packet (coverage of the server's tranche,
        cap state, roaming) and the journal-backed accountant buffers
        the delta.  The middlebox counters mirror the billed decision so
        wire-visible accounting and invoices can never disagree.
        """
        counters = self.counters.get(state.subscriber_ip)
        if counters is None:
            while len(self.counters) >= self.max_subscribers:
                if self.billing is not None and self.on_subscriber_evicted is None:
                    raise BillingFlushRequired(
                        "billing-enabled middlebox cannot evict subscriber "
                        "counters without a flush callback"
                    )
                evicted_ip = next(iter(self.counters))
                evicted = self.counters.pop(evicted_ip)
                self.subscribers_evicted += 1
                if self.on_subscriber_evicted is not None:
                    self.on_subscriber_evicted(evicted_ip, evicted)
            counters = SubscriberCounters()
            self.counters[state.subscriber_ip] = counters
        elif state.packets_seen == 1:
            # Subscriber recency is tracked at *flow* granularity: a new
            # flow moves its subscriber to the recent end of the LRU, but
            # data packets of existing flows skip the extra dict work.
            del self.counters[state.subscriber_ip]
            self.counters[state.subscriber_ip] = counters
        if self.billing is not None:
            free = self.billing.account(
                state.subscriber_ip,
                state.service if state.zero_rated else None,
                state.remote_ip,
                packet.wire_length,
                cookied=state.zero_rated,
                now=now,
            )
        else:
            free = state.zero_rated
        if free:
            counters.free_bytes += packet.wire_length
        else:
            counters.charged_bytes += packet.wire_length
        return free

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def counters_for(self, subscriber_ip: str) -> SubscriberCounters:
        """Counters for one subscriber (zeros if never seen)."""
        return self.counters.get(subscriber_ip, SubscriberCounters())

    def expire_flows(self, keep_last: int = 0) -> int:
        """Drop flow state, keeping the ``keep_last`` most recently
        *active* flows (the dict is LRU-ordered, so the retained suffix is
        the recently-touched set, not the most recently created one).

        Returns how many entries were dropped.
        """
        if keep_last <= 0:
            dropped = len(self._flows)
            self._flows.clear()
            return dropped
        keys = list(self._flows)
        for key in keys[:-keep_last]:
            del self._flows[key]
        return max(0, len(keys) - keep_last)

    def expire_idle_flows(self, now: float | None = None) -> int:
        """Eagerly drop every flow idle past the timeout; returns count.

        The data path already evicts lazily; this is the operator's
        sweep (e.g. a periodic timer) for tables that sit below the cap.
        """
        if now is None:
            now = self.clock()
        stale = [
            key
            for key, state in self._flows.items()
            if now - state.last_seen > self.flow_idle_timeout
        ]
        for key in stale:
            del self._flows[key]
        self.flows_evicted_idle += len(stale)
        return len(stale)

    @property
    def tracked_flows(self) -> int:
        return len(self._flows)

    @property
    def tracked_subscribers(self) -> int:
        return len(self.counters)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "middlebox"
    ) -> None:
        """Export this middlebox's counters into a metrics registry.

        Registered as a collector named ``prefix`` (re-registration under
        the same prefix replaces, so it is idempotent); hot-path counters
        stay plain ints and are only read at snapshot time.
        """
        from ...telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            free = sum(c.free_bytes for c in self.counters.values())
            charged = sum(c.charged_bytes for c in self.counters.values())
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.packets_processed": self.packets_processed,
                    f"{prefix}.cookie_hits": self.cookie_hits,
                    f"{prefix}.cookie_misses": self.cookie_misses,
                    f"{prefix}.verifier_failures": self.verifier_failures,
                    f"{prefix}.flows_resolved": self.flows_resolved,
                    f"{prefix}.flows_evicted_idle": self.flows_evicted_idle,
                    f"{prefix}.flows_evicted_cap": self.flows_evicted_cap,
                    f"{prefix}.subscribers_evicted": self.subscribers_evicted,
                    f"{prefix}.free_bytes": free,
                    f"{prefix}.charged_bytes": charged,
                },
                gauges={
                    f"{prefix}.tracked_flows": len(self._flows),
                    f"{prefix}.tracked_subscribers": len(self.counters),
                },
            )

        registry.register_collector(prefix, collect)
