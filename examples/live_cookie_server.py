#!/usr/bin/env python3
"""A live cookie server over real TCP sockets.

Runs the JSON-API cookie server on localhost, then acts as three clients:
an authenticated subscriber who acquires and uses a descriptor, a second
device sharing the connection, and an impostor whose acquisition is
denied.  Everything crosses an actual socket — this is the deployment
shape of the paper's prototype (descriptor acquisition out-of-band over a
JSON API, cookies in-band).

Run:  python examples/live_cookie_server.py
"""

import asyncio
import time

from repro.core import (
    AuthenticatedUsersPolicy,
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    CookieServer,
    DescriptorStore,
    ServiceOffering,
)
from repro.core.netserver import AsyncCookieServer, CookieClient


async def main() -> None:
    store = DescriptorStore()
    server = CookieServer(
        clock=time.time,
        policy=AuthenticatedUsersPolicy(accounts={"alice": "hunter2"}),
    )
    server.offer(ServiceOffering(name="Boost", description="fast lane",
                                 lifetime=3600.0))
    server.attach_enforcement_store(store)

    tcp = AsyncCookieServer(server)
    host, port = await tcp.start()
    print(f"cookie server listening on {host}:{port}\n")

    # Subscriber: discovery, then authenticated acquisition.
    alice = CookieClient(host, port)
    services = await alice.request({"op": "list_services"})
    print("alice discovers:", [s["name"] for s in services["services"]])
    response = await alice.request({
        "op": "acquire", "user": "alice", "service": "Boost",
        "credentials": {"secret": "hunter2"},
    })
    descriptor = CookieDescriptor.from_json(response["descriptor"])
    print(f"alice's descriptor over the wire: id={descriptor.cookie_id:#x}")

    # She mints cookies locally — no further server round trips.
    generator = CookieGenerator(descriptor, clock=time.time)
    matcher = CookieMatcher(store)
    cookie = generator.generate()
    print("locally minted cookie verifies at the network:",
          matcher.match(cookie, now=time.time()) is not None)

    # Impostor: denied at the policy layer.
    mallory = CookieClient(host, port)
    denied = await mallory.request({
        "op": "acquire", "user": "mallory", "service": "Boost",
        "credentials": {"secret": "password1"},
    })
    print("mallory's acquisition:", denied)

    # Alice revokes from her phone; the descriptor dies network-wide.
    await alice.request({
        "op": "revoke", "user": "alice", "cookie_id": descriptor.cookie_id,
    })
    stale = generator_yield_stale(descriptor)
    print("post-revocation cookie verifies:",
          matcher.match(stale, now=time.time()) is not None)

    await alice.close()
    await mallory.close()
    await tcp.stop()
    print("\naudit log:", server.audit_log.regulator_report())


def generator_yield_stale(descriptor: CookieDescriptor):
    """Mint a cookie from a local copy, as an app ignoring revocation
    would (the network still refuses it)."""
    clone = CookieDescriptor(
        cookie_id=descriptor.cookie_id,
        key=descriptor.key,
        service_data=descriptor.service_data,
        attributes=descriptor.attributes,
    )
    return CookieGenerator(clone, clock=time.time).generate()


if __name__ == "__main__":
    asyncio.run(main())
