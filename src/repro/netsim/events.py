"""A small discrete-event simulation kernel.

Everything time-dependent in the substrate (link serialization, queue
drains, TCP timers, periodic capacity probes) is driven by one
:class:`EventLoop`.  Events are ``(time, seq)``-ordered entries on a heap;
``seq`` breaks ties deterministically in insertion order so simulations are
reproducible.

The kernel is a hot path: a single link-lab sweep runs hundreds of
simulations, each firing hundreds of thousands of events.  Three
optimisations keep it fast without changing semantics:

- :class:`ScheduledEvent` is a ``__slots__`` class with a hand-written
  ``__lt__`` (no dataclass tuple comparisons, no per-instance ``__dict__``).
- Cancelled events are removed *lazily*: :meth:`ScheduledEvent.cancel` only
  marks the entry, and the loop discards tombstones as they surface.  When
  tombstones dominate the heap (TCP re-arms its RTO on every ACK, cancelling
  the previous timer each time) the loop compacts the heap in one
  ``heapify`` pass so memory stays bounded by *live* timers.
- :meth:`EventLoop.schedule_periodic` drives recurring work (link ticks,
  CBR sources, capacity probes) by re-arming a single reusable event object
  instead of allocating a fresh closure + event per occurrence.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable

__all__ = ["EventLoop", "ScheduledEvent", "PeriodicEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


class ScheduledEvent:
    """A pending callback; ordering is (time, seq)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        loop: "EventLoop | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._loop = loop

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the loop skips it when it comes due.

        The entry stays on the heap as a tombstone; the loop discards it
        when it surfaces, or earlier if a compaction pass runs.
        """
        if not self.cancelled:
            self.cancelled = True
            loop = self._loop
            if loop is not None:
                loop._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time} seq={self.seq}{state}>"


class PeriodicEvent:
    """A recurring callback created by :meth:`EventLoop.schedule_periodic`.

    One :class:`ScheduledEvent` object is re-armed for every occurrence, so
    steady-state periodic work allocates nothing per tick.  ``callback`` may
    call :meth:`stop` to end the series (the current firing completes);
    re-arming happens *after* the callback returns, matching the
    schedule-at-end-of-tick pattern the substrate used before this
    primitive existed.
    """

    __slots__ = ("loop", "interval", "callback", "_event", "_stopped")

    def __init__(
        self, loop: "EventLoop", interval: float, callback: Callable[[], Any]
    ) -> None:
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        self.loop = loop
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self._event = loop.schedule(interval, self._fire)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """End the series; a pending occurrence is cancelled."""
        if self._stopped:
            return
        self._stopped = True
        self._event.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            # Reuse the just-fired event object: the loop has already
            # popped it, so mutating time/seq and re-pushing is safe.
            self._event = self.loop._rearm(self._event, self.interval)


class EventLoop:
    """Deterministic discrete-event loop with virtual time in seconds."""

    #: Compaction triggers only beyond this many tombstones (small heaps
    #: are cheap to carry) and only when tombstones outnumber live events.
    COMPACT_MIN_TOMBSTONES = 256

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._tombstones = 0
        self.events_processed = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(self._now + delay, seq, callback, self)
        heappush(self._heap, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(when, seq, callback, self)
        heappush(self._heap, event)
        return event

    def schedule_periodic(
        self, interval: float, callback: Callable[[], Any]
    ) -> PeriodicEvent:
        """Run ``callback`` every ``interval`` seconds until stopped.

        The first occurrence fires ``interval`` seconds from now.  Returns
        a :class:`PeriodicEvent` handle; the underlying heap entry is
        recycled between occurrences, so a long-lived periodic process
        costs no per-tick allocation.
        """
        return PeriodicEvent(self, interval, callback)

    def _rearm(self, event: ScheduledEvent, delay: float) -> ScheduledEvent:
        """Re-push a popped event ``delay`` seconds from now (kernel use).

        Only safe for events that are no longer on the heap (just fired,
        or cancelled and already discarded); :class:`PeriodicEvent` is the
        intended caller.
        """
        seq = self._seq
        self._seq = seq + 1
        event.time = self._now + delay
        event.seq = seq
        event.cancelled = False
        heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        self._tombstones += 1
        heap = self._heap
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify the survivors."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapify(self._heap)
        self._tombstones = 0
        self.compactions += 1

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run events in time order.

        Stops when the queue empties, when the next event is past ``until``,
        or after ``max_events`` (a runaway guard).  Returns the final virtual
        time.  When stopped by ``until``, time is advanced exactly to
        ``until`` so periodic processes observe a consistent clock.
        """
        processed = 0
        heap = self._heap
        while heap:
            event = heap[0]
            if until is not None and event.time > until:
                break
            if heap is not self._heap:
                # A callback triggered compaction; rebind the local.
                heap = self._heap
                continue
            heappop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            if processed >= max_events:
                heappush(heap, event)
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
            self._now = event.time
            event.callback()
            processed += 1
            if heap is not self._heap:
                heap = self._heap
        self.events_processed += processed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)
