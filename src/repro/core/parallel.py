"""Multi-core verification data plane (§5's linear core scaling).

The paper's middlebox reaches 20.4 Gb/s on 4 cores because each core
owns the descriptors whose cookies it verifies (§4.6): replay caches
stay locally sound, so cores never share state on the hot path.  This
module reproduces that on CPython, where threads cannot help a
CPU-bound verifier: each shard of the rendezvous dispatch runs in its
own **worker process** with a private :class:`~repro.core.matcher.
CookieMatcher`, replica :class:`~repro.core.store.DescriptorStore`, and
replay cache.

Three layers:

- a **batch wire codec** — :func:`encode_batch` / :func:`decode_batch`
  frame a cookie vector as one ``bytes`` blob built on the existing
  48-byte :meth:`Cookie.to_bytes` form, and :func:`encode_verdicts` /
  :func:`decode_verdicts` pack the reply as ``(reason code, descriptor
  id)`` records.  No ``Cookie`` or descriptor **object** ever crosses
  the process boundary, and nothing is pickled on the hot path.
- a **transport ladder** (PROTOCOL.md §12) — batch frames travel over
  per-shard :class:`~repro.core.shm_ring.ShmRing` pairs by default: a
  dispatch is one bounded memcpy into shared memory per shard and one
  polled read back, zero syscalls in steady state.  Pipes remain the
  control channel (descriptor deltas, stats, probes, shutdown) and the
  fallback transport (ring setup failure, frames too large for a
  slot, post-restart re-dispatch).  Below both sits the **in-process
  degrade mode**: on boxes where worker processes cannot win
  (``os.cpu_count() < 2``), :meth:`ProcessShardExecutor.auto` serves
  every shard from in-process matchers so the abstraction never costs
  2x on a CI box.
- a :class:`ProcessShardExecutor` — the multi-process drop-in for
  :class:`~repro.core.distributed.ShardedVerifierPool`: same
  ``match`` / ``match_batch`` / ``shard_for`` / telemetry surface, same
  descriptor-affine rendezvous dispatch, identical verdict semantics
  (per-shard ordering, replay/NCT rules of PROTOCOL.md §9-§10).

Failure model (PROTOCOL.md §10): a crashed worker is detected at the
next dispatch (broken pipe / EOF / reply timeout — on the ring
transport, an unanswered sequence word plus a failed liveness check),
restarted with a **cold replay cache** and fresh rings, re-seeded from
the dispatcher's descriptor store, and counted in
``PoolStats.shard_restarts`` — the same fail-closed trade-off an NFV
pool makes when it replaces a dead instance: the pool keeps verifying
(no deadlock, no dropped dispatch) at the cost of one shard's replay
window starting empty.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import struct
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from .cookie import COOKIE_WIRE_BYTES, Cookie
from .descriptor import CookieDescriptor
from .distributed import PoolStats, rendezvous_shard
from .errors import MalformedCookie
from .matcher import NETWORK_COHERENCY_TIME, CookieMatcher, MatchStats
from .resilience import RetryPolicy
from .shm_ring import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    RingFrameTooLarge,
    RingUnavailable,
    ShmRing,
)
from .store import DescriptorStore

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..telemetry import MetricsRegistry

__all__ = [
    "encode_batch",
    "decode_batch",
    "encode_verdicts",
    "decode_verdicts",
    "VERDICT_ACCEPTED",
    "VERDICT_CODES",
    "VERDICT_REASONS",
    "VERDICT_UNAVAILABLE",
    "ShmTransportStats",
    "ProcessShardExecutor",
]

# ----------------------------------------------------------------------
# Batch wire codec
# ----------------------------------------------------------------------

_COUNT = struct.Struct("!I")

#: Verdict reason codes, one per :class:`MatchStats` outcome.  Code 0 is
#: the only accept; everything else names the reject reason, so a verdict
#: array is also a per-cookie error report.
VERDICT_REASONS: tuple[str, ...] = (
    "accepted",
    "unknown_id",
    "bad_signature",
    "stale_timestamp",
    "replayed",
    "revoked",
    "expired",
)
VERDICT_CODES: dict[str, int] = {
    reason: code for code, reason in enumerate(VERDICT_REASONS)
}
VERDICT_ACCEPTED = VERDICT_CODES["accepted"]

#: Dispatcher-level reason for cookies whose shard died twice within one
#: dispatch: the sub-batch fails closed with this marker.  Deliberately
#: **not** a wire code — workers can never report it (a worker that can
#: reply is by definition available), so :data:`VERDICT_REASONS` stays a
#: bijection with :class:`MatchStats` outcomes.
VERDICT_UNAVAILABLE = "verifier_unavailable"

#: One verdict record: reason code (1) + descriptor id (8, zero unless
#: accepted — ids, never descriptor objects, cross the wire).
_VERDICT_RECORD = struct.Struct("!BQ")


def encode_batch(cookies: Sequence[Cookie]) -> bytes:
    """Frame a cookie vector: ``!I`` count + count × 48-byte cookies.

    Built on :meth:`Cookie.to_bytes`, so a frame is exactly what the
    cookies would occupy on a binary carrier — and cookies that arrived
    off a wire round-trip bit-identically.
    """
    return _COUNT.pack(len(cookies)) + b"".join(
        cookie.to_bytes() for cookie in cookies
    )


def decode_batch(blob: bytes) -> list[Cookie]:
    """Inverse of :func:`encode_batch`; raises :class:`MalformedCookie`
    on a truncated frame, a count/length mismatch, or trailing bytes."""
    if len(blob) < _COUNT.size:
        raise MalformedCookie(
            f"batch frame too short for header: {len(blob)} bytes"
        )
    (count,) = _COUNT.unpack_from(blob)
    body = len(blob) - _COUNT.size
    if body != count * COOKIE_WIRE_BYTES:
        raise MalformedCookie(
            f"batch frame announces {count} cookies "
            f"({count * COOKIE_WIRE_BYTES} bytes) but carries {body}"
        )
    from_bytes = Cookie.from_bytes
    return [
        from_bytes(
            blob[
                _COUNT.size
                + index * COOKIE_WIRE_BYTES : _COUNT.size
                + (index + 1) * COOKIE_WIRE_BYTES
            ]
        )
        for index in range(count)
    ]


def encode_verdicts(verdicts: Sequence[tuple[int, int]]) -> bytes:
    """Pack ``(reason code, descriptor id)`` records into one blob."""
    out = bytearray(_COUNT.size + len(verdicts) * _VERDICT_RECORD.size)
    _COUNT.pack_into(out, 0, len(verdicts))
    pack_into = _VERDICT_RECORD.pack_into
    offset = _COUNT.size
    reason_count = len(VERDICT_REASONS)
    for code, descriptor_id in verdicts:
        if not 0 <= code < reason_count:
            raise MalformedCookie(f"verdict code {code} out of range")
        pack_into(out, offset, code, descriptor_id)
        offset += _VERDICT_RECORD.size
    return bytes(out)


def decode_verdicts(blob: bytes) -> list[tuple[int, int]]:
    """Inverse of :func:`encode_verdicts`; raises
    :class:`MalformedCookie` on truncation, length mismatch, or an
    unknown reason code."""
    if len(blob) < _COUNT.size:
        raise MalformedCookie(
            f"verdict frame too short for header: {len(blob)} bytes"
        )
    (count,) = _COUNT.unpack_from(blob)
    body = len(blob) - _COUNT.size
    if body != count * _VERDICT_RECORD.size:
        raise MalformedCookie(
            f"verdict frame announces {count} verdicts "
            f"({count * _VERDICT_RECORD.size} bytes) but carries {body}"
        )
    verdicts = list(_VERDICT_RECORD.iter_unpack(memoryview(blob)[_COUNT.size :]))
    reason_count = len(VERDICT_REASONS)
    for code, _descriptor_id in verdicts:
        if code >= reason_count:
            raise MalformedCookie(f"unknown verdict code {code}")
    return verdicts


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

# One-byte opcodes; every frame starts with one.
_OP_BATCH = b"B"  # + !d now + batch frame        -> verdict frame
_OP_DELTA = b"D"  # + JSON delta ops              -> b"\x01" ack
_OP_STATS = b"S"  #                               -> JSON stats
_OP_QUIT = b"Q"   #                               -> b"\x01" ack, exit

_NOW = struct.Struct("!d")

#: How many empty ring polls a worker burns after its last frame before
#: parking on the control pipe; one poll is a handful of interpreted
#: bytecodes, so this is roughly a millisecond of hot window — enough to
#: catch the dispatcher's next frame of a streaming dispatch without a
#: single syscall.
_WORKER_HOT_SPINS = 4096
#: Parked-worker wakeup quantum: the worker sleeps in ``conn.poll`` (so
#: control frames wake it instantly) and re-checks the ring this often.
_WORKER_IDLE_POLL_S = 0.001
#: How long a worker pushes into a full response ring before concluding
#: the dispatcher is gone and exiting (the executor would restart it).
_WORKER_PUSH_TIMEOUT_S = 60.0


def _worker_main(
    conn,
    nct: float,
    seed_json: str,
    rings: tuple[ShmRing, ShmRing] | None = None,
    ring_names: tuple[str, str] | None = None,
) -> None:
    """Verifier shard loop: one matcher over a replica store.

    The replica is seeded from JSON at start (control plane — the hot
    path never serializes descriptors) and updated by delta frames.
    Batch frames arrive on the request ring when the shard has one
    (``rings`` under fork, ``ring_names`` under spawn) and their verdict
    frames return on the response ring; the pipe carries control ops and
    fallback batches, each answered on the channel it arrived on.
    Any malformed frame terminates the worker: the dispatcher treats
    that as a crash and restarts the shard — failing closed beats
    verifying against a state we no longer trust.
    """
    store = DescriptorStore()
    for data in json.loads(seed_json):
        store.add(CookieDescriptor.from_json(data))
    matcher = CookieMatcher(store, nct=nct)
    codes = VERDICT_CODES
    accepted_code = VERDICT_ACCEPTED

    req_ring = resp_ring = None
    if rings is not None:
        # fork: inherited mappings; the dispatcher owns their lifetime.
        req_ring, resp_ring = rings
        req_ring.disown()
        resp_ring.disown()
    elif ring_names is not None:
        try:
            req_ring = ShmRing.attach(ring_names[0])
            resp_ring = ShmRing.attach(ring_names[1])
        except RingUnavailable:
            # The dispatcher believes this shard speaks shm; serving the
            # pipe only would deadlock its ring waits.  Die loudly and
            # let the recovery ladder decide.
            conn.close()
            raise

    def batch_reply(frame: bytes) -> bytes:
        (now,) = _NOW.unpack_from(frame, 1)
        cookies = decode_batch(frame[1 + _NOW.size :])
        reasons: list[str] = []
        matcher.match_batch(cookies, now, reasons=reasons)
        return encode_verdicts(
            [
                (
                    codes[reason],
                    cookie.cookie_id
                    if codes[reason] == accepted_code
                    else 0,
                )
                for reason, cookie in zip(reasons, cookies)
            ]
        )

    hot = 0
    try:
        while True:
            frame = None
            via_ring = False
            if req_ring is not None:
                frame = req_ring.try_pop()
                via_ring = frame is not None
                if frame is None:
                    if hot > 0:
                        hot -= 1
                        if hot & 127 == 0:
                            time.sleep(0)
                        continue
                    if not conn.poll(_WORKER_IDLE_POLL_S):
                        continue
            if frame is None:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    break
            if req_ring is not None:
                hot = _WORKER_HOT_SPINS
            op = frame[:1]
            if op == _OP_BATCH:
                reply = batch_reply(frame)
                if via_ring:
                    if not resp_ring.push(reply, _WORKER_PUSH_TIMEOUT_S):
                        break  # dispatcher stopped draining; restart cycle
                else:
                    conn.send_bytes(reply)
            elif op == _OP_DELTA:
                for delta in json.loads(frame[1:].decode("utf-8")):
                    action = delta["op"]
                    if action == "add":
                        store.add(
                            CookieDescriptor.from_json(delta["descriptor"])
                        )
                    elif action == "revoke":
                        store.revoke(int(delta["cookie_id"]))
                    elif action == "remove":
                        store.remove(int(delta["cookie_id"]))
                    else:
                        raise MalformedCookie(f"unknown delta op {action!r}")
                conn.send_bytes(b"\x01")
            elif op == _OP_STATS:
                cache = matcher.replay_cache
                conn.send_bytes(
                    json.dumps(
                        {
                            "match": matcher.stats.as_dict(),
                            "replay_cache": {
                                "rotations": cache.rotations,
                                "idle_resets": cache.idle_resets,
                                "size": cache.size,
                            },
                        }
                    ).encode("utf-8")
                )
            elif op == _OP_QUIT:
                conn.send_bytes(b"\x01")
                break
            else:
                raise MalformedCookie(f"unknown opcode {op!r}")
    except MalformedCookie:
        pass  # exit; the dispatcher restarts the shard fail-closed
    finally:
        conn.close()
        for ring in (req_ring, resp_ring):
            if ring is not None:
                ring.close()


def _zero_worker_stats() -> dict:
    return {
        "match": MatchStats().as_dict(),
        "replay_cache": {"rotations": 0, "idle_resets": 0, "size": 0},
    }


def _sum_worker_stats(snapshots: Sequence[dict]) -> dict:
    total = _zero_worker_stats()
    for snapshot in snapshots:
        for key, value in snapshot["match"].items():
            total["match"][key] += value
        for key, value in snapshot["replay_cache"].items():
            total["replay_cache"][key] += value
    return total


@dataclass
class ShmTransportStats:
    """Counters for the shared-memory transport (PROTOCOL.md §12)."""

    #: Sub-batches that travelled request-ring → response-ring.
    ring_dispatches: int = 0
    #: Sub-batches that travelled the pipe instead (no ring for the
    #: shard, oversize frame, or post-restart re-dispatch).
    pipe_dispatches: int = 0
    #: Frame bytes written to request rings / read from response rings.
    bytes_out: int = 0
    bytes_in: int = 0
    #: Frames that exceeded a slot's payload capacity and fell back to
    #: the pipe for that dispatch (the frame is never fragmented).
    oversize_pipe_fallbacks: int = 0
    #: Dispatches that found the request ring momentarily full and had
    #: to spin before publishing.
    backpressure_waits: int = 0
    #: Shard spawns whose ring allocation failed (shard degraded to the
    #: pipe transport).
    ring_setup_failures: int = 0
    #: Worker stats polls actually sent vs served from the interval
    #: cache (``stats_interval``).
    stats_polls: int = 0
    stats_cache_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


_TRANSPORTS = ("auto", "shm", "pipe", "in-process")


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class ProcessShardExecutor:
    """N verifier shards, each in its own process, behind the rendezvous
    dispatcher — the multi-process form of :class:`ShardedVerifierPool`.

    Semantics match the in-process pool exactly on healthy runs: the
    same cookie stream yields identical verdicts, identical per-shard
    :class:`MatchStats`, identical merged telemetry (the differential
    suite in ``tests/core/test_parallel_differential.py`` pins this).
    The speedup comes from real parallelism with cheap IPC: batch
    frames cross per-shard shared-memory rings (one bounded memcpy and
    one sequence-word store per direction — no syscall, no kernel
    copy), and the dispatch is pipelined — shard N's frame is encoded
    and published while shard N-1's worker is already verifying, then
    replies are collected in publish order.

    ``transport`` selects the hot path: ``"auto"`` (rings, falling back
    to pipes per shard if shared memory is unavailable), ``"shm"``
    (same; the name documents intent), ``"pipe"`` (PR-3 behaviour), or
    ``"in-process"`` (degrade mode: no worker processes at all — every
    shard is served by an in-process matcher over the dispatcher's
    store, for single-core boxes where process IPC can only lose; use
    :meth:`auto` to pick this automatically).  Pipes always remain the
    control channel and the re-dispatch path.

    Descriptors: the executor snapshots ``store`` into each worker at
    spawn and replays control-plane changes via :meth:`add_descriptor` /
    :meth:`revoke_descriptor` / :meth:`remove_descriptor` (delta push to
    all workers, so revocation takes effect pool-wide).  Mutating the
    store behind the executor's back leaves worker replicas stale —
    route descriptor changes through the executor.

    Crash handling is a ladder (PROTOCOL.md §11): a dead worker is
    detected at the next dispatch or stats poll and restarted cold with
    backoff and fresh rings (``restart_backoff``, counted in
    ``stats.shard_restarts``); the in-flight sub-batch is re-dispatched
    once over the pipe.  A shard that dies *again* during the
    re-dispatch fails its sub-batch closed — every cookie answers
    ``None`` with the dispatcher-level reason
    :data:`VERDICT_UNAVAILABLE` — rather than raising.  A shard that
    burns through ``max_restarts`` is permanently served by an
    **in-process fallback matcher** over the dispatcher's own store
    (``stats.fallbacks``): slower, but a dispatch never raises because a
    worker died.

    ``stats_interval`` > 0 amortizes worker stats polling: collections
    within the interval are served from the last snapshot (plus live
    in-process matchers) instead of a per-call pipe round-trip per
    worker.  Per-worker snapshots are epoch-tagged so a worker that is
    polled, restarted, and merged again inside one interval is never
    summed twice (its last snapshot moves into the retired totals the
    moment the old incarnation is reaped).

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        store: DescriptorStore,
        workers: int,
        nct: float = NETWORK_COHERENCY_TIME,
        *,
        reply_timeout: float = 30.0,
        start_method: str | None = None,
        max_restarts: int = 3,
        restart_backoff: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = time.sleep,
        transport: str = "auto",
        ring_slots: int = DEFAULT_SLOTS,
        ring_slot_bytes: int = DEFAULT_SLOT_BYTES,
        stats_interval: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if reply_timeout <= 0:
            raise ValueError("reply timeout must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        if stats_interval < 0:
            raise ValueError("stats_interval must be non-negative")
        self.store = store
        self.nct = nct
        self.reply_timeout = reply_timeout
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff or RetryPolicy(
            max_attempts=max_restarts + 1,
            base_delay=0.05,
            max_delay=1.0,
        )
        self._sleep = sleep
        self.stats = PoolStats()
        self.shm_stats = ShmTransportStats()
        self._use_rings = transport in ("auto", "shm")
        self._degraded = transport == "in-process"
        self._ring_slots = ring_slots
        self._ring_slot_bytes = ring_slot_bytes
        self.stats_interval = stats_interval
        if start_method is None:
            # fork is milliseconds; spawn is the portable fallback.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._worker_count = workers
        self._conns: list = [None] * workers
        self._procs: list = [None] * workers
        self._rings: list[tuple[ShmRing, ShmRing] | None] = [None] * workers
        # Stats carried over from crashed workers (last successful poll)
        # so merged counters stay monotonic across restarts.  Cached
        # per-worker snapshots are epoch-tagged: a snapshot only counts
        # while its worker incarnation is alive — the moment that
        # incarnation is reaped, the snapshot moves into the retired
        # totals and its epoch tag goes stale, so retired + cached can
        # never double-count one worker's history (the satellite bug
        # class of ISSUE 6).
        self._retired_stats = _zero_worker_stats()
        self._last_polled = [_zero_worker_stats() for _ in range(workers)]
        self._epoch = [0] * workers
        self._polled_epoch = [0] * workers
        self._stats_polled_at: float | None = None
        self._restart_counts = [0] * workers
        self._fallback_matchers: dict[int, CookieMatcher] = {}
        self._shard_memo: dict[int, int] = {}
        self._closed = False
        if self._degraded:
            for index in range(workers):
                self._fallback_matchers[index] = CookieMatcher(
                    self.store, nct=self.nct
                )
        else:
            try:
                for index in range(workers):
                    self._spawn(index)
            except BaseException:
                self.close()
                raise

    @classmethod
    def auto(
        cls,
        store: DescriptorStore,
        workers: int,
        nct: float = NETWORK_COHERENCY_TIME,
        *,
        min_cores: int = 2,
        stats_interval: float = 0.25,
        **kwargs,
    ) -> "ProcessShardExecutor":
        """Build an executor on the best transport this box supports.

        The degrade ladder's bottom rung (PROTOCOL.md §12): on a box
        with fewer than ``min_cores`` CPUs a worker process can only
        time-slice against the dispatcher, so the multi-process
        abstraction is served **in-process** (no workers, no IPC, ≈1x
        the in-process pool instead of the 0.45x the pipe transport
        measured on 1 core).  With enough cores, rings are tried first
        and pipes remain the per-shard fallback.  Worker-stats polling
        is interval-cached by default (``stats_interval``); pass ``0``
        to poll every collection.
        """
        if (os.cpu_count() or 1) < min_cores:
            return cls(
                store,
                workers,
                nct,
                transport="in-process",
                stats_interval=stats_interval,
                **kwargs,
            )
        try:
            return cls(
                store,
                workers,
                nct,
                transport="auto",
                stats_interval=stats_interval,
                **kwargs,
            )
        except OSError:
            # Cannot even start worker processes: serve in-process.
            return cls(
                store,
                workers,
                nct,
                transport="in-process",
                stats_interval=stats_interval,
                **kwargs,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_rings(self, index: int) -> tuple[ShmRing, ShmRing] | None:
        """A fresh request/response ring pair, or None (pipe shard)."""
        if not self._use_rings:
            return None
        try:
            request = ShmRing.create(
                slots=self._ring_slots, slot_bytes=self._ring_slot_bytes
            )
        except RingUnavailable:
            self.shm_stats.ring_setup_failures += 1
            return None
        try:
            # Verdict records are 9 B to the request's 48 B per cookie,
            # so a quarter-size response slot still fits any batch whose
            # request fit.
            response = ShmRing.create(
                slots=self._ring_slots,
                slot_bytes=max(4096, self._ring_slot_bytes // 4),
            )
        except RingUnavailable:
            request.close()
            self.shm_stats.ring_setup_failures += 1
            return None
        return request, response

    def _close_rings(self, index: int) -> None:
        rings = self._rings[index]
        if rings is not None:
            self._rings[index] = None
            for ring in rings:
                ring.close()

    def _spawn(self, index: int) -> None:
        seed = json.dumps([d.to_json() for d in self.store])
        parent_conn, child_conn = self._ctx.Pipe()
        rings = self._make_rings(index)
        if rings is None or self._start_method == "fork":
            args = (child_conn, self.nct, seed, rings, None)
        else:
            args = (
                child_conn,
                self.nct,
                seed,
                None,
                (rings[0].name, rings[1].name),
            )
        process = self._ctx.Process(
            target=_worker_main,
            args=args,
            name=f"cookie-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conns[index] = parent_conn
        self._procs[index] = process
        self._rings[index] = rings
        # A fresh incarnation: open a new stats epoch with a clean
        # snapshot (anything its predecessor reported is in retired).
        self._epoch[index] += 1
        self._polled_epoch[index] = self._epoch[index]
        self._last_polled[index] = _zero_worker_stats()

    def _reap(self, index: int) -> None:
        """Close and join whatever is left of a shard's worker."""
        conn, process = self._conns[index], self._procs[index]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=5.0)
        self._close_rings(index)
        # Retire whatever the dead incarnation last reported — exactly
        # once: the epoch tag goes stale here, so no later merge can add
        # the same snapshot again.  Everything it counted since that
        # poll is lost with it (documented in §10).
        if self._polled_epoch[index] == self._epoch[index]:
            self._retired_stats = _sum_worker_stats(
                [self._retired_stats, self._last_polled[index]]
            )
            self._polled_epoch[index] = -1
        self._last_polled[index] = _zero_worker_stats()

    def _restart(self, index: int) -> None:
        """One rung of the recovery ladder: restart the dead worker with
        backoff, or — once ``max_restarts`` is spent — retire the shard
        to an in-process fallback matcher.  Idempotent for fallback
        shards."""
        if index in self._fallback_matchers:
            return
        if self._restart_counts[index] >= self.max_restarts:
            self._enter_fallback(index)
            return
        delay = self.restart_backoff.delay_at(self._restart_counts[index])
        if self._sleep is not None and delay > 0:
            self._sleep(delay)
        self._reap(index)
        self._spawn(index)
        self._restart_counts[index] += 1
        self.stats.shard_restarts += 1

    def _enter_fallback(self, index: int) -> None:
        """Permanently serve this shard from an in-process matcher over
        the dispatcher's own store.  Verdict semantics are unchanged
        (same store, same NCT; the replay cache starts cold exactly as a
        restarted worker's would); only the parallelism is lost."""
        self._reap(index)
        self._conns[index] = None
        self._procs[index] = None
        self._fallback_matchers[index] = CookieMatcher(self.store, nct=self.nct)
        self.stats.fallbacks += 1

    def restart_shard(self, index: int) -> None:
        """Operator-initiated shard replacement (cold replay cache).
        Counts against ``max_restarts`` like any other restart."""
        self._restart(index)

    @property
    def degraded(self) -> bool:
        """True when this executor is the single-core degrade mode:
        every shard served in-process, no worker processes at all."""
        return self._degraded

    @property
    def transport(self) -> str:
        """The batch transport actually in use: ``"in-process"``
        (degrade mode), ``"shm"``, ``"pipe"``, or ``"mixed"`` (some
        shards lost their rings and run on pipes)."""
        if self._degraded:
            return "in-process"
        kinds = {
            kind
            for kind in self.shard_transports()
            if kind != "in-process"  # crash-fallback shards don't vote
        }
        if not kinds:
            return "in-process"  # every shard crashed into fallback
        if len(kinds) > 1:
            return "mixed"
        return kinds.pop()

    def shard_transports(self) -> list[str]:
        """Per-shard batch transport: ``"shm"``, ``"pipe"``, or
        ``"in-process"`` (degrade mode or crash fallback)."""
        return [
            "in-process"
            if index in self._fallback_matchers
            else ("shm" if self._rings[index] is not None else "pipe")
            for index in range(self._worker_count)
        ]

    @property
    def fallback_shards(self) -> list[int]:
        """Shards retired to the in-process fallback matcher by the
        crash ladder.  Empty in degrade mode: there, in-process service
        is the configuration, not a failure."""
        if self._degraded:
            return []
        return sorted(self._fallback_matchers)

    def worker_pids(self) -> list[int | None]:
        """Live worker PIDs by shard (None for fallback shards).

        Exposed for chaos drills and kill tests, which need a real OS
        handle to SIGKILL — not for routine operation."""
        return [
            process.pid if process is not None else None
            for process in self._procs
        ]

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def probe_shard(self, index: int, timeout: float | None = None) -> bool:
        """Liveness probe: one stats round-trip within ``timeout``
        (default: the reply timeout).  Fallback shards are healthy by
        definition (in-process, nothing to probe).  Never raises and
        never mutates pool state — pair with :meth:`ensure_healthy` to
        act on a failed probe."""
        if index in self._fallback_matchers:
            return True
        conn = self._conns[index]
        try:
            conn.send_bytes(_OP_STATS)
            if not conn.poll(
                self.reply_timeout if timeout is None else timeout
            ):
                return False
            json.loads(conn.recv_bytes().decode("utf-8"))
            return True
        except (OSError, EOFError, BrokenPipeError, ValueError):
            return False

    def health(self) -> list[bool]:
        """Probe every shard; element i is shard i's liveness."""
        return [
            self.probe_shard(index) for index in range(self._worker_count)
        ]

    def ensure_healthy(self) -> list[bool]:
        """Probe every shard and climb the recovery ladder for any that
        fails (restart with backoff, or fallback once restarts are
        spent).  Returns post-recovery health — all True unless a
        restarted worker died again immediately."""
        for index in range(self._worker_count):
            if not self.probe_shard(index):
                self._restart(index)
        return self.health()

    def worker_process(self, index: int):
        """The shard's :class:`multiprocessing.Process` (tests, ops)."""
        return self._procs[index]

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:  # shard retired to fallback, or never spawned
                continue
            try:
                conn.send_bytes(_OP_QUIT)
                if conn.poll(1.0):
                    conn.recv_bytes()
            except (OSError, EOFError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        for process in self._procs:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        for index in range(self._worker_count):
            self._close_rings(index)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self._worker_count

    def _shard_index(self, cookie_id: int) -> int:
        memo = self._shard_memo
        shard_index = memo.get(cookie_id)
        if shard_index is None:
            shard_index = rendezvous_shard(cookie_id, self._worker_count)
            memo[cookie_id] = shard_index
        return shard_index

    def shard_for(self, cookie: Cookie) -> int:
        """Same memoized rendezvous assignment as the in-process pool."""
        return self._shard_index(cookie.cookie_id)

    def shard_for_descriptor(self, descriptor: CookieDescriptor) -> int:
        return self._shard_index(descriptor.cookie_id)

    def _roundtrip(self, index: int, frame: bytes) -> bytes:
        """Send one frame over the pipe and wait for the reply, bounded
        by the timeout; raises on a dead or unresponsive worker."""
        conn = self._conns[index]
        conn.send_bytes(frame)
        if not conn.poll(self.reply_timeout):
            raise TimeoutError(
                f"shard {index} gave no reply within {self.reply_timeout}s"
            )
        return conn.recv_bytes()

    def _send_sub_batch(self, shard: int, frame: bytes) -> str | None:
        """Publish one sub-batch on the shard's best transport.

        Returns the channel the reply will arrive on (``"ring"`` or
        ``"pipe"``), or None if the shard is unreachable (dead worker /
        full ring past the timeout) — the caller walks the recovery
        ladder.
        """
        rings = self._rings[shard]
        if rings is not None:
            request, _response = rings
            try:
                process = self._procs[shard]
                if not request.try_push(frame):
                    self.shm_stats.backpressure_waits += 1
                    if not request.push(
                        frame,
                        timeout=self.reply_timeout,
                        should_abort=lambda: not process.is_alive(),
                    ):
                        return None
                self.shm_stats.ring_dispatches += 1
                self.shm_stats.bytes_out += len(frame)
                return "ring"
            except RingFrameTooLarge:
                self.shm_stats.oversize_pipe_fallbacks += 1
                # fall through to the pipe for this dispatch
        try:
            self._conns[shard].send_bytes(frame)
        except (OSError, BrokenPipeError, ValueError):
            return None
        self.shm_stats.pipe_dispatches += 1
        return "pipe"

    def _collect_sub_batch(self, shard: int, channel: str) -> bytes | None:
        """The reply matching :meth:`_send_sub_batch`, or None on a
        dead/unresponsive worker."""
        if channel == "ring":
            _request, response = self._rings[shard]
            process = self._procs[shard]
            reply = response.pop(
                self.reply_timeout,
                should_abort=lambda: not process.is_alive(),
            )
            if reply is None:
                # The worker may have published and *then* died — drain
                # one last time before declaring the sub-batch lost.
                reply = response.try_pop()
            if reply is not None:
                self.shm_stats.bytes_in += len(reply)
            return reply
        try:
            conn = self._conns[shard]
            if not conn.poll(self.reply_timeout):
                return None
            return conn.recv_bytes()
        except (OSError, EOFError):
            return None

    def match(self, cookie: Cookie, now: float) -> CookieDescriptor | None:
        """Scalar verification — a batch of one through the same wire."""
        return self.match_batch([cookie], now)[0]

    def match_batch(
        self,
        cookies: Sequence[Cookie],
        now: float,
        reasons: list[str] | None = None,
    ) -> list[CookieDescriptor | None]:
        """Batched dispatch across worker processes.

        Cookies group per shard by memoized rendezvous assignment,
        preserving relative order within each shard's sub-batch (the
        only order replay detection can depend on — all cookies of a
        descriptor land on one shard).  Dispatch is pipelined: each
        shard's frame is encoded and published before the next shard's
        is encoded, so shard N's worker verifies while the dispatcher
        still serializes shard N+1 (double-buffering across shards);
        replies are then collected in publish order.

        Never raises for worker death.  A shard that dies mid-dispatch
        is restarted (with backoff, on fresh rings) and its sub-batch
        re-dispatched once over the pipe; a second death fails that
        sub-batch closed — ``None`` verdicts with the
        :data:`VERDICT_UNAVAILABLE` reason — and a shard past
        ``max_restarts`` is served by the in-process fallback matcher
        instead.  ``reasons``, if given, receives one reason string per
        cookie (:data:`VERDICT_REASONS` names, or
        ``verifier_unavailable``).
        """
        if not cookies:
            return []
        shard_index_for = self._shard_index
        per_shard: dict[int, list[int]] = {}
        for position, cookie in enumerate(cookies):
            per_shard.setdefault(
                shard_index_for(cookie.cookie_id), []
            ).append(position)
        # Pipelined fan-out: encode shard k's frame, publish it, only
        # then encode shard k+1's — workers overlap the dispatcher's
        # remaining serialization.  Shards already in fallback verify
        # locally after the collection pass.
        local: dict[int, list[int]] = {}
        frames: dict[int, bytes] = {}
        channels: dict[int, str] = {}
        failed: list[int] = []
        header = _OP_BATCH + _NOW.pack(now)
        for shard, positions in per_shard.items():
            if shard in self._fallback_matchers:
                local[shard] = positions
                continue
            frame = (
                header
                + _COUNT.pack(len(positions))
                + b"".join(
                    cookies[position].to_bytes() for position in positions
                )
            )
            frames[shard] = frame
            channel = self._send_sub_batch(shard, frame)
            if channel is None:
                failed.append(shard)
            else:
                channels[shard] = channel
        # Collect in publish order.
        replies: dict[int, bytes] = {}
        for shard in channels:
            reply = self._collect_sub_batch(shard, channels[shard])
            if reply is None:
                failed.append(shard)
            else:
                replies[shard] = reply
        # Recover: restart each failed shard, re-dispatch over the pipe.
        unavailable: list[int] = []
        for shard in failed:
            self._restart(shard)
            if shard in self._fallback_matchers:
                local[shard] = per_shard[shard]
                continue
            try:
                replies[shard] = self._roundtrip(shard, frames[shard])
            except (OSError, EOFError, TimeoutError, BrokenPipeError):
                # Died again during the re-dispatch: burn another rung of
                # the ladder (possibly tipping into fallback for *next*
                # dispatch) and fail this sub-batch closed.
                self._restart(shard)
                if shard in self._fallback_matchers:
                    local[shard] = per_shard[shard]
                else:
                    unavailable.append(shard)
        # Resolve descriptor ids against the dispatcher's own store —
        # descriptor objects never cross the process boundary.
        results: list[CookieDescriptor | None] = [None] * len(cookies)
        reason_arr: list[str] | None = (
            [VERDICT_UNAVAILABLE] * len(cookies)
            if reasons is not None
            else None
        )
        store_get = self.store.get
        for shard, positions in per_shard.items():
            if shard in local or shard in unavailable:
                continue
            try:
                verdicts = decode_verdicts(replies[shard])
                if len(verdicts) != len(positions):
                    raise MalformedCookie(
                        f"shard {shard} returned {len(verdicts)} verdicts "
                        f"for {len(positions)} cookies"
                    )
            except MalformedCookie:
                # A garbled reply means a worker we no longer trust:
                # same treatment as a death after re-dispatch.
                self._restart(shard)
                if shard in self._fallback_matchers:
                    local[shard] = positions
                else:
                    unavailable.append(shard)
                continue
            for position, (code, descriptor_id) in zip(positions, verdicts):
                if code == VERDICT_ACCEPTED:
                    descriptor = store_get(descriptor_id)
                    if descriptor is not None:
                        results[position] = descriptor
                        if reason_arr is not None:
                            reason_arr[position] = "accepted"
                    elif reason_arr is not None:
                        # Removed from the dispatcher's store since
                        # dispatch — fail closed, count as rejected.
                        reason_arr[position] = "unknown_id"
                elif reason_arr is not None:
                    reason_arr[position] = VERDICT_REASONS[code]
        # Fallback shards: verify in-process against the shared store.
        for shard, positions in local.items():
            matcher = self._fallback_matchers[shard]
            sub_reasons: list[str] | None = (
                [] if reason_arr is not None else None
            )
            sub_results = matcher.match_batch(
                [cookies[position] for position in positions],
                now,
                reasons=sub_reasons,
            )
            for offset, position in enumerate(positions):
                results[position] = sub_results[offset]
                if reason_arr is not None:
                    assert sub_reasons is not None
                    reason_arr[position] = sub_reasons[offset]
        for shard in unavailable:
            self.stats.unavailable_verdicts += len(per_shard[shard])
        accepted = sum(1 for result in results if result is not None)
        self.stats.accepted += accepted
        self.stats.rejected += len(cookies) - accepted
        if reasons is not None:
            assert reason_arr is not None
            reasons.extend(reason_arr)
        return results

    # ------------------------------------------------------------------
    # Descriptor deltas (control plane)
    # ------------------------------------------------------------------
    def _push_delta(self, ops: list[dict]) -> None:
        frame = _OP_DELTA + json.dumps(ops).encode("utf-8")
        for index in range(self._worker_count):
            if index in self._fallback_matchers:
                # Fallback matchers read the dispatcher's store directly;
                # there is no replica to update.
                continue
            try:
                reply = self._roundtrip(index, frame)
            except (OSError, EOFError, TimeoutError, BrokenPipeError):
                # The restart re-seeds from the already-updated store,
                # so the delta is applied either way.
                self._restart(index)
                continue
            if reply != b"\x01":  # pragma: no cover - defensive
                raise MalformedCookie(
                    f"shard {index} rejected descriptor delta"
                )

    def add_descriptor(self, descriptor: CookieDescriptor) -> CookieDescriptor:
        """Insert/replace in the dispatcher store and every replica."""
        self.store.add(descriptor)
        self._push_delta([{"op": "add", "descriptor": descriptor.to_json()}])
        return descriptor

    def revoke_descriptor(self, cookie_id: int) -> bool:
        """Revoke pool-wide; False if the id is unknown locally."""
        known = self.store.revoke(cookie_id)
        self._push_delta([{"op": "revoke", "cookie_id": cookie_id}])
        return known

    def remove_descriptor(self, cookie_id: int) -> CookieDescriptor | None:
        """Delete pool-wide (stronger than revocation)."""
        removed = self.store.remove(cookie_id)
        self._push_delta([{"op": "remove", "cookie_id": cookie_id}])
        return removed

    # ------------------------------------------------------------------
    # Stats and telemetry
    # ------------------------------------------------------------------
    def _live_fallback_stats(self, index: int) -> dict:
        matcher = self._fallback_matchers[index]
        cache = matcher.replay_cache
        return {
            "match": matcher.stats.as_dict(),
            "replay_cache": {
                "rotations": cache.rotations,
                "idle_resets": cache.idle_resets,
                "size": cache.size,
            },
        }

    def collect_worker_stats(self, force: bool = False) -> list[dict]:
        """Every worker's stats snapshot, one dict per shard.

        With ``stats_interval`` > 0, collections inside the interval are
        served from the cached snapshots (in-process matchers are always
        read live — they cost nothing) instead of one pipe round-trip
        per worker per call; pass ``force=True`` to poll regardless.

        Polls are epoch-consistent: a worker that fails to answer is
        restarted (counted in ``shard_restarts``) and reports **zeros**
        for the new incarnation — its last snapshot has just moved into
        the retired totals, so merged views count it exactly once.  The
        collection itself can never hang the caller.
        """
        now = time.monotonic()
        if (
            not force
            and self.stats_interval > 0
            and self._stats_polled_at is not None
            and now - self._stats_polled_at < self.stats_interval
        ):
            self.shm_stats.stats_cache_hits += 1
            return [
                self._live_fallback_stats(index)
                if index in self._fallback_matchers
                else (
                    self._last_polled[index]
                    if self._polled_epoch[index] == self._epoch[index]
                    else _zero_worker_stats()
                )
                for index in range(self._worker_count)
            ]
        snapshots: list[dict] = []
        for index in range(self._worker_count):
            if index in self._fallback_matchers:
                snapshots.append(self._live_fallback_stats(index))
                continue
            try:
                self.shm_stats.stats_polls += 1
                reply = self._roundtrip(index, _OP_STATS)
                snapshot = json.loads(reply.decode("utf-8"))
            except (OSError, EOFError, TimeoutError, BrokenPipeError,
                    ValueError):
                # The reap inside the restart retires this worker's last
                # snapshot; the shard's contribution to *this* merge is
                # the new incarnation's (empty) view — appending the old
                # snapshot here as well would count it twice.
                self._restart(index)
                if index in self._fallback_matchers:
                    snapshots.append(self._live_fallback_stats(index))
                else:
                    snapshots.append(_zero_worker_stats())
                continue
            self._last_polled[index] = snapshot
            self._polled_epoch[index] = self._epoch[index]
            snapshots.append(snapshot)
        self._stats_polled_at = now
        return snapshots

    def _merged_worker_stats(self, force: bool = False) -> dict:
        # Collect FIRST: a collection that trips a restart moves that
        # worker's cached snapshot into the retired totals, and the
        # retired totals must be read after that move, not before.
        snapshots = self.collect_worker_stats(force=force)
        return _sum_worker_stats([self._retired_stats] + snapshots)

    def collect_match_stats(self) -> MatchStats:
        """Merged :class:`MatchStats` across live workers and any stats
        retired by crashes — comparable to summing the in-process pool's
        per-shard matcher stats."""
        return MatchStats(**self._merged_worker_stats()["match"])

    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "pool"
    ) -> None:
        """Register a collector that polls workers at snapshot time.

        Emits the same metric names as
        :meth:`ShardedVerifierPool.register_telemetry`, so dashboards
        and the differential suite see in-process and multi-process
        pools identically.  Transport internals (``pool.shm.*``) are a
        separate opt-in collector — :meth:`register_transport_telemetry`
        — precisely because the in-process pool has no counterpart for
        them.
        """
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            total = self._merged_worker_stats()
            counters = {
                f"{prefix}.matcher.{outcome}": count
                for outcome, count in total["match"].items()
            }
            counters[f"{prefix}.matcher.replay_cache.rotations"] = (
                total["replay_cache"]["rotations"]
            )
            counters[f"{prefix}.matcher.replay_cache.idle_resets"] = (
                total["replay_cache"]["idle_resets"]
            )
            counters[f"{prefix}.accepted"] = self.stats.accepted
            counters[f"{prefix}.rejected"] = self.stats.rejected
            counters[f"{prefix}.shard_restarts"] = self.stats.shard_restarts
            counters[f"{prefix}.fallbacks"] = self.stats.fallbacks
            counters[f"{prefix}.unavailable_verdicts"] = (
                self.stats.unavailable_verdicts
            )
            return TelemetrySnapshot(
                counters=counters,
                gauges={
                    f"{prefix}.matcher.replay_cache.size": (
                        total["replay_cache"]["size"]
                    ),
                    f"{prefix}.shards": self._worker_count,
                    f"{prefix}.fallback_shards": len(self.fallback_shards),
                },
            )

        registry.register_collector(prefix, collect)

    def register_transport_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "pool.shm"
    ) -> None:
        """Export the shared-memory transport counters (PROTOCOL.md
        §12): ring vs pipe dispatch mix, ring bytes both ways, oversize
        and backpressure events, stats-poll amortization, and gauges for
        the live transport ladder position (ring/pipe shard counts and
        the degrade flag)."""
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            kinds = self.shard_transports()
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.{name}": value
                    for name, value in self.shm_stats.as_dict().items()
                },
                gauges={
                    f"{prefix}.ring_shards": kinds.count("shm"),
                    f"{prefix}.pipe_shards": kinds.count("pipe"),
                    f"{prefix}.degraded": 1 if self._degraded else 0,
                },
            )

        registry.register_collector(prefix, collect)
