"""Page model and site catalog tests: the published numbers are exact."""

import pytest

from repro.web.page import PageModel, ResourceFlow, ServerInfo
from repro.web.sites import (
    PUBLISHED_PAGE_STATS,
    build_cnn,
    build_facebook_background,
    build_skai,
    build_youtube,
    site_catalog,
)


def _server(hostname="a.example.com", ip="1.2.3.4", operator="example"):
    return ServerInfo(hostname=hostname, ip=ip, operator=operator)


class TestResourceFlow:
    def test_total_packets(self):
        flow = ResourceFlow(server=_server(), request_packets=2, response_packets=8)
        assert flow.total_packets == 10

    def test_sni_defaults_to_hostname(self):
        flow = ResourceFlow(server=_server())
        assert flow.sni == "a.example.com"
        assert flow.url_host == "a.example.com"

    def test_sni_override(self):
        flow = ResourceFlow(server=_server(), sni="media.cnn.com")
        assert flow.sni == "media.cnn.com"

    def test_needs_request_packet(self):
        with pytest.raises(ValueError):
            ResourceFlow(server=_server(), request_packets=0)


class TestPageModel:
    def test_counts_exclude_auxiliary(self):
        page = PageModel(domain="x.com")
        page.add(ResourceFlow(server=_server(), response_packets=8))
        page.add(ResourceFlow(server=_server(), kind="dns", response_packets=1))
        assert page.flow_count == 1
        assert page.packet_count == 10
        assert page.total_packet_count == 13

    def test_server_count_dedupes_by_ip(self):
        page = PageModel(domain="x.com")
        server = _server()
        page.add(ResourceFlow(server=server))
        page.add(ResourceFlow(server=server))
        assert page.server_count == 1

    def test_packets_by_operator(self):
        page = PageModel(domain="x.com")
        page.add(ResourceFlow(server=_server(operator="cnn"), response_packets=8))
        page.add(ResourceFlow(server=_server(ip="5.6.7.8", operator="akamai"),
                              response_packets=3))
        by_operator = page.packets_by_operator()
        assert by_operator["cnn"] == 10
        assert by_operator["akamai"] == 5

    def test_flows_by_kind(self):
        page = PageModel(domain="x.com")
        page.add(ResourceFlow(server=_server(), kind="ad"))
        assert len(page.flows_by_kind("ad")) == 1

    def test_domain_suffix(self):
        assert _server(hostname="a.b.cnn.com").domain_suffix == "cnn.com"


class TestPublishedStats:
    def test_cnn_matches_paper(self):
        page = build_cnn()
        assert page.summary() == PUBLISHED_PAGE_STATS["cnn.com"]

    def test_youtube_matches_paper(self):
        page = build_youtube()
        assert page.flow_count == 80
        assert page.packet_count == 3750

    def test_skai_matches_paper(self):
        page = build_skai()
        assert page.flow_count == 83
        assert page.packet_count == 1983

    def test_cnn_origin_packets_are_605(self):
        """§3: nDPI marked "only packets coming from CNN servers, which
        summed up to 605 packets (less than 10%)"."""
        page = build_cnn()
        assert page.packets_by_operator()["cnn"] == 605
        assert page.packets_by_operator()["cnn"] / page.packet_count < 0.10

    def test_cnn_sni_visible_fraction_is_18_percent(self):
        """Origin + Akamai-hosted-with-cnn-SNI is Fig. 6's nDPI bar."""
        page = build_cnn()
        sni_visible = sum(
            f.total_packets for f in page.web_flows if f.sni.endswith("cnn.com")
        )
        assert sni_visible / page.packet_count == pytest.approx(0.18, abs=0.002)

    def test_skai_embeds_youtube_at_12_percent(self):
        """Fig. 6: nDPI "matched 12% of packets from skai.gr" as YouTube."""
        page = build_skai()
        youtube_packets = sum(
            f.total_packets
            for f in page.web_flows
            if f.server.operator == "youtube"
        )
        assert youtube_packets / page.packet_count == pytest.approx(0.12, abs=0.002)

    def test_facebook_overlaps_cnn_servers(self):
        cnn_ips = {f.server.ip for f in build_cnn().web_flows}
        background = build_facebook_background()
        overlap = sum(
            f.total_packets
            for f in background.web_flows
            if f.server.ip in cnn_ips
        )
        assert overlap / background.packet_count > 0.5

    def test_catalog_contains_all_sites(self):
        catalog = site_catalog()
        assert set(catalog) == {
            "cnn.com",
            "youtube.com",
            "skai.gr",
            "facebook.com",
        }

    def test_cdn_cohosting_is_real(self):
        """The same Akamai IPs serve cnn, skai, and facebook content."""
        catalog = site_catalog()
        akamai_ips_per_site = {
            name: {
                f.server.ip
                for f in page.web_flows
                if f.server.operator == "akamai"
            }
            for name, page in catalog.items()
        }
        shared = (
            akamai_ips_per_site["cnn.com"]
            & akamai_ips_per_site["skai.gr"]
            & akamai_ips_per_site["facebook.com"]
        )
        assert shared

    def test_builders_are_deterministic(self):
        a, b = build_cnn(), build_cnn()
        assert [f.total_packets for f in a.flows] == [
            f.total_packets for f in b.flows
        ]

    def test_pages_include_dns_and_prefetch(self):
        page = build_cnn()
        assert page.flows_by_kind("dns")
        assert page.flows_by_kind("prefetch")
