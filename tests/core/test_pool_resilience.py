"""ProcessShardExecutor under worker death: the full recovery ladder.

Rungs, in order: restart the dead worker with backoff; a shard that
dies *again* during the same dispatch fails its sub-batch closed
(``verifier_unavailable`` — a dispatcher-level reason, never a wire
code); a shard that exhausts ``max_restarts`` is permanently served by
an in-process fallback matcher.  Dispatch never raises and never
returns a short verdict array, no matter when workers die.
"""

import os
import signal

import pytest

from repro.core.descriptor import CookieDescriptor
from repro.core.generator import CookieGenerator
from repro.core.parallel import (
    VERDICT_REASONS,
    VERDICT_UNAVAILABLE,
    ProcessShardExecutor,
)
from repro.core.resilience import RetryPolicy
from repro.core.store import DescriptorStore
from repro.telemetry import MetricsRegistry

NOW = 100.0


def _env(descriptors=16):
    store = DescriptorStore()
    generators = [
        CookieGenerator(
            store.add(CookieDescriptor.create(service_data=f"svc{i}")),
            clock=lambda: NOW,
        )
        for i in range(descriptors)
    ]
    return store, generators


def _batch(generators, n):
    return [generators[i % len(generators)].generate() for i in range(n)]


def _fast_pool(store, workers=2, max_restarts=2, **kw):
    kw.setdefault("reply_timeout", 10.0)
    return ProcessShardExecutor(
        store,
        workers=workers,
        max_restarts=max_restarts,
        restart_backoff=RetryPolicy(
            max_attempts=max_restarts + 1, base_delay=0.01,
            max_delay=0.05, jitter=0.0,
        ),
        **kw,
    )


class TestKillRecovery:
    def test_three_sigkills_walk_the_whole_ladder(self):
        """Kill a worker before three separate dispatches: two bounded
        restarts, then permanent fallback — with a full, correct verdict
        array from every dispatch."""
        store, generators = _env()
        sleeps = []
        with _fast_pool(store, sleep=sleeps.append) as pool:
            for round_index in range(6):
                if round_index < 3:
                    victim_pid = pool.worker_pids()[0]
                    if victim_pid is not None:
                        os.kill(victim_pid, signal.SIGKILL)
                batch = _batch(generators, 32)
                reasons: list[str] = []
                verdicts = pool.match_batch(batch, NOW, reasons=reasons)
                assert len(verdicts) == len(batch)
                assert len(reasons) == len(batch)
                # Every cookie is fresh and unique: all accepted even on
                # the dispatch where the shard was mid-recovery.
                assert all(v is not None for v in verdicts)
                assert set(reasons) == {"accepted"}
            assert pool.stats.shard_restarts == 2
            assert pool.stats.fallbacks == 1
            assert pool.fallback_shards == [0]
            # Backoff actually slept between restarts (injected sleep).
            assert len(sleeps) == 2
            assert all(s > 0 for s in sleeps)
            assert pool.health() == [True, True]

    def test_kill_between_dispatches_restarts_with_cold_cache(self):
        """A replay spanning a worker crash is re-granted (documented
        §10 cold-cache limitation) but dispatch itself never fails."""
        store, generators = _env(descriptors=4)
        with _fast_pool(store, workers=1) as pool:
            batch = _batch(generators, 8)
            first = pool.match_batch(batch, NOW)
            assert all(v is not None for v in first)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            again = pool.match_batch(batch, NOW)
            assert len(again) == len(batch)
            assert pool.stats.shard_restarts == 1

    def test_fallback_served_batches_match_in_process_semantics(self):
        """Once every shard is in fallback, verdicts (including replay
        rejection) keep flowing from the dispatcher process."""
        store, generators = _env(descriptors=4)
        with _fast_pool(store, workers=1, max_restarts=0) as pool:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            batch = _batch(generators, 6)
            reasons: list[str] = []
            verdicts = pool.match_batch(
                batch + [batch[0]], NOW, reasons=reasons
            )
            assert pool.fallback_shards == [0]
            assert [v is not None for v in verdicts] == [True] * 6 + [False]
            assert reasons == ["accepted"] * 6 + ["replayed"]


class TestFailClosed:
    def test_second_death_during_redispatch_fails_closed(self, monkeypatch):
        """Satellite: a shard that dies again during the post-restart
        re-dispatch yields ``verifier_unavailable`` for its sub-batch —
        not an exception, not a short array."""
        store, generators = _env()
        with _fast_pool(store, workers=1, max_restarts=5) as pool:
            batch = _batch(generators, 12)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            monkeypatch.setattr(
                pool,
                "_roundtrip",
                lambda index, frame: (_ for _ in ()).throw(EOFError()),
            )
            reasons: list[str] = []
            verdicts = pool.match_batch(batch, NOW, reasons=reasons)
            assert verdicts == [None] * len(batch)
            assert reasons == [VERDICT_UNAVAILABLE] * len(batch)
            assert pool.stats.unavailable_verdicts == len(batch)

    def test_unavailable_is_not_a_wire_code(self):
        assert VERDICT_UNAVAILABLE not in VERDICT_REASONS


class TestHealthAndTelemetry:
    def test_probe_and_ensure_healthy(self):
        store, generators = _env()
        with _fast_pool(store, workers=2) as pool:
            assert pool.health() == [True, True]
            os.kill(pool.worker_pids()[1], signal.SIGKILL)
            # Probing never mutates; ensure_healthy repairs.
            assert pool.probe_shard(1) is False
            assert pool.ensure_healthy() == [True, True]
            assert pool.stats.shard_restarts == 1

    def test_fallback_counters_reach_telemetry(self):
        store, generators = _env()
        registry = MetricsRegistry()
        with _fast_pool(store, workers=1, max_restarts=0) as pool:
            pool.register_telemetry(registry)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            pool.match_batch(_batch(generators, 8), NOW)
            snapshot = registry.snapshot()
            assert snapshot.counters["pool.fallbacks"] == 1
            assert snapshot.gauges["pool.fallback_shards"] == 1
            assert snapshot.counters["pool.shard_restarts"] == 0

    def test_worker_pids_reports_fallback_as_none(self):
        store, generators = _env()
        with _fast_pool(store, workers=1, max_restarts=0) as pool:
            assert pool.worker_pids()[0] is not None
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            pool.match_batch(_batch(generators, 4), NOW)
            assert pool.worker_pids() == [None]


class TestKillDrillExperiment:
    def test_pool_kill_drill_report(self):
        from repro.experiments import run_pool_kill_drill

        report = run_pool_kill_drill(seed=1, kills=3, batches=8)
        assert report["kills"] == 3
        assert report["short_verdict_arrays"] == 0
        assert report["restarts"] == 2
        assert report["fallbacks"] == 1
        assert report["fallback_shards"] == [0]
        assert all(report["healthy"])
