"""Cookie verification and matching (the network half of Listing 3).

The verifier accepts a cookie iff:

1. the cookie id is known (a descriptor exists in the store),
2. the descriptor is usable (not revoked, not expired),
3. the HMAC digest verifies under the descriptor key,
4. the timestamp lies within the Network Coherency Time of now, and
5. the uuid has not been seen before (no replay).

The NCT — "the maximum time we expect a packet to live within the network"
— defaults to the paper's 5 seconds.  It bounds both clock skew tolerance
and the replay cache's memory: uuids older than NCT can be forgotten
because rule 4 already rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cookie import Cookie
from .descriptor import CookieDescriptor
from .errors import (
    CookieError,
    DescriptorExpired,
    DescriptorRevoked,
    InvalidSignature,
    ReplayDetected,
    StaleTimestamp,
    UnknownDescriptor,
)
from .store import DescriptorStore

__all__ = ["ReplayCache", "MatchStats", "CookieMatcher", "NETWORK_COHERENCY_TIME"]

NETWORK_COHERENCY_TIME = 5.0


class ReplayCache:
    """Remembers recently seen cookie uuids for the coherency window.

    Implemented as two rotating generation sets, each covering one NCT-wide
    interval.  Membership is checked against both generations (so coverage
    is always at least NCT); inserts go to the current generation.  Memory
    is bounded by the arrival rate times 2×NCT regardless of how long the
    verifier runs — the property the paper relies on when it says the
    timestamp "reduces state kept by the network".
    """

    def __init__(self, window: float = NETWORK_COHERENCY_TIME) -> None:
        if window <= 0:
            raise ValueError("replay window must be positive")
        self.window = window
        self._current: set[bytes] = set()
        self._previous: set[bytes] = set()
        self._generation_start = 0.0
        #: Generation swaps since construction (telemetry: a healthy cache
        #: rotates ~1/NCT per second under load; a stalled count under
        #: traffic means the clock is not advancing).
        self.rotations = 0
        #: Multi-window idle periods that fast-forwarded both generations.
        self.idle_resets = 0

    def _rotate(self, now: float) -> None:
        while now - self._generation_start >= self.window:
            self._previous = self._current
            self._current = set()
            self._generation_start += self.window
            self.rotations += 1
            # If we've been idle for multiple windows, fast-forward.
            if now - self._generation_start >= self.window:
                self._previous = set()
                self._generation_start = now
                self.idle_resets += 1
                break

    def seen_before(self, uuid: bytes, now: float) -> bool:
        """Check membership without recording."""
        self._rotate(now)
        return uuid in self._current or uuid in self._previous

    def record(self, uuid: bytes, now: float) -> None:
        """Record a uuid as seen at ``now``."""
        self._rotate(now)
        self._current.add(uuid)

    def check_and_record(self, uuid: bytes, now: float) -> bool:
        """Atomically test-and-set; returns True if this is a replay."""
        if self.seen_before(uuid, now):
            return True
        self._current.add(uuid)
        return False

    @property
    def size(self) -> int:
        """Number of uuids currently remembered (both generations)."""
        return len(self._current) + len(self._previous)

    @property
    def generation_age(self) -> float:
        """Window start of the current generation (simulation seconds)."""
        return self._generation_start


@dataclass
class MatchStats:
    """Outcome counters kept by a :class:`CookieMatcher`."""

    accepted: int = 0
    unknown_id: int = 0
    bad_signature: int = 0
    stale_timestamp: int = 0
    replayed: int = 0
    revoked: int = 0
    expired: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.unknown_id
            + self.bad_signature
            + self.stale_timestamp
            + self.replayed
            + self.revoked
            + self.expired
        )

    @property
    def total(self) -> int:
        return self.accepted + self.rejected

    def as_dict(self) -> dict[str, int]:
        return {
            "accepted": self.accepted,
            "unknown_id": self.unknown_id,
            "bad_signature": self.bad_signature,
            "stale_timestamp": self.stale_timestamp,
            "replayed": self.replayed,
            "revoked": self.revoked,
            "expired": self.expired,
        }


class CookieMatcher:
    """Verifies cookies against a descriptor store.

    :meth:`verify` raises a typed :class:`~repro.core.errors.CookieError`
    on each failure mode; :meth:`match` is the data-path form that returns
    the descriptor or ``None`` and only counts — matching the paper's "if
    it fails to match, it behaves as if the cookie was not there".
    """

    def __init__(
        self,
        store: DescriptorStore,
        nct: float = NETWORK_COHERENCY_TIME,
        replay_cache: ReplayCache | None = None,
        telemetry: "object | None" = None,
        telemetry_prefix: str = "matcher",
    ) -> None:
        if nct <= 0:
            raise ValueError("network coherency time must be positive")
        self.store = store
        self.nct = nct
        self.replay_cache = replay_cache or ReplayCache(window=nct)
        self.stats = MatchStats()
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    def register_telemetry(self, registry, prefix: str = "matcher") -> None:
        """Export :class:`MatchStats` and the replay cache's size/rotation
        levels into a :class:`~repro.telemetry.MetricsRegistry`, as a
        collector named ``prefix`` (idempotent)."""
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            counters = {
                f"{prefix}.{outcome}": count
                for outcome, count in self.stats.as_dict().items()
            }
            counters[f"{prefix}.replay_cache.rotations"] = (
                self.replay_cache.rotations
            )
            counters[f"{prefix}.replay_cache.idle_resets"] = (
                self.replay_cache.idle_resets
            )
            return TelemetrySnapshot(
                counters=counters,
                gauges={
                    f"{prefix}.replay_cache.size": self.replay_cache.size,
                },
            )

        registry.register_collector(prefix, collect)

    def verify(self, cookie: Cookie, now: float) -> CookieDescriptor:
        """Full verification; returns the descriptor or raises."""
        descriptor = self.store.get(cookie.cookie_id)
        if descriptor is None:
            self.stats.unknown_id += 1
            raise UnknownDescriptor(f"no descriptor {cookie.cookie_id:#x}")
        if descriptor.revoked:
            self.stats.revoked += 1
            raise DescriptorRevoked(f"descriptor {cookie.cookie_id:#x} revoked")
        if descriptor.attributes.is_expired(now):
            self.stats.expired += 1
            raise DescriptorExpired(f"descriptor {cookie.cookie_id:#x} expired")
        if not cookie.verify_signature(descriptor):
            self.stats.bad_signature += 1
            raise InvalidSignature(f"bad digest for {cookie.cookie_id:#x}")
        if abs(cookie.timestamp - now) > self.nct:
            self.stats.stale_timestamp += 1
            raise StaleTimestamp(
                f"timestamp {cookie.timestamp} outside NCT of {now}"
            )
        if self.replay_cache.check_and_record(cookie.uuid, now):
            self.stats.replayed += 1
            raise ReplayDetected(f"uuid {cookie.uuid.hex()} already seen")
        self.stats.accepted += 1
        return descriptor

    def match(self, cookie: Cookie, now: float) -> CookieDescriptor | None:
        """Data-path verification: descriptor on success, None on failure."""
        try:
            return self.verify(cookie, now)
        except CookieError:
            return None
