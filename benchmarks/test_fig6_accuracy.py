"""Fig. 6 — matching accuracy for three user preferences.

Paper panels (cnn.com / youtube.com / skai.gr):

- cookies boost >90 % of traffic in all three cases, no false positives;
- nDPI identifies only 18 % of cnn.com, nothing of skai.gr, and marks 12 %
  of skai.gr's packets when boosting youtube.com (the embedded player);
- OOB detects the same flows as cookies but destination-only rules yield
  ~40 % false positives on cnn.com.
"""

import pytest

from repro.experiments import TARGET_SITES, run_all_targets
from repro.experiments.fig6_accuracy import run_oob


@pytest.fixture(scope="module")
def grid():
    return run_all_targets()


def test_fig6_accuracy_grid(benchmark, report, grid):
    from repro.experiments.fig6_accuracy import run_cookies

    benchmark.pedantic(lambda: run_cookies("cnn.com"), rounds=1, iterations=1)

    report("Fig. 6 — packets boosted (matched %) and false positives")
    report(f"{'target':<14}{'mechanism':<12}{'matched':>9}{'false/marked':>14}")
    for target in TARGET_SITES:
        for mechanism, result in grid[target].items():
            report(
                f"{target:<14}{mechanism:<12}"
                f"{result.matched_fraction:>8.1%}"
                f"{result.false_fraction_of_marked:>13.1%}"
            )
    youtube_ndpi = grid["youtube.com"]["ndpi"]
    report()
    report(
        "nDPI boosting youtube.com falsely marks "
        f"{youtube_ndpi.false_fraction_of_site('skai.gr'):.1%} of skai.gr "
        "packets (paper: 12%)"
    )

    for target in TARGET_SITES:
        cookies = grid[target]["cookies"]
        oob = grid[target]["oob"]
        benchmark.extra_info[f"{target}_cookies_matched"] = round(
            cookies.matched_fraction, 3
        )
        # Panel (a): cookies.
        assert cookies.matched_fraction > 0.90
        assert cookies.false_packets == 0
        # Panel (c): OOB detects the same flows as cookies...
        assert oob.matched_fraction == pytest.approx(
            cookies.matched_fraction, abs=0.01
        )
        # ...but suffers false positives everywhere.
        assert oob.false_packets > 0

    # Panel (b): nDPI numbers.
    assert grid["cnn.com"]["ndpi"].matched_fraction == pytest.approx(0.18, abs=0.03)
    assert grid["skai.gr"]["ndpi"].matched_fraction == 0.0
    assert youtube_ndpi.false_fraction_of_site("skai.gr") == pytest.approx(
        0.12, abs=0.02
    )
    # The 40 % OOB false-positive headline on cnn.com.
    assert grid["cnn.com"]["oob"].false_fraction_of_marked == pytest.approx(
        0.40, abs=0.06
    )


def test_fig6_oob_without_workaround(benchmark, report):
    """Ablation: full-tuple OOB rules die at the NAT entirely."""
    result = benchmark.pedantic(
        lambda: run_oob("cnn.com", mode="full_tuple"), rounds=1, iterations=1
    )
    report("OOB with full 5-tuple rules (no NAT workaround):")
    report(f"  matched {result.matched_fraction:.1%} (dst-only gets >90%)")
    assert result.matched_fraction < 0.05
