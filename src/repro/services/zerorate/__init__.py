"""Cookie-based zero-rating: the two-counter middlebox and billing."""

from .accounting import AccountingLedger, BillingPlan, Invoice
from .stateless import StatelessZeroRater
from .middlebox import (
    DEFAULT_MAX_FLOWS,
    DEFAULT_MAX_SUBSCRIBERS,
    ZERO_RATE_SNIFF_PACKETS,
    SubscriberCounters,
    ZeroRatingMiddlebox,
    flow_key_to_fivetuple,
)

__all__ = [
    "AccountingLedger",
    "BillingPlan",
    "Invoice",
    "DEFAULT_MAX_FLOWS",
    "DEFAULT_MAX_SUBSCRIBERS",
    "ZERO_RATE_SNIFF_PACKETS",
    "SubscriberCounters",
    "ZeroRatingMiddlebox",
    "flow_key_to_fivetuple",
    "StatelessZeroRater",
]
