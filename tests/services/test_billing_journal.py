"""Crash-safety and recovery edges of the billing journal (satellite 3).

The journal's contract (PROTOCOL.md §16): after ANY crash, reopening
recovers every fsynced record; at most one torn tail is truncated (never
double-counted); a checksum-corrupt record is quarantined — surfaced in
``billing.corrupt_records`` telemetry — without poisoning its
neighbours; and replaying the same segments twice reconciles to the
same invoices (exactly-once by record identity).
"""

import os

import pytest

from repro.netsim import DiskFaultInjector, DiskFaultPlan, TornWrite
from repro.services.billing import (
    BillingJournal,
    JournalFull,
    reconcile,
    reconcile_directories,
)
from repro.services.billing.journal import (
    FRAME_BYTES,
    HEADER_BYTES,
    SEGMENT_MAGIC,
)
from repro.telemetry import MetricsRegistry


def _fill(journal, count, start=0):
    records = []
    for i in range(start, start + count):
        records.append(journal.append(
            operator=f"op-{i % 2}",
            subscriber=f"10.5.{i % 3}.2",
            app="app",
            byte_class="origin" if i % 2 == 0 else "third_party",
            free_bytes=100 + i if i % 2 == 0 else 0,
            charged_bytes=0 if i % 2 == 0 else 200 + i,
            time=float(i),
        ))
    return records


def test_roundtrip_and_reopen(tmp_path):
    directory = str(tmp_path)
    with BillingJournal(directory, fsync="never") as journal:
        written = _fill(journal, 5)
    with BillingJournal(directory, fsync="never") as journal:
        assert list(journal.records()) == written
        assert journal.next_offset == 5
        assert journal.recovery.records_recovered == 5
        assert journal.recovery.torn_tail_truncated == 0
        # Offsets are dense and identities deterministic.
        assert [r.offset for r in written] == list(range(5))


def test_torn_final_record_truncated_not_fatal(tmp_path):
    """A torn tail is truncated on disk; every prior record survives."""
    directory = str(tmp_path)
    with BillingJournal(directory, fsync="never") as journal:
        _fill(journal, 4)
        path = journal.segment_paths(directory)[-1]
    intact = os.path.getsize(path)
    # Append a frame header that promises more payload than exists.
    with open(path, "ab") as handle:
        handle.write(b"\x00\x00\x00\x63\x12\x34\x56\x78" + b"short")
    journal = BillingJournal(directory, fsync="never")
    assert len(list(journal.records())) == 4
    assert journal.recovery.torn_tail_truncated == 1
    assert journal.recovery.corrupt_records == 0
    # The torn bytes are gone from disk: a second reopen is clean.
    assert os.path.getsize(path) == intact
    journal.append(operator="op-0", subscriber="10.5.0.2", app="app",
                   byte_class="origin", free_bytes=1)
    journal.close()
    reopened = BillingJournal(directory, fsync="never")
    assert reopened.recovery.torn_tail_truncated == 0
    assert reopened.next_offset == 5
    reopened.close()


def test_torn_frame_header_tail(tmp_path):
    """Fewer than FRAME_BYTES trailing bytes is also just a torn tail."""
    directory = str(tmp_path)
    with BillingJournal(directory, fsync="never") as journal:
        _fill(journal, 3)
        path = journal.segment_paths(directory)[-1]
    with open(path, "ab") as handle:
        handle.write(b"\x00\x00\x00")
    journal = BillingJournal(directory, fsync="never")
    assert len(list(journal.records())) == 3
    assert journal.recovery.torn_tail_truncated == 1
    assert journal.recovery.torn_tail_bytes == 3
    journal.close()


def test_checksum_corrupt_record_quarantined_with_telemetry(tmp_path):
    """Bit-rot inside a record loses that record alone, and telemetry
    reports it under ``billing.journal.corrupt_records``."""
    directory = str(tmp_path)
    with BillingJournal(directory, fsync="never") as journal:
        _fill(journal, 5)
        path = journal.segment_paths(directory)[-1]
    size = os.path.getsize(path)
    # Flip one payload byte in the middle of the file: framing stays
    # intact, the CRC does not.
    with open(path, "r+b") as handle:
        handle.seek(HEADER_BYTES + FRAME_BYTES + 4)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))
    journal = BillingJournal(directory, fsync="never")
    assert len(list(journal.records())) == 4
    assert journal.recovery.corrupt_records == 1
    assert journal.recovery.quarantined_bytes > 0
    assert journal.recovery.torn_tail_truncated == 0
    # Quarantine is not truncation: the file is untouched.
    assert os.path.getsize(path) == size
    registry = MetricsRegistry()
    journal.register_telemetry(registry)
    counters = registry.snapshot().counters
    assert counters["billing.journal.corrupt_records"] == 1
    assert counters["billing.journal.records_recovered"] == 4
    journal.close()


def test_duplicate_segment_replay_is_idempotent(tmp_path):
    """Reconciling the same directory twice (operator re-ships a backup)
    skips every duplicate by record identity."""
    directory = str(tmp_path)
    with BillingJournal(directory, stream_seed=7, fsync="never") as journal:
        _fill(journal, 6)
    once = reconcile_directories([directory])
    twice = reconcile_directories([directory, directory])
    assert once.records_applied == 6
    assert twice.records_applied == 6
    assert twice.duplicates_skipped == 6
    for operator, invoice in once.invoices.items():
        assert twice.invoices[operator].free_bytes == invoice.free_bytes
        assert twice.invoices[operator].charged_bytes == invoice.charged_bytes


def test_incremental_replay_with_applied_ids(tmp_path):
    """A reconciler fed overlapping batches applies each record once."""
    directory = str(tmp_path)
    with BillingJournal(directory, fsync="never") as journal:
        written = _fill(journal, 8)
    applied: set[int] = set()
    first = reconcile(written[:5], applied_ids=applied)
    second = reconcile(written[2:], applied_ids=applied)
    assert first.records_applied == 5
    assert second.records_applied == 3
    assert second.duplicates_skipped == 3


def test_rotation_and_compaction(tmp_path):
    directory = str(tmp_path)
    journal = BillingJournal(directory, max_segment_bytes=256, fsync="rotate")
    _fill(journal, 12)
    paths = journal.segment_paths(directory)
    assert len(paths) >= 3
    assert journal.stats_dict()["segment_rotations"] == len(paths) - 1
    # Every segment leads with the magic and its base offset.
    for path in paths:
        with open(path, "rb") as handle:
            assert handle.read(len(SEGMENT_MAGIC)) == SEGMENT_MAGIC
    # Compact away everything below the live segment's base offset.
    base_of_last = int(os.path.basename(paths[-1]).split("-")[1].split(".")[0])
    removed = journal.compact_to(journal.next_offset)
    assert removed == len(paths) - 1
    survivors = journal.segment_paths(directory)
    assert len(survivors) == 1
    assert survivors[0] == paths[-1]
    # Offsets keep counting from where the journal left off.
    journal.append(operator="op-0", subscriber="10.5.0.2", app="app",
                   byte_class="origin", free_bytes=1)
    assert journal.next_offset == 13
    assert base_of_last <= 12
    journal.close()


def test_enospc_keeps_journal_consistent(tmp_path):
    """A full disk surfaces as JournalFull; the partial append is undone
    and a retry after 'freeing space' lands the same offset."""
    directory = str(tmp_path)
    faults = DiskFaultInjector(DiskFaultPlan(enospc_at=2))
    journal = BillingJournal(directory, fsync="never", disk_faults=faults)
    _fill(journal, 2)
    with pytest.raises(JournalFull):
        journal.append(operator="op-0", subscriber="10.5.0.2", app="app",
                       byte_class="origin", free_bytes=7)
    assert journal.stats_dict()["append_failures"] == 1
    assert journal.next_offset == 2
    retried = journal.append(operator="op-0", subscriber="10.5.0.2",
                             app="app", byte_class="origin", free_bytes=7)
    assert retried.offset == 2
    journal.close()
    reopened = BillingJournal(directory, fsync="never")
    assert len(list(reopened.records())) == 3
    assert reopened.recovery.torn_tail_truncated == 0
    reopened.close()


def test_torn_write_injection_then_recovery(tmp_path):
    """A TornWrite mid-append (process about to die) leaves a tail the
    next open truncates; the interrupted record was never acked so the
    caller re-appends it — no loss, no double."""
    directory = str(tmp_path)
    faults = DiskFaultInjector(
        DiskFaultPlan(torn_write_at=3, torn_write_bytes=FRAME_BYTES + 5)
    )
    journal = BillingJournal(directory, fsync="never", disk_faults=faults)
    _fill(journal, 3)
    with pytest.raises(TornWrite):
        journal.append(operator="op-1", subscriber="10.5.1.2", app="app",
                       byte_class="third_party", charged_bytes=999)
    journal.close()
    recovered = BillingJournal(directory, fsync="never")
    assert recovered.recovery.torn_tail_truncated == 1
    assert recovered.next_offset == 3
    replayed = recovered.append(
        operator="op-1", subscriber="10.5.1.2", app="app",
        byte_class="third_party", charged_bytes=999,
    )
    assert replayed.offset == 3
    report = reconcile(list(recovered.records()))
    assert report.records_applied == 4
    assert report.duplicates_skipped == 0
    recovered.close()


def test_corrupt_middle_segment_does_not_stop_later_segments(tmp_path):
    """Destroyed framing in a NON-last segment quarantines that
    segment's remainder but later segments still replay."""
    directory = str(tmp_path)
    journal = BillingJournal(directory, max_segment_bytes=256, fsync="never")
    _fill(journal, 12)
    journal.close()
    paths = BillingJournal.segment_paths(directory)
    assert len(paths) >= 3
    # Shred the first segment's first frame with an insane length
    # field: framing is destroyed, so the rest of THAT segment is
    # quarantined — but only that segment.
    with open(paths[0], "r+b") as handle:
        handle.seek(HEADER_BYTES)
        handle.write(b"\xff\xff\xff\xff")
    records, stats = BillingJournal.read_directory(directory)
    assert stats.corrupt_records >= 1
    assert stats.torn_tail_truncated == 0  # not the last segment
    offsets = [record.offset for record in records]
    assert offsets[-1] == 11  # the tail segments survived
    assert len(records) < 12
