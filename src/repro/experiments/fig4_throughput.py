"""Fig. 4: zero-rating middlebox forwarding performance.

The paper sweeps packet size (64–1500 B) × packets-per-flow (10/50/100)
against its Click/DPDK middlebox and reports throughput, saturating
10 Gb/s at 512-byte packets and 50-packet flows on one core.

Our middlebox is pure Python, so absolute numbers are orders of magnitude
lower; the benchmark reports *shape*, which is what carries over:

- throughput in bits/s grows with packet size (per-packet cost is ~flat);
- throughput grows with packets-per-flow (cookie search + verification
  amortize over the flow; bound flows take the cheap map-only path);
- new-flows/s absorbed at 50-packet flows comfortably exceeds the campus
  trace's published p99 of 442 new flows/s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.matcher import CookieMatcher
from ..core.store import DescriptorStore
from ..trace.moongen import PacketGenerator, build_descriptor_pool
from ..trace.stats import ThroughputSample
from ..services.zerorate import ZeroRatingMiddlebox

__all__ = [
    "Fig4Point",
    "run_point",
    "run_sweep",
    "run_scalar_vs_batched",
    "run_clean_vs_faulted",
    "PACKET_SIZES",
    "FLOW_LENGTHS",
    "DEFAULT_BATCH_SIZE",
]

#: The figure's x-axis and series.
PACKET_SIZES = (64, 256, 512, 1024, 1500)
FLOW_LENGTHS = (10, 50, 100)

DEFAULT_DESCRIPTORS = 2_000
DEFAULT_FLOWS = 200

#: Packets per ``process_batch`` call in batched mode — the rx-burst
#: size a DPDK poll hands to software (MoonGen's default burst region).
DEFAULT_BATCH_SIZE = 256


@dataclass
class Fig4Point:
    """One measurement plus the pieces needed to reproduce it."""

    sample: ThroughputSample
    descriptors: int
    flows: int
    cookie_hits: int
    mode: str = "scalar"

    def as_row(self) -> dict[str, float]:
        return {
            "packet_size": self.sample.packet_size,
            "packets_per_flow": self.sample.packets_per_flow,
            "pps": round(self.sample.packets_per_second),
            "gbps": round(self.sample.gbps, 4),
            "new_flows_per_s": round(self.sample.new_flows_per_second),
        }


def run_point(
    packet_size: int,
    packets_per_flow: int,
    descriptors: int = DEFAULT_DESCRIPTORS,
    flows: int = DEFAULT_FLOWS,
    mode: str = "scalar",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Fig4Point:
    """Measure one (packet size, flow length) point.

    Packet generation happens *before* the timed region; the timed region
    is exactly the middlebox's per-packet work, as MoonGen measured only
    the device under test.  ``mode="scalar"`` drives one ``handle`` call
    per packet; ``mode="batched"`` drives ``process_batch`` over
    ``batch_size`` chunks of the same stream — the rx-burst arrival model.
    """
    if mode not in ("scalar", "batched"):
        raise ValueError(f"unknown mode {mode!r}")
    store = DescriptorStore()
    pool = build_descriptor_pool(descriptors, store)
    clock = time.perf_counter
    # Wide NCT: cookies are minted during (untimed) pre-generation, which
    # can take longer than the 5 s deployment window; see sec46_campus.
    middlebox = ZeroRatingMiddlebox(CookieMatcher(store, nct=600.0), clock=clock)
    generator = PacketGenerator(
        pool,
        clock=clock,
        packet_size=packet_size,
        packets_per_flow=packets_per_flow,
    )
    packets = list(generator.packets(flows))

    if mode == "batched":
        batches = [
            packets[start : start + batch_size]
            for start in range(0, len(packets), batch_size)
        ]
        start_time = clock()
        process_batch = middlebox.process_batch
        for batch in batches:
            process_batch(batch)
        elapsed = clock() - start_time
    else:
        start_time = clock()
        handle = middlebox.handle
        for packet in packets:
            handle(packet)
        elapsed = clock() - start_time

    return Fig4Point(
        sample=ThroughputSample(
            packet_size=packet_size,
            packets_per_flow=packets_per_flow,
            packets_processed=len(packets),
            elapsed_s=elapsed,
        ),
        descriptors=descriptors,
        flows=flows,
        cookie_hits=middlebox.cookie_hits,
        mode=mode,
    )


def run_scalar_vs_batched(
    packet_size: int = 512,
    packets_per_flow: int = 50,
    descriptors: int = DEFAULT_DESCRIPTORS,
    flows: int = DEFAULT_FLOWS,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rounds: int = 3,
) -> dict[str, float]:
    """Best-of-``rounds`` scalar vs batched comparison at one point.

    Returns ``{"scalar_pps", "batched_pps", "speedup"}``; best-of is used
    because single ~50 ms measurements are noisy under a loaded suite.
    """
    scalar_pps = max(
        run_point(
            packet_size,
            packets_per_flow,
            descriptors=descriptors,
            flows=flows,
            mode="scalar",
        ).sample.packets_per_second
        for _ in range(rounds)
    )
    batched_pps = max(
        run_point(
            packet_size,
            packets_per_flow,
            descriptors=descriptors,
            flows=flows,
            mode="batched",
            batch_size=batch_size,
        ).sample.packets_per_second
        for _ in range(rounds)
    )
    return {
        "scalar_pps": scalar_pps,
        "batched_pps": batched_pps,
        "speedup": batched_pps / scalar_pps if scalar_pps else 0.0,
    }


def run_clean_vs_faulted(
    packet_size: int = 512,
    packets_per_flow: int = 50,
    descriptors: int = DEFAULT_DESCRIPTORS,
    flows: int = DEFAULT_FLOWS,
    mode: str = "batched",
    batch_size: int = DEFAULT_BATCH_SIZE,
    fault_rate: float = 0.05,
    seed: int = 20160822,
    rounds: int = 3,
) -> dict[str, object]:
    """Fig. 4 point on a clean stream vs the same stream pre-faulted.

    The fault injector (drop / duplicate / reorder / corrupt at
    ``fault_rate`` each; delay needs an event loop and is a latency
    fault, not a throughput one) runs *before* the timed region — faults
    are a property of the arriving traffic, and the device under test is
    still only the middlebox.  What the ratio shows: the failure paths
    (cookie rejection, mid-flow duplicates, displaced sniff windows)
    must not be meaningfully slower than the happy path, because an
    adversary can choose to send faulted traffic.
    """
    from ..netsim import FaultInjector, FaultPlan, Sink

    if mode not in ("scalar", "batched"):
        raise ValueError(f"unknown mode {mode!r}")
    clock = time.perf_counter

    def build_stream() -> tuple[DescriptorStore, list]:
        store = DescriptorStore()
        pool = build_descriptor_pool(descriptors, store)
        generator = PacketGenerator(
            pool,
            clock=clock,
            packet_size=packet_size,
            packets_per_flow=packets_per_flow,
        )
        return store, list(generator.packets(flows))

    def measure(store, packets) -> float:
        middlebox = ZeroRatingMiddlebox(
            CookieMatcher(store, nct=600.0), clock=clock
        )
        if mode == "batched":
            batches = [
                packets[start : start + batch_size]
                for start in range(0, len(packets), batch_size)
            ]
            start_time = clock()
            for batch in batches:
                middlebox.process_batch(batch)
            elapsed = clock() - start_time
        else:
            start_time = clock()
            for packet in packets:
                middlebox.handle(packet)
            elapsed = clock() - start_time
        return len(packets) / elapsed if elapsed else 0.0

    clean_pps = 0.0
    faulted_pps = 0.0
    fault_counts: dict[str, int] = {}
    faulted_len = 0
    for _ in range(rounds):
        store, packets = build_stream()
        clean_pps = max(clean_pps, measure(store, packets))

        store, packets = build_stream()
        injector = FaultInjector(
            FaultPlan(
                drop_rate=fault_rate,
                duplicate_rate=fault_rate,
                reorder_rate=fault_rate,
                corrupt_rate=fault_rate,
                seed=seed,
            )
        )
        sink = Sink(keep=True)
        injector >> sink
        injector.process_batch(packets)
        injector.flush()
        fault_counts = injector.stats.as_dict()
        faulted_len = len(sink.packets)
        faulted_pps = max(faulted_pps, measure(store, sink.packets))

    return {
        "packet_size": packet_size,
        "packets_per_flow": packets_per_flow,
        "mode": mode,
        "fault_rate": fault_rate,
        "seed": seed,
        "clean_pps": clean_pps,
        "faulted_pps": faulted_pps,
        "faulted_over_clean": (
            faulted_pps / clean_pps if clean_pps else 0.0
        ),
        "faulted_stream_packets": faulted_len,
        "faults": fault_counts,
    }


def run_sweep(
    packet_sizes: tuple[int, ...] = PACKET_SIZES,
    flow_lengths: tuple[int, ...] = FLOW_LENGTHS,
    descriptors: int = DEFAULT_DESCRIPTORS,
    flows: int = DEFAULT_FLOWS,
) -> list[Fig4Point]:
    """The full Fig. 4 grid."""
    return [
        run_point(size, length, descriptors=descriptors, flows=flows)
        for length in flow_lengths
        for size in packet_sizes
    ]
