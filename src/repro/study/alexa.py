"""A website popularity index (the Alexa-ranking stand-in).

Fig. 1 plots each boosted website against its Alexa rank; the paper's
takeaway is the *spread* — head sites like netflix.com next to a Greek
radio station ranked past 5000.  This catalog contains the named sites
from Fig. 1 with plausible ranks plus a synthetic long tail, giving the
preference sampler a realistic rank axis.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RankedSite", "AlexaIndex", "FIG1_SITES"]


@dataclass(frozen=True)
class RankedSite:
    """A website with its popularity rank (1 = most popular)."""

    domain: str
    rank: int
    category: str = "other"


#: The sites Fig. 1 names, in rank order (ranks approximate 2015 values).
FIG1_SITES: tuple[RankedSite, ...] = (
    RankedSite("mail.google.com", 1, "email"),
    RankedSite("youtube.com", 2, "video"),
    RankedSite("facebook.com", 3, "social"),
    RankedSite("netflix.com", 28, "video"),
    RankedSite("cnn.com", 75, "news"),
    RankedSite("hulu.com", 223, "video"),
    RankedSite("speedtest.net", 310, "tools"),
    RankedSite("nbc.com", 420, "video"),
    RankedSite("hbo.com", 480, "video"),
    RankedSite("abc.go.com", 530, "video"),
    RankedSite("espn.com", 120, "sports"),
    RankedSite("foxnews.com", 200, "news"),
    RankedSite("ticketmaster.com", 640, "ticketing"),
    RankedSite("espncricinfo.com", 890, "sports"),
    RankedSite("usanetwork.com", 1400, "video"),
    RankedSite("cucirca.eu", 4200, "video"),
    RankedSite("starsports.com", 5100, "sports"),
    RankedSite("ondemandkorea.com", 5600, "video"),
    RankedSite("skai.gr", 6800, "news"),
    RankedSite("intercallonline.com", 8200, "voip"),
)


class AlexaIndex:
    """Popularity lookup plus a synthetic long tail.

    The tail sites (``tail-site-<rank>.example``) fill ranks so that a
    sampler can express "a website only this one user cares about" — 43 %
    of Fig. 1's preferences are exactly that.
    """

    def __init__(
        self,
        named: tuple[RankedSite, ...] = FIG1_SITES,
        tail_count: int = 600,
        max_rank: int = 12_000,
    ) -> None:
        if tail_count <= 0:
            raise ValueError("tail_count must be positive")
        self._sites: dict[str, RankedSite] = {s.domain: s for s in named}
        used_ranks = {s.rank for s in named}
        # Tail ranks spread geometrically from 100 to max_rank.
        ratio = (max_rank / 100.0) ** (1.0 / tail_count)
        rank = 100.0
        added = 0
        while added < tail_count:
            rank *= ratio
            candidate = int(rank)
            while candidate in used_ranks:
                candidate += 1
            used_ranks.add(candidate)
            domain = f"tail-site-{candidate}.example"
            self._sites[domain] = RankedSite(domain, candidate, "tail")
            added += 1

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, domain: str) -> bool:
        return domain in self._sites

    def rank(self, domain: str) -> int | None:
        """The popularity index of a domain, or None if unranked."""
        site = self._sites.get(domain)
        return site.rank if site is not None else None

    def sites(self) -> list[RankedSite]:
        """All sites, most popular first."""
        return sorted(self._sites.values(), key=lambda s: s.rank)

    def named_sites(self) -> list[RankedSite]:
        """Only the real (non-synthetic) sites."""
        return [s for s in self.sites() if s.category != "tail"]
