"""The sharded control plane's front door (PROTOCOL.md §14).

:class:`ShardedControlPlane` replaces a single
:class:`~repro.core.server.CookieServer` with N
:class:`~.shard.ControlPlaneShard` partitions keyed by the data plane's
rendezvous hash.  The dispatcher mints cookie ids, routes every op to the
owning shard, and layers on the distributed-systems duties the shards
themselves stay ignorant of:

* **Replication** — verifier replicas register here; revocations are
  broadcast eagerly to every reachable replica and an anti-entropy
  :meth:`sync_replicas` tick converges the rest, with every
  revocation-to-enforcement lag sample observed into a histogram and
  checked against :attr:`staleness_bound`.
* **Catch-up** — a replica returning from a partition replays the delta
  log from its applied offset; if compaction truncated that window it
  gets snapshot-then-replay instead.
* **Load shedding** — an admission gate (:meth:`admit`/:meth:`release`)
  caps in-flight requests and consults the PR-4
  :class:`~repro.core.resilience.CircuitBreaker`; over-limit or
  breaker-open arrivals get a structured ``{"shed": true}`` error
  instead of unbounded queueing.
* **Process mode** — each shard can run in a worker process served over
  a pipe (§14.4).  The parent retains an authoritative delta log +
  descriptor mirror per worker shard, so replica sync never blocks on a
  worker round-trip and a crashed worker is respawned and re-seeded
  from the mirror.  ``mode="auto"`` picks process workers only when the
  host has cores to back them, mirroring the PR-6 degrade ladder.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..descriptor import COOKIE_ID_BITS, CookieDescriptor
from ..distributed import rendezvous_shard
from ..errors import AcquisitionDenied
from ..policy import AccessPolicy, OpenAccessPolicy
from ..resilience import CircuitBreaker
from ..server import ServiceOffering
from ...telemetry.metrics import Histogram, TelemetrySnapshot
from .deltalog import DeltaLog, LogTruncated, StoreSnapshot
from .replica import ReplicaUnreachable, VerifierReplica
from .shard import ControlPlaneShard, offering_to_json, shard_worker_main

__all__ = ["ControlPlaneStats", "ShardedControlPlane", "BROADCAST_LAG_BUCKETS"]

#: Broadcast-lag histogram buckets (seconds) — sub-millisecond resolution
#: at the bottom because an eager in-process broadcast completes in
#: microseconds, stretching to the multi-second partition-recovery tail.
BROADCAST_LAG_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class _ShardFailure(Exception):
    """A worker shard's pipe died mid-request."""


@dataclass
class ControlPlaneStats:
    """Dispatcher-level accounting (shards keep their own op counters)."""

    acquired: int = 0
    denied: int = 0
    revoked: int = 0
    removed: int = 0
    renewed: int = 0
    shed_pending: int = 0
    shed_breaker: int = 0
    worker_failures: int = 0
    syncs: int = 0
    snapshot_catchups: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _LocalShard:
    """In-process shard handle: direct calls, the shard's log is ours."""

    mode = "in-process"

    def __init__(self, shard: ControlPlaneShard) -> None:
        self.shard = shard
        self.degraded = False

    @property
    def log(self) -> DeltaLog:
        return self.shard.log

    def offer(self, offering: ServiceOffering) -> None:
        self.shard.offer(offering)

    def withdraw(self, name: str) -> None:
        self.shard.withdraw_offering(name)

    def acquire_batch(
        self, requests: list[tuple], now: float
    ) -> tuple[list[dict[str, Any] | None], list[str | None]]:
        descriptors: list[dict[str, Any] | None] = []
        errors: list[str | None] = []
        for entry in requests:
            try:
                descriptor = self.shard.acquire(
                    entry[0],
                    entry[1],
                    now,
                    cookie_id=entry[2],
                    credentials=entry[3] if len(entry) > 3 else None,
                    preferences=entry[4] if len(entry) > 4 else None,
                )
            except AcquisitionDenied as exc:
                descriptors.append(None)
                errors.append(str(exc))
            else:
                descriptors.append(descriptor.to_json())
                errors.append(None)
        return descriptors, errors

    def revoke_batch(self, cookie_ids: list[int], now: float) -> list[bool]:
        return [self.shard.revoke(cid, now) for cid in cookie_ids]

    def remove_batch(self, cookie_ids: list[int], now: float) -> list[bool]:
        return [self.shard.remove(cid, now) for cid in cookie_ids]

    def purge_expired(self, now: float) -> int:
        return len(self.shard.purge_expired(now))

    def lookup(self, cookie_id: int) -> dict[str, Any] | None:
        descriptor = self.shard.lookup(cookie_id)
        return None if descriptor is None else descriptor.to_json()

    def snapshot(self) -> StoreSnapshot:
        return self.shard.snapshot()

    def stats(self) -> dict[str, int]:
        return self.shard.stats()

    def close(self) -> None:
        pass


class _WorkerShard:
    """Process-mode shard handle: §14.4 frames over a pipe.

    The parent-side :class:`DeltaLog` and descriptor mirror are the
    authoritative replication feed — the worker owns *serving* state
    (policy checks, key minting, its own store), the parent owns
    *replication* state.  The mirror is copy-on-write under revocation
    so logged ``add`` records keep their original descriptor payloads.
    """

    mode = "process"

    def __init__(
        self,
        index: int,
        policy: AccessPolicy | None,
        ctx: multiprocessing.context.BaseContext,
    ) -> None:
        self.index = index
        self.policy = policy
        self.ctx = ctx
        self.log = DeltaLog()
        self.mirror: dict[int, dict[str, Any]] = {}
        self.offerings: dict[str, dict[str, Any]] = {}
        self.degraded = False
        self.restarts = 0
        self._local: ControlPlaneShard | None = None
        self._conn: Any = None
        self._process: Any = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe()
        process = self.ctx.Process(
            target=shard_worker_main,
            args=(child_conn, self.index, self.policy),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conn, self._process = parent_conn, process
        # Re-seed a fresh worker with the authoritative parent state.
        if self.mirror or self.log.next_offset:
            self._roundtrip(
                {
                    "op": "install",
                    "snapshot": StoreSnapshot(
                        offset=self.log.next_offset,
                        descriptors=list(self.mirror.values()),
                    ).to_json(),
                }
            )
        for offering in self.offerings.values():
            self._roundtrip({"op": "offer", "offering": offering})

    def _roundtrip(self, frame: dict[str, Any]) -> dict[str, Any]:
        try:
            self._conn.send(frame)
            return self._conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise _ShardFailure(str(exc)) from exc

    def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One frame with a single restart-and-retry on worker death."""
        try:
            return self._roundtrip(frame)
        except _ShardFailure:
            self.restart()
            return self._roundtrip(frame)

    def restart(self) -> None:
        """Respawn the worker, re-seeded from the parent mirror; falls
        back to a degraded in-process shard when spawning itself fails."""
        self.close(graceful=False)
        self.restarts += 1
        try:
            self._spawn()
        except OSError:
            self.degraded = True
            self._local = ControlPlaneShard(self.index, policy=self.policy)
            StoreSnapshot(
                offset=self.log.next_offset,
                descriptors=list(self.mirror.values()),
            ).install(self._local.store)
            self._local.log = DeltaLog(base_offset=self.log.next_offset)
            from .shard import _offering_from_json

            for offering in self.offerings.values():
                self._local.offer(_offering_from_json(offering))

    def offer(self, offering: ServiceOffering) -> None:
        if offering.attribute_factory is not None:
            raise ValueError(
                "process-mode shards cannot ship attribute_factory "
                "closures; use lifetime-based offerings or in-process mode"
            )
        data = offering_to_json(offering)
        self.offerings[offering.name] = data
        if self.degraded:
            assert self._local is not None
            self._local.offer(offering)
        else:
            self._request({"op": "offer", "offering": data})

    def withdraw(self, name: str) -> None:
        self.offerings.pop(name, None)
        if self.degraded:
            assert self._local is not None
            self._local.withdraw_offering(name)
        else:
            self._request({"op": "withdraw", "name": name})

    def acquire_batch(
        self, requests: list[tuple[str, str, int]], now: float
    ) -> tuple[list[dict[str, Any] | None], list[str | None]]:
        if self.degraded:
            assert self._local is not None
            descriptors, errors = _LocalShard(self._local).acquire_batch(
                requests, now
            )
        else:
            response = self._request(
                {"op": "acquire_batch", "now": now, "requests": requests}
            )
            descriptors = response["descriptors"]
            errors = response["errors"]
        for data in descriptors:
            if data is not None:
                cookie_id = int(data["cookie_id"])
                self.mirror[cookie_id] = data
                self.log.append("add", cookie_id, now, data)
        return descriptors, errors

    def revoke_batch(self, cookie_ids: list[int], now: float) -> list[bool]:
        if self.degraded:
            assert self._local is not None
            revoked = [self._local.revoke(cid, now) for cid in cookie_ids]
        else:
            response = self._request(
                {"op": "revoke_batch", "now": now, "cookie_ids": cookie_ids}
            )
            revoked = response["revoked"]
        for cookie_id, ok in zip(cookie_ids, revoked):
            if ok:
                # Copy-on-write: the "add" record in the log still
                # references the original un-revoked payload.
                self.mirror[cookie_id] = {**self.mirror[cookie_id], "revoked": True}
                self.log.append("revoke", cookie_id, now)
        return revoked

    def remove_batch(self, cookie_ids: list[int], now: float) -> list[bool]:
        if self.degraded:
            assert self._local is not None
            removed = [self._local.remove(cid, now) for cid in cookie_ids]
        else:
            response = self._request(
                {"op": "remove_batch", "now": now, "cookie_ids": cookie_ids}
            )
            removed = response["removed"]
        for cookie_id, ok in zip(cookie_ids, removed):
            if ok:
                self.mirror.pop(cookie_id, None)
                self.log.append("remove", cookie_id, now)
        return removed

    def purge_expired(self, now: float) -> int:
        if self.degraded:
            assert self._local is not None
            removed_ids = [r for r in self._local.purge_expired(now)]
        else:
            response = self._request({"op": "purge_expired", "now": now})
            removed_ids = [int(cid) for cid in response["removed_ids"]]
        for cookie_id in removed_ids:
            self.mirror.pop(cookie_id, None)
            self.log.append("remove", cookie_id, now)
        return len(removed_ids)

    def lookup(self, cookie_id: int) -> dict[str, Any] | None:
        # The mirror is authoritative and saves a worker round-trip.
        return self.mirror.get(cookie_id)

    def snapshot(self) -> StoreSnapshot:
        return StoreSnapshot(
            offset=self.log.next_offset,
            descriptors=list(self.mirror.values()),
        )

    def stats(self) -> dict[str, int]:
        if self.degraded:
            assert self._local is not None
            stats = self._local.stats()
        else:
            try:
                stats = self._request({"op": "stats"})["stats"]
            except _ShardFailure:
                stats = {"shard": self.index}
        stats["log_len"] = len(self.log)
        stats["log_base"] = self.log.base_offset
        stats["log_next"] = self.log.next_offset
        stats["descriptors"] = len(self.mirror)
        stats["restarts"] = self.restarts
        stats["degraded"] = self.degraded
        return stats

    def kill(self) -> None:
        """Hard-kill the worker (drill hook for crash-recovery tests)."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def close(self, graceful: bool = True) -> None:
        if self._conn is not None:
            if graceful:
                try:
                    self._conn.send({"op": "quit"})
                    self._conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._process is not None:
            self._process.join(timeout=5.0)
            if self._process.is_alive():
                self._process.kill()
                self._process.join(timeout=5.0)
            self._process = None


class ShardedControlPlane:
    """N rendezvous-hashed shards behind one CookieServer-shaped API."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        shards: int = 1,
        mode: str = "auto",
        policy: AccessPolicy | None = None,
        staleness_bound: float = 1.0,
        max_pending: int = 1024,
        breaker: CircuitBreaker | None = None,
        eager_broadcast: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        if mode not in ("in-process", "process", "auto"):
            raise ValueError(f"unknown mode {mode!r}")
        if staleness_bound <= 0:
            raise ValueError("staleness bound must be positive")
        self.clock = clock
        self.shard_count = shards
        self.policy = policy if policy is not None else OpenAccessPolicy()
        self.staleness_bound = staleness_bound
        self.max_pending = max_pending
        self.eager_broadcast = eager_broadcast
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=5, reset_timeout=5.0, clock=clock)
        )
        if mode == "auto":
            cores = os.cpu_count() or 1
            mode = "process" if shards > 1 and cores >= 2 else "in-process"
        self.mode = mode
        self.offerings: dict[str, ServiceOffering] = {}
        self.stats = ControlPlaneStats()
        self.inflight = 0
        self._lag_histogram = Histogram(
            "cp.broadcast_lag_s", buckets=BROADCAST_LAG_BUCKETS
        )
        self._replicas: dict[str, VerifierReplica] = {}
        #: unconfirmed revocations: [shard, offset, revoke_time, {replica}]
        self._pending_revocations: list[list[Any]] = []
        self._shards: list[Any]
        if mode == "process":
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            self._shards = [
                _WorkerShard(i, self.policy, ctx) for i in range(shards)
            ]
        else:
            self._shards = [
                _LocalShard(ControlPlaneShard(i, policy=self.policy))
                for i in range(shards)
            ]

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def offer(self, offering: ServiceOffering) -> ServiceOffering:
        """Advertise a service on every shard (any id can land anywhere)."""
        self.offerings[offering.name] = offering
        for handle in self._shards:
            handle.offer(offering)
        return offering

    def withdraw_offering(self, name: str) -> None:
        self.offerings.pop(name, None)
        for handle in self._shards:
            handle.withdraw(name)

    def list_services(self) -> list[dict[str, Any]]:
        return [o.advertisement() for o in self.offerings.values()]

    def shard_of(self, cookie_id: int) -> int:
        return rendezvous_shard(cookie_id, self.shard_count)

    # ------------------------------------------------------------------
    # Admission control (load shedding)
    # ------------------------------------------------------------------
    def admit(self) -> dict[str, Any] | None:
        """Admission gate for one request; ``None`` means admitted and
        the caller owes a :meth:`release`.  A dict is the structured
        shed response (§14.6) to return without doing any work."""
        if not self.breaker.allow():
            self.stats.shed_breaker += 1
            return {
                "ok": False,
                "shed": True,
                "error": "control plane shedding load: circuit breaker open",
            }
        if self.inflight >= self.max_pending:
            self.stats.shed_pending += 1
            return {
                "ok": False,
                "shed": True,
                "error": (
                    f"control plane shedding load: {self.inflight} requests "
                    f"pending (limit {self.max_pending})"
                ),
            }
        self.inflight += 1
        return None

    def release(self) -> None:
        self.inflight = max(0, self.inflight - 1)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _mint_ids(self, n: int) -> list[int]:
        return [secrets.randbits(COOKIE_ID_BITS) for _ in range(n)]

    def acquire_batch(
        self, requests: Sequence[Sequence[Any]], now: float | None = None
    ) -> list[dict[str, Any]]:
        """Issue descriptors for ``(user, service[, credentials,
        preferences])`` tuples, routed and dispatched per shard.

        Returns one ``{"ok": ..., "descriptor"/"error": ...}`` per
        request, in order.
        """
        if now is None:
            now = self.clock()
        ids = self._mint_ids(len(requests))
        by_shard: dict[int, list[int]] = {}
        for position, cookie_id in enumerate(ids):
            by_shard.setdefault(self.shard_of(cookie_id), []).append(position)
        results: list[dict[str, Any] | None] = [None] * len(requests)
        for shard_index, positions in by_shard.items():
            shard_requests = [
                (requests[p][0], requests[p][1], ids[p], *requests[p][2:])
                for p in positions
            ]
            try:
                descriptors, errors = self._shards[shard_index].acquire_batch(
                    shard_requests, now
                )
                self.breaker.record_success()
            except _ShardFailure as exc:
                self.breaker.record_failure()
                self.stats.worker_failures += 1
                for p in positions:
                    results[p] = {
                        "ok": False,
                        "error": f"shard {shard_index} unavailable: {exc}",
                    }
                continue
            for p, descriptor, error in zip(positions, descriptors, errors):
                if descriptor is None:
                    self.stats.denied += 1
                    results[p] = {"ok": False, "error": error}
                else:
                    self.stats.acquired += 1
                    results[p] = {"ok": True, "descriptor": descriptor}
        return results  # type: ignore[return-value]

    def acquire(
        self,
        user: str,
        service: str,
        credentials: dict[str, Any] | None = None,
        preferences: dict[str, Any] | None = None,
    ) -> CookieDescriptor:
        """Single-descriptor acquisition, CookieServer-compatible."""
        result = self.acquire_batch(
            [(user, service, credentials, preferences)]
        )[0]
        if not result["ok"]:
            raise AcquisitionDenied(result["error"])
        return CookieDescriptor.from_json(result["descriptor"])

    def revoke_batch(
        self, cookie_ids: list[int], now: float | None = None
    ) -> list[bool]:
        """Revoke many descriptors, then broadcast to replicas at once."""
        if now is None:
            now = self.clock()
        by_shard: dict[int, list[int]] = {}
        for position, cookie_id in enumerate(cookie_ids):
            by_shard.setdefault(self.shard_of(cookie_id), []).append(position)
        revoked: list[bool] = [False] * len(cookie_ids)
        touched: set[int] = set()
        for shard_index, positions in by_shard.items():
            handle = self._shards[shard_index]
            try:
                outcome = handle.revoke_batch(
                    [cookie_ids[p] for p in positions], now
                )
                self.breaker.record_success()
            except _ShardFailure:
                self.breaker.record_failure()
                self.stats.worker_failures += 1
                continue
            for p, ok in zip(positions, outcome):
                revoked[p] = ok
            if any(outcome):
                touched.add(shard_index)
                self.stats.revoked += sum(outcome)
                if self._replicas:
                    self._pending_revocations.append(
                        [
                            shard_index,
                            handle.log.next_offset - 1,
                            now,
                            set(self._replicas),
                        ]
                    )
        if touched and self.eager_broadcast and self._replicas:
            self.sync_replicas(shards=touched)
        return revoked

    def revoke(self, cookie_id: int, by: str = "network") -> bool:
        del by
        return self.revoke_batch([cookie_id])[0]

    def renew(
        self,
        user: str,
        cookie_id: int,
        credentials: dict[str, Any] | None = None,
    ) -> CookieDescriptor:
        """Fresh descriptor for the old one's service; the old one stays
        valid until expiry (matching :class:`CookieServer.renew`)."""
        old = self.lookup(cookie_id)
        if old is None:
            raise AcquisitionDenied(f"descriptor {cookie_id:#x} unknown")
        descriptor = self.acquire(
            user, str(old.service_data), credentials=credentials
        )
        self.stats.renewed += 1
        return descriptor

    def lookup(self, cookie_id: int) -> CookieDescriptor | None:
        data = self._shards[self.shard_of(cookie_id)].lookup(cookie_id)
        return None if data is None else CookieDescriptor.from_json(data)

    def purge_expired(self, now: float | None = None) -> int:
        if now is None:
            now = self.clock()
        purged = 0
        for handle in self._shards:
            try:
                purged += handle.purge_expired(now)
            except _ShardFailure:
                self.stats.worker_failures += 1
        self.stats.removed += purged
        return purged

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def register_replica(self, replica: VerifierReplica) -> VerifierReplica:
        """Attach a verifier replica and bring it current immediately."""
        self._replicas[replica.name] = replica
        self.sync_replicas(replicas=[replica.name])
        return replica

    def unregister_replica(self, name: str) -> bool:
        existed = self._replicas.pop(name, None) is not None
        for pending in self._pending_revocations:
            pending[3].discard(name)
        self._pending_revocations = [
            p for p in self._pending_revocations if p[3]
        ]
        return existed

    def sync_replicas(
        self,
        shards: set[int] | None = None,
        replicas: list[str] | None = None,
    ) -> int:
        """One anti-entropy pass: push every reachable replica to the
        head of each (selected) shard's log; snapshot-then-replay when
        the replica's offset precedes the compaction horizon.  Returns
        the number of (replica, shard) syncs that made progress.

        Calling this at least once per :attr:`staleness_bound` is what
        *makes* the bound hold; :meth:`revoke_batch` additionally calls
        it eagerly so the common-case lag is one broadcast, not one
        anti-entropy period.
        """
        now = self.clock()
        progressed = 0
        names = replicas if replicas is not None else list(self._replicas)
        shard_indices = (
            sorted(shards) if shards is not None else range(self.shard_count)
        )
        for name in names:
            replica = self._replicas.get(name)
            if replica is None or replica.partitioned:
                continue
            for shard_index in shard_indices:
                handle = self._shards[shard_index]
                applied = replica.applied_offset(shard_index)
                if applied >= handle.log.next_offset:
                    continue
                try:
                    try:
                        records = handle.log.since(applied)
                    except LogTruncated:
                        snapshot = handle.snapshot()
                        replica.install_snapshot(
                            shard_index, snapshot, self.shard_count
                        )
                        self.stats.snapshot_catchups += 1
                        records = []
                    if records:
                        replica.apply_deltas(shard_index, records, now=now)
                except ReplicaUnreachable:
                    break
                progressed += 1
            self._settle_pending(replica, now)
        self.stats.syncs += 1
        return progressed

    def _settle_pending(self, replica: VerifierReplica, now: float) -> None:
        """Observe broadcast lag for revocations this replica now holds."""
        still_pending: list[list[Any]] = []
        for pending in self._pending_revocations:
            shard_index, offset, revoke_time, remaining = pending
            if (
                replica.name in remaining
                and replica.applied_offset(shard_index) > offset
            ):
                self._lag_histogram.observe(max(0.0, now - revoke_time))
                remaining.discard(replica.name)
            if remaining:
                still_pending.append(pending)
        self._pending_revocations = still_pending

    def compact_logs(self, aggressive: bool = False) -> int:
        """Compact each shard's log.

        Default horizon is the slowest replica's applied offset (safe:
        nobody needs the dropped prefix).  ``aggressive=True`` compacts
        to the head regardless — the partition drill uses it to force a
        returning replica down the snapshot-then-replay path.
        """
        dropped = 0
        for shard_index, handle in enumerate(self._shards):
            if aggressive:
                horizon = handle.log.next_offset
            elif self._replicas:
                horizon = min(
                    r.applied_offset(shard_index)
                    for r in self._replicas.values()
                )
            else:
                horizon = handle.log.next_offset
            dropped += handle.log.compact_to(horizon)
        return dropped

    # ------------------------------------------------------------------
    # JSON API (CookieServer-compatible, plus §14 extensions)
    # ------------------------------------------------------------------
    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        try:
            if op == "list_services":
                return {"ok": True, "services": self.list_services()}
            if op == "acquire":
                return self.acquire_batch(
                    [
                        (
                            str(request.get("user", "anonymous")),
                            str(request.get("service", "")),
                            request.get("credentials"),
                            request.get("preferences"),
                        )
                    ]
                )[0]
            if op == "acquire_batch":
                return {
                    "ok": True,
                    "results": self.acquire_batch(
                        [
                            (str(entry[0]), str(entry[1]), *entry[2:4])
                            for entry in request["requests"]
                        ]
                    ),
                }
            if op == "revoke":
                revoked = self.revoke(int(request["cookie_id"]))
                return {"ok": revoked, "error": None if revoked else "unknown id"}
            if op == "renew":
                descriptor = self.renew(
                    user=str(request.get("user", "anonymous")),
                    cookie_id=int(request["cookie_id"]),
                    credentials=request.get("credentials"),
                )
                return {"ok": True, "descriptor": descriptor.to_json()}
            if op == "snapshot":
                shard_index = int(request["shard"])
                snapshot = self._shards[shard_index].snapshot()
                return {"ok": True, "snapshot": snapshot.to_json()}
            if op == "deltas_since":
                shard_index = int(request["shard"])
                offset = int(request["offset"])
                try:
                    records = self._shards[shard_index].log.since(offset)
                except LogTruncated as exc:
                    return {"ok": False, "truncated": True, "error": str(exc)}
                return {
                    "ok": True,
                    "records": [r.to_json() for r in records],
                    "next_offset": self._shards[shard_index].log.next_offset,
                }
            if op == "stats":
                return {"ok": True, "stats": self.describe()}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except AcquisitionDenied as exc:
            return {"ok": False, "error": str(exc)}
        except IndexError:
            return {"ok": False, "error": "unknown shard"}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}

    # ------------------------------------------------------------------
    # Introspection / telemetry
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[dict[str, int]]:
        return [handle.stats() for handle in self._shards]

    @property
    def worker_restarts(self) -> int:
        return sum(getattr(handle, "restarts", 0) for handle in self._shards)

    def max_broadcast_lag(self) -> float:
        """Largest settled revocation-to-enforcement lag seen so far."""
        data = self._lag_histogram.snapshot()
        if data.count == 0:
            return 0.0
        return data.quantile(1.0)

    def describe(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "shards": self.shard_count,
            "staleness_bound": self.staleness_bound,
            "max_pending": self.max_pending,
            "inflight": self.inflight,
            "breaker_state": self.breaker.state,
            "replicas": {
                name: replica.stats()
                for name, replica in self._replicas.items()
            },
            "pending_revocations": len(self._pending_revocations),
            "worker_restarts": self.worker_restarts,
            "dispatcher": self.stats.as_dict(),
            "shard_stats": self.shard_stats(),
        }

    def register_telemetry(
        self, registry: Any, prefix: str = "cp"
    ) -> None:
        """Fold per-shard ops, log lengths, shed counts, and the
        broadcast-lag histogram into a PR-1 metrics registry."""

        def collect() -> TelemetrySnapshot:
            counters: dict[str, float] = {
                f"{prefix}.acquired": self.stats.acquired,
                f"{prefix}.denied": self.stats.denied,
                f"{prefix}.revoked": self.stats.revoked,
                f"{prefix}.removed": self.stats.removed,
                f"{prefix}.renewed": self.stats.renewed,
                f"{prefix}.shed_pending": self.stats.shed_pending,
                f"{prefix}.shed_breaker": self.stats.shed_breaker,
                f"{prefix}.worker_restarts": self.worker_restarts,
                f"{prefix}.worker_failures": self.stats.worker_failures,
                f"{prefix}.syncs": self.stats.syncs,
                f"{prefix}.snapshot_catchups": self.stats.snapshot_catchups,
            }
            gauges: dict[str, float] = {
                f"{prefix}.shards": self.shard_count,
                f"{prefix}.replicas": len(self._replicas),
                f"{prefix}.inflight": self.inflight,
                f"{prefix}.pending_revocations": len(self._pending_revocations),
            }
            for stats in self.shard_stats():
                shard_index = stats.get("shard", 0)
                counters[f"{prefix}.shard{shard_index}.acquired"] = stats.get(
                    "acquired", 0
                )
                gauges[f"{prefix}.shard{shard_index}.log_len"] = stats.get(
                    "log_len", 0
                )
                gauges[f"{prefix}.shard{shard_index}.descriptors"] = stats.get(
                    "descriptors", 0
                )
            return TelemetrySnapshot(
                counters=counters,
                gauges=gauges,
                histograms={
                    f"{prefix}.broadcast_lag_s": self._lag_histogram.snapshot()
                },
            )

        registry.register_collector(f"{prefix}.controlplane", collect)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for handle in self._shards:
            handle.close()

    def __enter__(self) -> "ShardedControlPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
