"""Cookie verification and matching (the network half of Listing 3).

The verifier accepts a cookie iff:

1. the cookie id is known (a descriptor exists in the store),
2. the descriptor is usable (not revoked, not expired),
3. the HMAC digest verifies under the descriptor key,
4. the timestamp lies within the Network Coherency Time of now, and
5. the uuid has not been seen before *for this descriptor* (no replay).

Replay scope is per descriptor: the cache key is ``cookie_id || uuid``, so
two descriptors minting the same uuid do not collide.  This matches the
sharded deployments (§4.6 relaxes uniqueness to what is locally
verifiable): descriptor-affine shards each keep their own replay cache, so
cross-descriptor uuid collisions land on different shards and were never
detectable there.  Keying the scalar matcher the same way makes scalar,
sharded, and multi-process verdicts identical by construction.

The NCT — "the maximum time we expect a packet to live within the network"
— defaults to the paper's 5 seconds.  It bounds both clock skew tolerance
and the replay cache's memory: uuids older than NCT can be forgotten
because rule 4 already rejects them.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from typing import Sequence

from .cookie import Cookie, SignerCache
from .descriptor import CookieDescriptor
from .errors import (
    CookieError,
    DescriptorExpired,
    DescriptorRevoked,
    InvalidSignature,
    ReplayDetected,
    StaleTimestamp,
    UnknownDescriptor,
)
from .store import DescriptorStore

__all__ = [
    "ReplayCache",
    "ShardedReplayCache",
    "MatchStats",
    "CookieMatcher",
    "NETWORK_COHERENCY_TIME",
]

NETWORK_COHERENCY_TIME = 5.0


class ReplayCache:
    """Remembers recently seen cookie uuids for the coherency window.

    Implemented as two rotating generation sets, each covering one NCT-wide
    interval.  Membership is checked against both generations (so coverage
    is always at least NCT); inserts go to the current generation.  Memory
    is bounded by the arrival rate times 2×NCT regardless of how long the
    verifier runs — the property the paper relies on when it says the
    timestamp "reduces state kept by the network".
    """

    def __init__(self, window: float = NETWORK_COHERENCY_TIME) -> None:
        if window <= 0:
            raise ValueError("replay window must be positive")
        self.window = window
        self._current: set[bytes] = set()
        self._previous: set[bytes] = set()
        self._generation_start = 0.0
        #: Generation swaps since construction (telemetry: a healthy cache
        #: rotates ~1/NCT per second under load; a stalled count under
        #: traffic means the clock is not advancing).
        self.rotations = 0
        #: Multi-window idle periods that fast-forwarded both generations.
        self.idle_resets = 0

    def _rotate(self, now: float) -> None:
        while now - self._generation_start >= self.window:
            self._previous = self._current
            self._current = set()
            self._generation_start += self.window
            self.rotations += 1
            # If we've been idle for multiple windows, fast-forward.
            if now - self._generation_start >= self.window:
                self._previous = set()
                self._generation_start = now
                self.idle_resets += 1
                break

    def seen_before(self, uuid: bytes, now: float) -> bool:
        """Check membership without recording."""
        self._rotate(now)
        return uuid in self._current or uuid in self._previous

    def record(self, uuid: bytes, now: float) -> None:
        """Record a uuid as seen at ``now``."""
        self._rotate(now)
        self._current.add(uuid)

    def check_and_record(self, uuid: bytes, now: float) -> bool:
        """Atomically test-and-set; returns True if this is a replay."""
        if self.seen_before(uuid, now):
            return True
        self._current.add(uuid)
        return False

    @property
    def size(self) -> int:
        """Number of uuids currently remembered (both generations)."""
        return len(self._current) + len(self._previous)

    @property
    def generation_age(self) -> float:
        """Window start of the current generation (simulation seconds)."""
        return self._generation_start


class ShardedReplayCache:
    """N independent :class:`ReplayCache` shards behind one facade.

    Each uuid maps deterministically to one shard, so test-and-set for a
    given uuid always touches the same two generation sets — a cookie
    replayed after its shard rotated is still caught by that shard's
    previous generation, exactly as in the unsharded cache.  Sharding
    exists to cut per-dict contention when the batched data path is split
    across workers: a worker holding shard *i* never touches shard *j*'s
    sets, and per-shard rotation/idle-reset bookkeeping is byte-identical
    to running N unsharded caches side by side.

    Rotation is per shard and lazily driven by the traffic that reaches
    it (same as the unsharded cache, whose rotation is driven by calls):
    a shard's generations advance only when one of *its* uuids is looked
    up.  Aggregate telemetry (``size``/``rotations``/``idle_resets``)
    sums the shards.
    """

    def __init__(
        self, window: float = NETWORK_COHERENCY_TIME, shards: int = 4
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one replay shard")
        self.window = window
        self._shards = [ReplayCache(window=window) for _ in range(shards)]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, uuid: bytes) -> int:
        """Deterministic uuid → shard mapping (stable across calls)."""
        return int.from_bytes(uuid[-4:], "big") % len(self._shards)

    def shard(self, index: int) -> ReplayCache:
        """Direct access to one shard (tests and per-worker dispatch)."""
        return self._shards[index]

    def seen_before(self, uuid: bytes, now: float) -> bool:
        return self._shards[self.shard_for(uuid)].seen_before(uuid, now)

    def record(self, uuid: bytes, now: float) -> None:
        self._shards[self.shard_for(uuid)].record(uuid, now)

    def check_and_record(self, uuid: bytes, now: float) -> bool:
        return self._shards[self.shard_for(uuid)].check_and_record(uuid, now)

    @property
    def size(self) -> int:
        return sum(shard.size for shard in self._shards)

    @property
    def rotations(self) -> int:
        return sum(shard.rotations for shard in self._shards)

    @property
    def idle_resets(self) -> int:
        return sum(shard.idle_resets for shard in self._shards)


@dataclass
class MatchStats:
    """Outcome counters kept by a :class:`CookieMatcher`."""

    accepted: int = 0
    unknown_id: int = 0
    bad_signature: int = 0
    stale_timestamp: int = 0
    replayed: int = 0
    revoked: int = 0
    expired: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.unknown_id
            + self.bad_signature
            + self.stale_timestamp
            + self.replayed
            + self.revoked
            + self.expired
        )

    @property
    def total(self) -> int:
        return self.accepted + self.rejected

    def as_dict(self) -> dict[str, int]:
        return {
            "accepted": self.accepted,
            "unknown_id": self.unknown_id,
            "bad_signature": self.bad_signature,
            "stale_timestamp": self.stale_timestamp,
            "replayed": self.replayed,
            "revoked": self.revoked,
            "expired": self.expired,
        }


class CookieMatcher:
    """Verifies cookies against a descriptor store.

    :meth:`verify` raises a typed :class:`~repro.core.errors.CookieError`
    on each failure mode; :meth:`match` is the data-path form that returns
    the descriptor or ``None`` and only counts — matching the paper's "if
    it fails to match, it behaves as if the cookie was not there".
    """

    def __init__(
        self,
        store: DescriptorStore,
        nct: float = NETWORK_COHERENCY_TIME,
        replay_cache: ReplayCache | ShardedReplayCache | None = None,
        telemetry: "object | None" = None,
        telemetry_prefix: str = "matcher",
    ) -> None:
        if nct <= 0:
            raise ValueError("network coherency time must be positive")
        self.store = store
        self.nct = nct
        # The cache window is 2×NCT, not NCT: a cookie stamped by a
        # clock running up to NCT *ahead* stays timestamp-fresh until
        # ts+NCT — as much as 2×NCT after the earliest instant it could
        # first be spent (ts-NCT).  A cache retaining only ≥NCT rotates
        # such a uuid out while the cookie is still acceptable, opening
        # a replay window (found by the chaos soak under clock skew).
        self.replay_cache = replay_cache or ReplayCache(window=2 * nct)
        self.stats = MatchStats()
        self._signers = SignerCache()
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    def register_telemetry(
        self,
        registry,
        prefix: str = "matcher",
        collector_name: str | None = None,
    ) -> None:
        """Export :class:`MatchStats` and the replay cache's size/rotation
        levels into a :class:`~repro.telemetry.MetricsRegistry`, as a
        collector named ``collector_name`` (default: ``prefix``;
        idempotent).  Passing a distinct ``collector_name`` lets N shard
        matchers share one metric prefix — the registry sums duplicate
        metric names across collectors into pool totals."""
        from ..telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            counters = {
                f"{prefix}.{outcome}": count
                for outcome, count in self.stats.as_dict().items()
            }
            counters[f"{prefix}.replay_cache.rotations"] = (
                self.replay_cache.rotations
            )
            counters[f"{prefix}.replay_cache.idle_resets"] = (
                self.replay_cache.idle_resets
            )
            return TelemetrySnapshot(
                counters=counters,
                gauges={
                    f"{prefix}.replay_cache.size": self.replay_cache.size,
                },
            )

        registry.register_collector(collector_name or prefix, collect)

    def verify(self, cookie: Cookie, now: float) -> CookieDescriptor:
        """Full verification; returns the descriptor or raises."""
        descriptor = self.store.get(cookie.cookie_id)
        if descriptor is None:
            self.stats.unknown_id += 1
            raise UnknownDescriptor(f"no descriptor {cookie.cookie_id:#x}")
        if descriptor.revoked:
            self.stats.revoked += 1
            raise DescriptorRevoked(f"descriptor {cookie.cookie_id:#x} revoked")
        if descriptor.attributes.is_expired(now):
            self.stats.expired += 1
            raise DescriptorExpired(f"descriptor {cookie.cookie_id:#x} expired")
        if not cookie.verify_signature(descriptor):
            self.stats.bad_signature += 1
            raise InvalidSignature(f"bad digest for {cookie.cookie_id:#x}")
        if abs(cookie.timestamp - now) > self.nct:
            self.stats.stale_timestamp += 1
            raise StaleTimestamp(
                f"timestamp {cookie.timestamp} outside NCT of {now}"
            )
        replay_key = cookie.cookie_id.to_bytes(8, "big") + cookie.uuid
        if self.replay_cache.check_and_record(replay_key, now):
            self.stats.replayed += 1
            raise ReplayDetected(f"uuid {cookie.uuid.hex()} already seen")
        self.stats.accepted += 1
        return descriptor

    def match(self, cookie: Cookie, now: float) -> CookieDescriptor | None:
        """Data-path verification: descriptor on success, None on failure."""
        try:
            return self.verify(cookie, now)
        except CookieError:
            return None

    # ------------------------------------------------------------------
    # Batched data path
    # ------------------------------------------------------------------
    def match_batch(
        self,
        cookies: Sequence[Cookie],
        now: float,
        reasons: list[str] | None = None,
    ) -> list[CookieDescriptor | None]:
        """Verify a batch of cookies observed at one instant.

        Result i equals what ``match(cookies[i], now)`` would have
        returned in a sequential left-to-right pass — including replay
        interactions *within* the batch (the first occurrence of a uuid
        wins, later ones are replays) and identical :class:`MatchStats`
        and replay-cache mutations.  The speedup comes from amortizing
        per-cookie costs across the batch:

        - descriptor lookup + revoked/expired checks are memoized per
          cookie id (a batch from one flow burst repeats few ids);
        - HMAC contexts are pre-keyed once per descriptor and served by
          ``copy()`` via :class:`~repro.core.cookie.SignerCache`;
        - the NCT window check and stats/attribute lookups run inside a
          single pass with locals bound once per batch.

        ``reasons``, if given, receives one :class:`MatchStats` field
        name per cookie (``"accepted"``, ``"replayed"``, ...) — the
        per-verdict detail the multi-process wire codec packs into its
        verdict array without a second verification pass.
        """
        store_get = self.store.get
        stats = self.stats
        nct = self.nct
        sign = self._signers.sign
        compare = _hmac.compare_digest
        check_and_record = self.replay_cache.check_and_record
        # Per-batch memo: cookie_id -> (descriptor|None, failure field).
        # Sound within a batch because `now` is fixed and descriptor
        # revocation/expiry cannot change between two cookies of the
        # same batch (single-threaded data path, one timestamp).
        decided: dict[int, tuple[CookieDescriptor | None, str | None]] = {}
        results: list[CookieDescriptor | None] = []
        append = results.append
        note = reasons.append if reasons is not None else None
        for cookie in cookies:
            cookie_id = cookie.cookie_id
            memo = decided.get(cookie_id)
            if memo is None:
                descriptor = store_get(cookie_id)
                if descriptor is None:
                    memo = (None, "unknown_id")
                elif descriptor.revoked:
                    memo = (None, "revoked")
                elif descriptor.attributes.is_expired(now):
                    memo = (None, "expired")
                else:
                    memo = (descriptor, None)
                decided[cookie_id] = memo
            descriptor, failure = memo
            if descriptor is None:
                setattr(stats, failure, getattr(stats, failure) + 1)
                append(None)
                if note is not None:
                    note(failure)
                continue
            expected = sign(
                descriptor.key, cookie_id, cookie.uuid, cookie.timestamp
            )
            if not compare(expected, cookie.signature):
                stats.bad_signature += 1
                append(None)
                if note is not None:
                    note("bad_signature")
                continue
            # Same predicate as the scalar path (not a precomputed
            # lo/hi window) so results are bit-identical for any float.
            if abs(cookie.timestamp - now) > nct:
                stats.stale_timestamp += 1
                append(None)
                if note is not None:
                    note("stale_timestamp")
                continue
            if check_and_record(
                cookie_id.to_bytes(8, "big") + cookie.uuid, now
            ):
                stats.replayed += 1
                append(None)
                if note is not None:
                    note("replayed")
                continue
            stats.accepted += 1
            append(descriptor)
            if note is not None:
                note("accepted")
        return results
