"""A real cookie server and client over TCP (newline-delimited JSON).

Simulations call :meth:`CookieServer.handle_request` in-process; this
module exposes the same API over an actual socket so the examples can run a
live descriptor-acquisition exchange, as the paper's prototype does with
its JSON API.

The protocol is one JSON object per line in each direction.  It is
deliberately boring: the interesting guarantees (authentication,
revocability, auditability) live in :class:`CookieServer`, not in the
framing.

:class:`JsonLineServer` is the shared transport: it owns the socket
lifecycle plus the two abuse guards every JSON-lines listener needs —
a **concurrent-connection cap** (over-limit clients get a structured
``{"shed": true}`` error and a close instead of hanging in the accept
queue) and a **per-request body cap** enforced by the stream reader's
buffer limit, so a slow-loris client trickling bytes without a newline
is bounded at ``max_request_bytes`` instead of growing the buffer
forever.  :class:`AsyncCookieServer` plugs a :class:`CookieServer` into
it; :class:`repro.core.cp.AsyncControlPlaneServer` does the same for the
sharded control plane.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from .server import CookieServer

__all__ = [
    "AsyncCookieServer",
    "CookieClient",
    "JsonLineServer",
    "request_over_tcp",
]

MAX_LINE_BYTES = 1_000_000
#: Default concurrent-connection cap; generous for tests and examples,
#: small enough that a connection flood degrades to fast structured
#: sheds instead of fd exhaustion.
MAX_CONNECTIONS = 64


class JsonLineServer:
    """JSON-lines-over-TCP transport with connection and body caps."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = MAX_CONNECTIONS,
        max_request_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_request_bytes < 2:
            raise ValueError("max_request_bytes must be >= 2")
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_request_bytes = max_request_bytes
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._open_writers: set[asyncio.StreamWriter] = set()
        self.connections_handled = 0
        self.connections_shed = 0
        self.oversize_requests = 0

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one request dict; subclasses supply the application."""
        raise NotImplementedError

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound
        (``port=0`` picks a free port)."""
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            # The reader refuses to buffer more than one request body:
            # readline() past this raises instead of growing without
            # bound under a newline-less trickle.
            limit=self.max_request_bytes,
        )
        sockname = self._asyncio_server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and drop any connections still open."""
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for writer in list(self._open_writers):
            writer.close()
        self._open_writers.clear()
        # Give handler tasks a turn to observe the closed sockets.
        await asyncio.sleep(0)

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict[str, Any]
    ) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_handled += 1
        if len(self._open_writers) >= self.max_connections:
            # Shed, don't hang: the client gets a structured error and a
            # clean close instead of an unexplained stall.
            self.connections_shed += 1
            try:
                await self._send(
                    writer,
                    {
                        "ok": False,
                        "shed": True,
                        "error": (
                            f"server at connection capacity "
                            f"({self.max_connections})"
                        ),
                    },
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # Body cap tripped.  Framing is lost mid-line, so
                    # answer once and close rather than resynchronize.
                    self.oversize_requests += 1
                    try:
                        await self._send(
                            writer,
                            {
                                "ok": False,
                                "shed": True,
                                "error": (
                                    f"request exceeds "
                                    f"{self.max_request_bytes} bytes"
                                ),
                            },
                        )
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    break
                if not line:
                    break
                if len(line) > self.max_request_bytes:
                    response = {
                        "ok": False,
                        "shed": True,
                        "error": (
                            f"request exceeds {self.max_request_bytes} bytes"
                        ),
                    }
                    self.oversize_requests += 1
                else:
                    try:
                        request = json.loads(line)
                        if not isinstance(request, dict):
                            raise ValueError("request must be a JSON object")
                        response = self.handle(request)
                    except (json.JSONDecodeError, ValueError) as exc:
                        response = {"ok": False, "error": f"bad request: {exc}"}
                await self._send(writer, response)
        finally:
            self._open_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionResetError:
                pass


class AsyncCookieServer(JsonLineServer):
    """Serves a :class:`CookieServer` over TCP with JSON-lines framing."""

    def __init__(
        self,
        server: CookieServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = MAX_CONNECTIONS,
        max_request_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_connections=max_connections,
            max_request_bytes=max_request_bytes,
        )
        self.server = server

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.server.handle_request(request)


class CookieClient:
    """Async client speaking the JSON-lines protocol.

    One client holds one connection; :meth:`request` is safe to call
    sequentially (requests are pipelined one at a time).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionResetError:
                pass
            self._reader = None
            self._writer = None

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request and await its response."""
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("cookie server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ValueError("malformed response from cookie server")
        return response


def request_over_tcp(host: str, port: int, payload: dict[str, Any]) -> dict[str, Any]:
    """Synchronous one-shot request helper (connect, ask, disconnect).

    Handy as a :class:`repro.core.client.UserAgent` channel when the agent
    runs outside an event loop::

        agent = UserAgent(..., channel=lambda req: request_over_tcp(h, p, req))
    """

    async def _go() -> dict[str, Any]:
        client = CookieClient(host, port)
        try:
            return await client.request(payload)
        finally:
            await client.close()

    return asyncio.run(_go())
