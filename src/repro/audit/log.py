"""Auditability: who got which descriptor, when, and on what terms.

The paper's regulatory story depends on this being easy: "interested
parties can monitor what traffic gets special treatment by the network just
by looking at who gets access to cookie descriptors and how", and the FCC
"could demand that T-Mobile maintains a public database with the dates for
all cookie descriptor requests".  :class:`AuditLog` is that database;
:meth:`AuditLog.regulator_report` is the public view (no signing keys).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["AuditEvent", "AuditRecord", "AuditLog"]


class AuditEvent:
    """Event type constants recorded in the log."""

    REQUESTED = "requested"
    GRANTED = "granted"
    DENIED = "denied"
    REVOKED = "revoked"
    RENEWED = "renewed"
    DELEGATED = "delegated"


@dataclass(frozen=True)
class AuditRecord:
    """One append-only log entry."""

    time: float
    event: str
    user: str
    service: str
    cookie_id: int | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "event": self.event,
            "user": self.user,
            "service": self.service,
            "cookie_id": self.cookie_id,
            "detail": dict(self.detail),
        }


class AuditLog:
    """Append-only record of descriptor lifecycle events."""

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[AuditRecord]:
        return iter(self._records)

    def record(
        self,
        time: float,
        event: str,
        user: str,
        service: str,
        cookie_id: int | None = None,
        **detail: Any,
    ) -> AuditRecord:
        """Append an event and return the record."""
        entry = AuditRecord(
            time=time,
            event=event,
            user=user,
            service=service,
            cookie_id=cookie_id,
            detail=detail,
        )
        self._records.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_user(self, user: str) -> list[AuditRecord]:
        return [r for r in self._records if r.user == user]

    def by_service(self, service: str) -> list[AuditRecord]:
        return [r for r in self._records if r.service == service]

    def by_event(self, event: str) -> list[AuditRecord]:
        return [r for r in self._records if r.event == event]

    def grants(self) -> list[AuditRecord]:
        return self.by_event(AuditEvent.GRANTED)

    def denials(self) -> list[AuditRecord]:
        return self.by_event(AuditEvent.DENIED)

    def grant_latency(self, user: str, service: str) -> float | None:
        """Seconds between a user's first request and first grant for a
        service — the quantity the FCC's "within three days" rule bounds.
        Returns None if either event is missing."""
        requested = None
        for record in self._records:
            if record.user != user or record.service != service:
                continue
            if record.event == AuditEvent.REQUESTED and requested is None:
                requested = record.time
            if record.event == AuditEvent.GRANTED and requested is not None:
                return record.time - requested
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def regulator_report(self) -> dict[str, Any]:
        """The public view: per-service grant/denial tallies, grantee lists,
        and worst-case grant latency.  Contains no keys or traffic data —
        the privacy property holds even for the auditor."""
        services: dict[str, dict[str, Any]] = {}
        for record in self._records:
            entry = services.setdefault(
                record.service,
                {"granted": 0, "denied": 0, "revoked": 0, "grantees": set()},
            )
            if record.event == AuditEvent.GRANTED:
                entry["granted"] += 1
                entry["grantees"].add(record.user)
            elif record.event == AuditEvent.DENIED:
                entry["denied"] += 1
            elif record.event == AuditEvent.REVOKED:
                entry["revoked"] += 1
        report = {
            service: {
                "granted": data["granted"],
                "denied": data["denied"],
                "revoked": data["revoked"],
                "grantees": sorted(data["grantees"]),
            }
            for service, data in services.items()
        }
        return {"services": report, "total_records": len(self._records)}

    def to_jsonl(self) -> str:
        """Serialize the full log as JSON lines (the public database)."""
        return "\n".join(json.dumps(r.to_json()) for r in self._records)
