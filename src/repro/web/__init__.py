"""Web workload substrate: page models, the shared server pool (real CDN
co-hosting), and a browser that generates packet streams with the agent
vantage point the Boost extension used."""

from .browser import Browser, RequestContext, Tab
from .page import PageModel, ResourceFlow, ServerInfo
from .sites import (
    PUBLISHED_PAGE_STATS,
    build_cnn,
    build_facebook_background,
    build_skai,
    build_youtube,
    site_catalog,
)

__all__ = [
    "Browser",
    "RequestContext",
    "Tab",
    "PageModel",
    "ResourceFlow",
    "ServerInfo",
    "PUBLISHED_PAGE_STATS",
    "build_cnn",
    "build_facebook_background",
    "build_skai",
    "build_youtube",
    "site_catalog",
]
