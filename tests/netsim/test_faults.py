"""FaultInjector semantics: every fault class, both data paths, and the
corruption safety property (a mangled cookie is *absent*, never a crash).
"""

import pytest

from repro.core.descriptor import CookieDescriptor
from repro.core.generator import CookieGenerator
from repro.core.store import DescriptorStore
from repro.core.matcher import CookieMatcher
from repro.core.transport import (
    HttpHeaderCarrier,
    Ipv6ExtensionCarrier,
    TcpOptionCarrier,
    TlsExtensionCarrier,
    UdpShimCarrier,
    default_registry,
)
from repro.netsim import (
    EventLoop,
    FaultInjector,
    FaultPlan,
    Sink,
    SkewedClock,
    make_tcp_packet,
    make_udp_packet,
)
from repro.netsim.appmsg import HTTPRequest, TLSClientHello
from repro.netsim.headers import IPProto, IPv6Header, TCPHeader
from repro.netsim.packet import Packet, Payload
from repro.telemetry import MetricsRegistry


def _packet(seq: int = 0):
    return make_tcp_packet(
        "10.0.0.1", 40000, "1.2.3.4", 443, payload_size=100, seq=seq
    )


def _cookied_packet(store=None):
    descriptor = CookieDescriptor.create(service_data="svc")
    if store is not None:
        store.add(descriptor)
    cookie = CookieGenerator(descriptor, clock=lambda: 50.0).generate()
    packet = _packet()
    TcpOptionCarrier().attach(packet, cookie)
    return packet, cookie


def _drive(injector, packets):
    sink = Sink(keep=True)
    injector >> sink
    for packet in packets:
        injector.push(packet)
    injector.flush()
    return sink.packets


class TestFaultPlan:
    @pytest.mark.parametrize("field", [
        "drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate",
        "delay_rate",
    ])
    def test_rates_validated(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_jitter_s=-1.0)

    def test_delay_without_loop_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(delay_rate=0.5, delay_jitter_s=0.1))


class TestScalarFaults:
    def test_clean_plan_is_transparent(self):
        packets = [_packet(i) for i in range(20)]
        out = _drive(FaultInjector(FaultPlan()), packets)
        assert out == packets

    def test_drop_everything(self):
        injector = FaultInjector(FaultPlan(drop_rate=1.0))
        out = _drive(injector, [_packet(i) for i in range(10)])
        assert out == []
        assert injector.stats.drops == 10

    def test_duplicates_are_marked_deep_copies(self):
        injector = FaultInjector(FaultPlan(duplicate_rate=1.0))
        original = _packet()
        out = _drive(injector, [original])
        assert len(out) == 2
        assert out[0] is original
        dup = out[1]
        assert dup is not original
        assert dup.meta.get("fault_duplicate") is True
        # Deep copy: mutating the clone leaves the original untouched.
        dup.l4.seq = 999
        assert original.l4.seq != 999

    def test_reorder_swaps_adjacent_and_flush_releases(self):
        injector = FaultInjector(FaultPlan(reorder_rate=1.0))
        a, b, c = _packet(1), _packet(2), _packet(3)
        out = _drive(injector, [a, b, c])
        # a is held, b overtakes it, then c is held until flush.
        assert out == [b, a, c]
        assert injector.stats.reorders == 2

    def test_delay_redelivers_later_via_loop(self):
        loop = EventLoop()
        injector = FaultInjector(
            FaultPlan(delay_rate=1.0, delay_jitter_s=0.5, seed=3),
            loop=loop,
        )
        sink = Sink(keep=True)
        injector >> sink
        packet = _packet()
        injector.push(packet)
        assert sink.packets == []  # in flight
        loop.run_until_idle()
        assert sink.packets == [packet]
        assert injector.stats.delays == 1

    def test_determinism_same_seed_same_story(self):
        def run():
            injector = FaultInjector(FaultPlan(
                drop_rate=0.3, duplicate_rate=0.3, reorder_rate=0.3,
                corrupt_rate=0.3, seed=7,
            ))
            out = _drive(injector, [_packet(i) for i in range(50)])
            return [p.l4.seq for p in out], injector.stats.as_dict()

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            injector = FaultInjector(FaultPlan(drop_rate=0.5, seed=seed))
            return [
                p.l4.seq
                for p in _drive(injector, [_packet(i) for i in range(50)])
            ]

        assert run(1) != run(2)


class TestBatchFaults:
    def test_batch_drop_and_duplicate(self):
        injector = FaultInjector(FaultPlan(duplicate_rate=1.0))
        sink = Sink(keep=True)
        injector >> sink
        batch = [_packet(i) for i in range(4)]
        injector.process_batch(list(batch))
        assert len(sink.packets) == 8
        assert injector.stats.duplicates == 4

    def test_batch_delay_displaces_to_end(self):
        loop = EventLoop()
        # delay only the stream; rate 1 hits every packet, so all land
        # in the late tail — order within the tail is preserved.
        injector = FaultInjector(
            FaultPlan(delay_rate=1.0, delay_jitter_s=0.2), loop=loop
        )
        sink = Sink(keep=True)
        injector >> sink
        batch = [_packet(i) for i in range(3)]
        injector.process_batch(list(batch))
        assert [p.l4.seq for p in sink.packets] == [0, 1, 2]
        assert injector.stats.delays == 3

    def test_batch_determinism_matches_itself(self):
        def run():
            injector = FaultInjector(FaultPlan(
                drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2,
                delay_rate=0.0, seed=11,
            ))
            sink = Sink(keep=True)
            injector >> sink
            injector.process_batch([_packet(i) for i in range(40)])
            return [p.l4.seq for p in sink.packets]

        assert run() == run()


class TestCorruption:
    def test_packet_without_cookie_unharmed(self):
        injector = FaultInjector(FaultPlan(corrupt_rate=1.0))
        out = _drive(injector, [_packet()])
        assert len(out) == 1
        assert injector.stats.corruptions == 0
        assert "fault_corrupted" not in out[0].meta

    def _assert_corruption_is_safe(self, packet, cookie, store):
        """The property the paper's robustness rests on: after a bit
        flip, the carrier reports no (valid) cookie — extraction either
        degrades to None or yields a cookie the matcher rejects —
        and nothing raises."""
        seen = []
        injector = FaultInjector(
            FaultPlan(corrupt_rate=1.0, seed=5), on_corrupt=seen.append
        )
        out = _drive(injector, [packet])
        assert len(out) == 1
        assert injector.stats.corruptions == 1
        assert out[0].meta.get("fault_corrupted") is True
        assert seen == [packet]
        found = default_registry().extract(out[0])
        if found is not None:
            matcher = CookieMatcher(store)
            assert matcher.match(found[0], 50.0) is None

    def test_tcp_option_carrier(self):
        store = DescriptorStore()
        packet, cookie = _cookied_packet(store)
        self._assert_corruption_is_safe(packet, cookie, store)

    def test_udp_shim_carrier(self):
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="svc"))
        cookie = CookieGenerator(descriptor, clock=lambda: 50.0).generate()
        packet = make_udp_packet(
            "10.0.0.1", 4000, "1.2.3.4", 53, payload_size=64
        )
        UdpShimCarrier().attach(packet, cookie)
        self._assert_corruption_is_safe(packet, cookie, store)

    def test_tls_extension_carrier(self):
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="svc"))
        cookie = CookieGenerator(descriptor, clock=lambda: 50.0).generate()
        packet = make_tcp_packet(
            "10.0.0.1", 4000, "1.2.3.4", 443,
            content=TLSClientHello(sni="example.com"), payload_size=300,
        )
        TlsExtensionCarrier().attach(packet, cookie)
        self._assert_corruption_is_safe(packet, cookie, store)

    def test_http_header_carrier(self):
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="svc"))
        cookie = CookieGenerator(descriptor, clock=lambda: 50.0).generate()
        packet = make_tcp_packet(
            "10.0.0.1", 4000, "1.2.3.4", 80,
            content=HTTPRequest(host="example.com"), payload_size=300,
        )
        HttpHeaderCarrier().attach(packet, cookie)
        self._assert_corruption_is_safe(packet, cookie, store)

    def test_ipv6_extension_carrier(self):
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="svc"))
        cookie = CookieGenerator(descriptor, clock=lambda: 50.0).generate()
        packet = Packet(
            ip=IPv6Header(
                src="2001:db8::1", dst="2001:db8::2",
                next_header=IPProto.TCP,
            ),
            l4=TCPHeader(src_port=5000, dst_port=443),
            payload=Payload(size=100),
        )
        Ipv6ExtensionCarrier().attach(packet, cookie)
        self._assert_corruption_is_safe(packet, cookie, store)


class TestTelemetryAndClock:
    def test_registry_snapshot_carries_fault_counters(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(drop_rate=1.0), telemetry=registry
        )
        _drive(injector, [_packet(i) for i in range(5)])
        counters = registry.snapshot().counters
        assert counters["faults.packets"] == 5
        assert counters["faults.drops"] == 5

    def test_skewed_clock(self):
        base = [100.0]
        clock = SkewedClock(lambda: base[0], skew=-2.5)
        assert clock() == 97.5
        base[0] = 200.0
        assert clock() == 197.5
