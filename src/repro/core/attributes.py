"""Cookie-descriptor attributes (§4.3 of the paper).

Attributes are optional, service-specific qualifiers carried with a
descriptor.  The paper expects a handful to become common-place; those are
modelled as first-class fields here, with ``extra`` holding the unformatted
remainder the paper allows.

Fields
------
granularity:
    Whether a cookie binds the *flow* the tagged packet belongs to (the
    default — "a cookie characterizes the flow (5-tuple) that a packet
    belongs to") or only the single *packet*.  ``flow_fields`` optionally
    narrows which header fields compose the flow.
apply_reverse:
    Whether the service also covers the reverse direction of the flow.
shared:
    Whether the descriptor may be re-distributed by a cache (e.g. the home
    router acquires one descriptor from the ISP and shares it with devices).
ack_cookie:
    The remote server is expected to echo or regenerate a cookie with its
    response.
delivery_guarantee:
    The *network* must acknowledge acting on a cookie by attaching an
    acknowledgment cookie to reverse traffic.
transports:
    Carrier protocols over which cookies from this descriptor may travel.
expires_at:
    Absolute expiry (seconds, simulation clock or epoch).  ``None`` means no
    expiry.  Expiry both revokes a service and bounds descriptor leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Granularity", "CookieAttributes"]


class Granularity(str, Enum):
    """What a single cookie binds to."""

    FLOW = "flow"
    PACKET = "packet"


@dataclass
class CookieAttributes:
    """Structured attribute block attached to a cookie descriptor."""

    granularity: Granularity = Granularity.FLOW
    flow_fields: tuple[str, ...] = (
        "src_ip",
        "src_port",
        "dst_ip",
        "dst_port",
        "proto",
    )
    apply_reverse: bool = True
    shared: bool = False
    ack_cookie: bool = False
    delivery_guarantee: bool = False
    transports: tuple[str, ...] = ("http", "tls", "ipv6", "tcp", "udp")
    expires_at: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.granularity, str) and not isinstance(
            self.granularity, Granularity
        ):
            self.granularity = Granularity(self.granularity)
        self.flow_fields = tuple(self.flow_fields)
        self.transports = tuple(self.transports)

    def is_expired(self, now: float) -> bool:
        """True when the descriptor has passed its expiration attribute."""
        return self.expires_at is not None and now > self.expires_at

    def allows_transport(self, transport_name: str) -> bool:
        """Whether cookies may ride over the named carrier."""
        return transport_name in self.transports

    @property
    def constraints(self) -> dict[str, Any]:
        """Context constraints from the unformatted attribute block.

        The paper's examples: "a cookie might only be valid when the user
        is connected to a specific WiFi network, or in a specific
        geographic area, or in a specific network domain".  Constraints
        live under ``extra['constraints']`` as key/value pairs matched
        against the verifying switch's context.
        """
        value = self.extra.get("constraints", {})
        return dict(value) if isinstance(value, dict) else {}

    def matches_context(self, context: dict[str, Any]) -> bool:
        """True when every constraint equals the context's value for it.

        A constraint on a key the context does not define fails closed —
        a geo-fenced cookie must not work on a switch that cannot attest
        its location.
        """
        return all(
            key in context and context[key] == expected
            for key, expected in self.constraints.items()
        )

    def to_json(self) -> dict[str, Any]:
        """Serialize for the descriptor-acquisition JSON API."""
        return {
            "granularity": self.granularity.value,
            "flow_fields": list(self.flow_fields),
            "apply_reverse": self.apply_reverse,
            "shared": self.shared,
            "ack_cookie": self.ack_cookie,
            "delivery_guarantee": self.delivery_guarantee,
            "transports": list(self.transports),
            "expires_at": self.expires_at,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CookieAttributes":
        """Inverse of :meth:`to_json`; unknown keys land in ``extra``."""
        known = {
            "granularity",
            "flow_fields",
            "apply_reverse",
            "shared",
            "ack_cookie",
            "delivery_guarantee",
            "transports",
            "expires_at",
            "extra",
        }
        extra = dict(data.get("extra", {}))
        for key, value in data.items():
            if key not in known:
                extra[key] = value
        return cls(
            granularity=Granularity(data.get("granularity", "flow")),
            flow_fields=tuple(
                data.get(
                    "flow_fields",
                    ("src_ip", "src_port", "dst_ip", "dst_port", "proto"),
                )
            ),
            apply_reverse=bool(data.get("apply_reverse", True)),
            shared=bool(data.get("shared", False)),
            ack_cookie=bool(data.get("ack_cookie", False)),
            delivery_guarantee=bool(data.get("delivery_guarantee", False)),
            transports=tuple(
                data.get("transports", ("http", "tls", "ipv6", "tcp", "udp"))
            ),
            expires_at=data.get("expires_at"),
            extra=extra,
        )
