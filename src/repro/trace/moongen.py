"""A MoonGen-style packet generator for middlebox throughput tests.

"We connected our middlebox with a MoonGen packet generator which sends
flows with cookies and monitors how fast our middlebox can forward
packets."  :class:`PacketGenerator` produces the same workload shape used
for Fig. 4: fixed-size packets, fixed packets-per-flow, one valid cookie
on each flow's first packet, descriptors drawn from a large pool
("Assuming 50-packet flows, 100K cookie descriptors, and a cookie for each
flow ...").
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from ..core.descriptor import CookieDescriptor
from ..core.generator import CookieGenerator
from ..core.store import DescriptorStore
from ..core.transport import TransportRegistry, default_registry
from ..netsim.packet import Packet
from .records import FlowRecord, flow_to_packets

__all__ = ["build_descriptor_pool", "PacketGenerator"]


def build_descriptor_pool(
    count: int, store: DescriptorStore, service_data: str = "zero-rate"
) -> list[CookieDescriptor]:
    """Mint ``count`` descriptors and register them for verification.

    Fig. 4 runs with a 100 K-descriptor pool; the verifier's lookup is a
    hash per cookie, so pool size stresses only memory, not the per-packet
    path — which the ablation benchmark confirms.
    """
    descriptors = [
        store.add(CookieDescriptor.create(service_data=service_data))
        for _ in range(count)
    ]
    return descriptors


class PacketGenerator:
    """Generates cookie-bearing flows at a fixed shape.

    Parameters mirror the Fig. 4 sweep: ``packet_size`` (total wire bytes
    per packet) and ``packets_per_flow``.  ``clock`` should match the
    verifying middlebox's clock so cookies fall inside the coherency
    window.
    """

    def __init__(
        self,
        descriptors: list[CookieDescriptor],
        clock,
        packet_size: int = 512,
        packets_per_flow: int = 50,
        registry: TransportRegistry | None = None,
        seed: int = 0,
    ) -> None:
        if not descriptors:
            raise ValueError("need at least one descriptor")
        if packet_size < 48:
            raise ValueError("packet_size must cover IP+TCP headers (>= 48)")
        if packets_per_flow < 1:
            raise ValueError("flows need at least one packet")
        self.descriptors = descriptors
        self.clock = clock
        self.packet_size = packet_size
        self.packets_per_flow = packets_per_flow
        self.registry = registry or default_registry()
        self.rng = random.Random(seed)
        self._flow_counter = itertools.count()
        self._generators = [
            CookieGenerator(descriptor, clock) for descriptor in descriptors
        ]

    def _next_record(self) -> FlowRecord:
        index = next(self._flow_counter)
        payload = max(1, self.packet_size - 40)  # leave room for IP + TCP
        return FlowRecord(
            start_time=self.clock(),
            client_ip=f"10.{(index >> 14) & 0x3F}.{(index >> 7) & 0x7F}.{index & 0x7F}",
            client_port=1024 + (index % 50_000),
            server_ip="93.184.216.34",
            server_port=443,
            packets=self.packets_per_flow,
            avg_packet_size=payload,
        )

    def flows(self, count: int) -> Iterator[list[Packet]]:
        """Yield ``count`` flows, each a list of packets with the first
        packet carrying a fresh cookie from a random pool descriptor."""
        for _ in range(count):
            record = self._next_record()
            generator = self.rng.choice(self._generators)
            yield list(
                flow_to_packets(record, cookie=generator.generate(), registry=self.registry)
            )

    def packets(self, flow_count: int) -> Iterator[Packet]:
        """Flattened packet stream over ``flow_count`` flows."""
        for flow in self.flows(flow_count):
            yield from flow
