"""Prototype services built on network cookies: Boost (fast lane),
zero-rating, and AnyLink (proxy-mode slow lanes)."""

from .video import PlaybackStats, VideoPlayer

__all__ = ["PlaybackStats", "VideoPlayer"]
