"""A small discrete-event simulation kernel.

Everything time-dependent in the substrate (link serialization, queue
drains, TCP timers, periodic capacity probes) is driven by one
:class:`EventLoop`.  Events are ``(time, seq, callback)`` entries on a heap;
``seq`` breaks ties deterministically in insertion order so simulations are
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventLoop", "ScheduledEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback; ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when it comes due."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        event = ScheduledEvent(time=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run events in time order.

        Stops when the queue empties, when the next event is past ``until``,
        or after ``max_events`` (a runaway guard).  Returns the final virtual
        time.  When stopped by ``until``, time is advanced exactly to
        ``until`` so periodic processes observe a consistent clock.
        """
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            processed += 1
        self.events_processed += processed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)
