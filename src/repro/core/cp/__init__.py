"""Sharded control plane for the descriptor lifecycle (PROTOCOL.md §14).

The data plane scaled across PRs 2/3/5/6 (batched, sharded, multi-process
over shared-memory rings) while descriptor acquisition stayed a
single-threaded :class:`~repro.core.server.CookieServer` over a flat
store.  This package is the control-plane counterpart:

* :mod:`.deltalog` — the append-only per-shard delta log plus snapshots;
  ``snapshot + replay(log)`` reconstructs exact store state, and replay
  from a stale offset is idempotent (records below the applied offset are
  skipped), which is what makes replica catch-up after a partition safe.
* :mod:`.shard` — one :class:`ControlPlaneShard` owns the descriptors
  whose ids rendezvous-hash to it: a store, its delta log, and the op
  counters.
* :mod:`.replica` — :class:`VerifierReplica`, a data-path descriptor
  store fed by snapshot + delta replay with per-shard applied offsets
  and a partition switch for drills.
* :mod:`.service` — :class:`ShardedControlPlane`, the front door: routes
  by :func:`~repro.core.distributed.rendezvous_shard`, sheds bursts via
  the PR-4 :class:`~repro.core.resilience.CircuitBreaker` + a pending
  cap, broadcasts revocations to registered replicas under a measured
  staleness bound, and merges telemetry into the PR-1 registry.
* :mod:`.netserver` — :class:`AsyncControlPlaneServer`, the JSON-lines
  TCP front end with the connection/body caps shared with
  :class:`~repro.core.netserver.AsyncCookieServer`.
"""

from .deltalog import (
    DeltaLog,
    DeltaRecord,
    LogTruncated,
    StoreSnapshot,
    apply_record,
    replay,
)
from .replica import ReplicaUnreachable, VerifierReplica
from .service import ControlPlaneStats, ShardedControlPlane
from .shard import ControlPlaneShard
from .netserver import AsyncControlPlaneServer

__all__ = [
    "DeltaLog",
    "DeltaRecord",
    "LogTruncated",
    "StoreSnapshot",
    "apply_record",
    "replay",
    "ControlPlaneShard",
    "VerifierReplica",
    "ReplicaUnreachable",
    "ShardedControlPlane",
    "ControlPlaneStats",
    "AsyncControlPlaneServer",
]
