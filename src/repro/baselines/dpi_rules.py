"""The DPI rule database (the nDPI stand-in's knowledge).

Real DPI engines ship rules for a few hundred *popular* applications; the
paper's point is what is missing: "nDPI ... recognizes only 23 out of 106
applications that our surveyed users picked".  This module provides a
representative rule base with exactly that popularity skew: rules for the
big names, nothing for the tail (no ``skai.gr``, no ``Indie 103.1``).

Each rule matches on SNI / Host suffixes, destination IP prefixes, or
ports.  A rule's ``app`` label is what the engine reports; note that
YouTube's rule deliberately covers ``googlevideo.com`` — which is also how
a YouTube player embedded in another site gets misattributed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DpiRule", "default_rule_db", "NDPI_KNOWN_APPS"]


@dataclass(frozen=True)
class DpiRule:
    """One application signature."""

    app: str
    sni_suffixes: tuple[str, ...] = ()
    host_suffixes: tuple[str, ...] = ()
    ip_prefixes: tuple[str, ...] = ()
    ports: tuple[int, ...] = ()

    def matches_name(self, name: str) -> bool:
        """Match an SNI or Host value against the suffix lists."""
        lowered = name.lower()
        for suffix in self.sni_suffixes + self.host_suffixes:
            if lowered == suffix or lowered.endswith("." + suffix):
                return True
        return False

    def matches_ip(self, ip: str) -> bool:
        return any(ip.startswith(prefix) for prefix in self.ip_prefixes)


def default_rule_db() -> list[DpiRule]:
    """Signatures for popular applications, nDPI-style.

    Ordering matters: more specific rules first (the engine reports the
    first hit).
    """
    return [
        DpiRule("youtube", sni_suffixes=("youtube.com", "googlevideo.com", "ytimg.com")),
        DpiRule("netflix", sni_suffixes=("netflix.com", "nflxvideo.net")),
        DpiRule("facebook", sni_suffixes=("facebook.com", "fbcdn.net")),
        DpiRule("instagram", sni_suffixes=("instagram.com", "cdninstagram.com")),
        DpiRule("whatsapp", sni_suffixes=("whatsapp.net", "whatsapp.com")),
        DpiRule("twitter", sni_suffixes=("twitter.com", "twimg.com")),
        DpiRule("spotify", sni_suffixes=("spotify.com", "scdn.co")),
        DpiRule("pandora", sni_suffixes=("pandora.com",)),
        DpiRule("hulu", sni_suffixes=("hulu.com", "hulustream.com")),
        DpiRule("hbo", sni_suffixes=("hbo.com", "hbomax.com")),
        DpiRule("cnn", sni_suffixes=("cnn.com",)),
        DpiRule("nyt", sni_suffixes=("nytimes.com", "nyt.com")),
        DpiRule("reddit", sni_suffixes=("reddit.com", "redd.it")),
        DpiRule("wikipedia", sni_suffixes=("wikipedia.org", "wikimedia.org")),
        DpiRule("google_maps", sni_suffixes=("maps.google.com", "maps.googleapis.com")),
        DpiRule("google_play_music", sni_suffixes=("music.google.com", "play.google.com")),
        DpiRule("gmail", sni_suffixes=("mail.google.com", "gmail.com")),
        DpiRule("google_ads", sni_suffixes=("doubleclick.net", "googlesyndication.com",
                                            "googleadservices.com")),
        DpiRule("google", sni_suffixes=("google.com", "gstatic.com", "googleapis.com")),
        DpiRule("amazon_video", sni_suffixes=("primevideo.com", "aiv-cdn.net")),
        DpiRule("amazon_music", sni_suffixes=("music.amazon.com",)),
        DpiRule("amazon", sni_suffixes=("amazon.com", "images-amazon.com")),
        DpiRule("snapchat", sni_suffixes=("snapchat.com", "sc-cdn.net")),
        DpiRule("tunein", sni_suffixes=("tunein.com",)),
        DpiRule("iheartradio", sni_suffixes=("iheart.com", "iheartradio.com")),
        DpiRule("soundcloud", sni_suffixes=("soundcloud.com", "sndcdn.com")),
        DpiRule("twitch", sni_suffixes=("twitch.tv", "ttvnw.net")),
        DpiRule("vimeo", sni_suffixes=("vimeo.com", "vimeocdn.com")),
        DpiRule("espn", sni_suffixes=("espn.com", "espncdn.com")),
        DpiRule("bbc", sni_suffixes=("bbc.co.uk", "bbc.com")),
        DpiRule("viber", sni_suffixes=("viber.com",)),
        DpiRule("skype", sni_suffixes=("skype.com",), ports=(3478,)),
        DpiRule("candy_crush", sni_suffixes=("king.com",)),
        DpiRule("dropbox", sni_suffixes=("dropbox.com", "dropboxstatic.com")),
        DpiRule("office365", sni_suffixes=("office.com", "office365.com")),
        DpiRule("slack", sni_suffixes=("slack.com", "slack-edge.com")),
        DpiRule("zoom", sni_suffixes=("zoom.us",)),
        DpiRule("steam", sni_suffixes=("steampowered.com", "steamcontent.com")),
        DpiRule("xbox_live", sni_suffixes=("xboxlive.com",)),
        DpiRule("playstation", sni_suffixes=("playstation.net", "playstation.com")),
        DpiRule("bittorrent", ports=(6881, 6882, 6883)),
        DpiRule("dns", ports=(53,)),
    ]


#: Applications from the user survey that the DPI rule base recognizes —
#: 23 of the 106 distinct apps respondents named (§3: "nDPI ... recognizes
#: only 23 out of 106 applications").  The study package builds the survey
#: catalog so that exactly these overlap.
NDPI_KNOWN_APPS: frozenset[str] = frozenset(
    {
        "facebook",
        "netflix",
        "instagram",
        "google maps",
        "google play music",
        "whatsapp",
        "reddit is fun",
        "amazon music",
        "wikipedia",
        "tunein radio",
        "hulu",
        "nyt",
        "candy crush",
        "viber",
        "youtube",
        "spotify",
        "pandora",
        "snapchat",
        "soundcloud",
        "iheartradio",
        "twitch",
        "gmail",
        "espn",
    }
)
