"""Experiment drivers: one module per paper table/figure, shared by the
test suite, the benchmarks, and the examples.

================  ==============================================
Module            Reproduces
================  ==============================================
fig4_throughput   Fig. 4 middlebox forwarding performance
fig5b_fct         Fig. 5(b) flow completion time under Boost
fig6_accuracy     Fig. 6 matching accuracy (cookies/nDPI/OOB)
sec3_dpi          §3 DPI-limitation measurements
sec46_campus      §4.6 campus-trace replay
scaleout          §5 multi-core verification scale-out
controlplane      §4.2 cookie server at million-subscriber scale
================  ==============================================

Fig. 1 and Fig. 2 live in :mod:`repro.study` (BoostStudy /
ZeroRatingSurvey); Table 1 lives in :mod:`repro.baselines.comparison`.

:mod:`.chaos` reproduces no figure — it is the fault-injection soak
backing the failure model (PROTOCOL.md §11).  :mod:`.audit` likewise —
it is the adversarial neutrality-audit campaign (PROTOCOL.md §13).
:mod:`.linklab` extends the paper's single 6 Mb/s scenario to a
rate × latency × loss grid over cable/LTE/satellite profiles, executed
by the deterministic parallel sweep (PROTOCOL.md §15).
:mod:`.billing` is the multi-operator billing soak and SIGKILL crash
drill backing the crash-safe journal + exactly-once reconciliation
contract (PROTOCOL.md §16).
"""

from .audit import (
    AuditCampaignConfig,
    AuditCampaignReport,
    run_audit,
)
from .billing import (
    BillingConfig,
    BillingReport,
    CrashDrillReport,
    run_billing,
    run_crash_drill,
)
from .chaos import (
    ChaosConfig,
    ChaosReport,
    run_chaos,
    run_outage_drill,
    run_pool_kill_drill,
)
from .controlplane import (
    DEFAULT_SHARD_COUNTS,
    format_controlplane_report,
    run_controlplane,
)
from .fig4_throughput import (
    FLOW_LENGTHS,
    PACKET_SIZES,
    Fig4Point,
    run_clean_vs_faulted,
    run_point,
    run_scalar_vs_batched,
    run_sweep,
)
from .fig5b_fct import SERVICE_CLASSES, FctResult, run_fig5b, run_trial
from .linklab import (
    DEFAULT_LATENCIES_S,
    DEFAULT_LOSS_RATES,
    DEFAULT_RATES_MBPS,
    LinklabReport,
    format_linklab_report,
    link_profile,
    run_linklab,
)
from .fig6_accuracy import (
    DPI_APP_OF_SITE,
    TARGET_SITES,
    AccuracyResult,
    run_accuracy,
    run_all_targets,
    run_cookies,
    run_ndpi,
    run_oob,
)
from .scaleout import (
    DEFAULT_WORKER_COUNTS,
    build_verification_stream,
    format_scaleout_report,
    run_scaleout,
)
from .sec3_dpi import Sec3Result, run_sec3
from .sec46_campus import Sec46Result, run_sec46

__all__ = [
    "AuditCampaignConfig",
    "AuditCampaignReport",
    "run_audit",
    "BillingConfig",
    "BillingReport",
    "CrashDrillReport",
    "run_billing",
    "run_crash_drill",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "run_outage_drill",
    "run_pool_kill_drill",
    "DEFAULT_SHARD_COUNTS",
    "format_controlplane_report",
    "run_controlplane",
    "FLOW_LENGTHS",
    "PACKET_SIZES",
    "Fig4Point",
    "run_clean_vs_faulted",
    "run_point",
    "run_scalar_vs_batched",
    "run_sweep",
    "SERVICE_CLASSES",
    "FctResult",
    "run_fig5b",
    "run_trial",
    "DEFAULT_LATENCIES_S",
    "DEFAULT_LOSS_RATES",
    "DEFAULT_RATES_MBPS",
    "LinklabReport",
    "format_linklab_report",
    "link_profile",
    "run_linklab",
    "DPI_APP_OF_SITE",
    "TARGET_SITES",
    "AccuracyResult",
    "run_accuracy",
    "run_all_targets",
    "run_cookies",
    "run_ndpi",
    "run_oob",
    "Sec3Result",
    "run_sec3",
    "Sec46Result",
    "run_sec46",
    "DEFAULT_WORKER_COUNTS",
    "build_verification_stream",
    "format_scaleout_report",
    "run_scaleout",
]
