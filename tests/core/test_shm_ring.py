"""Property tests for the shared-memory ring (PROTOCOL.md §12).

The ring is the hot path of the multi-process data plane, so its whole
contract is pinned here: FIFO delivery across arbitrary wraparound,
exact full-ring backpressure (``try_push`` is False precisely when
``slots`` frames are unconsumed), publish-last crash semantics (a slot
whose payload was written but whose sequence word was not advanced is
invisible — a torn frame can never be delivered), and bit-exact
round-trips of the real wire frames (:func:`encode_batch` requests and
:func:`encode_verdicts` replies), including across a real fork.
"""

import multiprocessing
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.cookie import SIGNATURE_BYTES, UUID_BYTES, Cookie
from repro.core.parallel import (
    decode_batch,
    decode_verdicts,
    encode_batch,
    encode_verdicts,
)
from repro.core.shm_ring import (
    RingClosed,
    RingFrameTooLarge,
    ShmRing,
)

_GRID_TIMESTAMPS = st.integers(0, 2**40).map(lambda micros: micros / 1e6)
_COOKIES = st.builds(
    Cookie,
    cookie_id=st.integers(0, 2**64 - 1),
    uuid=st.binary(min_size=UUID_BYTES, max_size=UUID_BYTES),
    timestamp=_GRID_TIMESTAMPS,
    signature=st.binary(min_size=SIGNATURE_BYTES, max_size=SIGNATURE_BYTES),
)
_FRAMES = st.binary(min_size=0, max_size=96)


class TestFifoAndWraparound:
    @settings(max_examples=40, deadline=None)
    @given(
        frames=st.lists(_FRAMES, max_size=64),
        slots=st.integers(2, 5),
    )
    def test_fifo_across_wraparound(self, frames, slots):
        """Any frame sequence, drained through a ring far smaller than
        the sequence, arrives intact and in order — each slot is reused
        many laps."""
        with ShmRing.create(slots=slots, slot_bytes=128) as ring:
            out = []
            for frame in frames:
                assert ring.try_push(frame)
                out.append(ring.try_pop())
            assert out == frames
            assert ring.try_pop() is None

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.booleans(), max_size=64),
        slots=st.integers(2, 5),
    )
    def test_interleaved_against_model(self, ops, slots):
        """Model-based: any interleaving of push/pop behaves exactly
        like a bounded FIFO queue of capacity ``slots`` — including
        try_push refusing precisely when the model is full and try_pop
        returning None precisely when it is empty."""
        with ShmRing.create(slots=slots, slot_bytes=128) as ring:
            model: list[bytes] = []
            next_frame = 0
            for do_push in ops:
                if do_push:
                    frame = b"frame-%d" % next_frame
                    ok = ring.try_push(frame)
                    assert ok == (len(model) < slots)
                    if ok:
                        model.append(frame)
                        next_frame += 1
                else:
                    frame = ring.try_pop()
                    if model:
                        assert frame == model.pop(0)
                    else:
                        assert frame is None
            # Drain: everything still queued arrives in order.
            for expected in model:
                assert ring.try_pop() == expected
            assert ring.try_pop() is None


class TestBackpressure:
    @settings(max_examples=25, deadline=None)
    @given(slots=st.integers(2, 6))
    def test_full_ring_refuses_until_a_pop_frees_a_slot(self, slots):
        with ShmRing.create(slots=slots, slot_bytes=64) as ring:
            for index in range(slots):
                assert ring.try_push(bytes([index]))
            # Exactly full: the producer's next slot still holds lap-0
            # data the consumer has not freed.
            assert ring.try_push(b"overflow") is False
            assert ring.push(b"overflow", timeout=0.0) is False
            assert ring.try_pop() == bytes([0])
            assert ring.try_push(b"overflow") is True
            drained = [ring.try_pop() for _ in range(slots)]
            assert drained == [bytes([i]) for i in range(1, slots)] + [
                b"overflow"
            ]

    def test_push_abort_hook_bounds_the_wait(self):
        with ShmRing.create(slots=2, slot_bytes=64) as ring:
            assert ring.try_push(b"a") and ring.try_push(b"b")
            # A dead-peer check aborts the blocking push long before any
            # timeout — this is what keeps a dispatcher from hanging on
            # a SIGKILLed worker's full ring.
            assert (
                ring.push(b"c", timeout=60.0, should_abort=lambda: True)
                is False
            )

    def test_pop_abort_hook_bounds_the_wait(self):
        with ShmRing.create(slots=2, slot_bytes=64) as ring:
            assert (
                ring.pop(timeout=60.0, should_abort=lambda: True) is None
            )


class TestCrashSemantics:
    @settings(max_examples=25, deadline=None)
    @given(
        published=st.lists(_FRAMES, max_size=3),
        torn=st.binary(min_size=1, max_size=64),
    )
    def test_partially_written_slot_is_never_delivered(
        self, published, torn
    ):
        """Publish-last discipline: simulate a producer killed after the
        length+payload writes but *before* the sequence store.  The
        consumer sees everything published before the crash and then
        nothing — never the torn frame."""
        with ShmRing.create(slots=4, slot_bytes=64) as ring:
            for frame in published:
                assert ring.try_push(frame)
            # Reach into the producer's next slot exactly as try_push
            # does, but stop short of the sequence store.
            head = ring._head
            base = 64 + (head % ring.slots) * ring._stride
            struct.pack_into("!I", ring._buf, base + 8, len(torn))
            start = base + 12
            ring._buf[start : start + len(torn)] = torn
            # (no sequence publish — the "crash")
            for frame in published:
                assert ring.try_pop() == frame
            assert ring.try_pop() is None
            assert ring.pop(timeout=0.0) is None

    def test_closed_ring_raises(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        ring.close()
        with pytest.raises(RingClosed):
            ring.try_push(b"x")
        with pytest.raises(RingClosed):
            ring.try_pop()
        ring.close()  # idempotent


class TestFrameLimits:
    def test_oversize_frame_is_rejected_not_fragmented(self):
        with ShmRing.create(slots=2, slot_bytes=64) as ring:
            with pytest.raises(RingFrameTooLarge):
                ring.try_push(b"x" * 65)
            # The ring is untouched: a normal frame still flows.
            assert ring.try_push(b"x" * 64)
            assert ring.try_pop() == b"x" * 64

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ShmRing.create(slots=1, slot_bytes=64)
        with pytest.raises(ValueError):
            ShmRing.create(slots=2, slot_bytes=8)


class TestWireFrameRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(batches=st.lists(st.lists(_COOKIES, max_size=8), max_size=6))
    def test_encode_batch_frames_survive_the_ring(self, batches):
        """The exact production framing: request frames built by
        :func:`encode_batch` cross the ring bit-identically, through
        wraparound, and decode to equal cookies."""
        with ShmRing.create(slots=2, slot_bytes=1024) as ring:
            for cookies in batches:
                blob = encode_batch(cookies)
                assert ring.try_push(blob)
                received = ring.try_pop()
                assert received == blob
                assert decode_batch(received) == cookies

    @settings(max_examples=30, deadline=None)
    @given(
        verdicts=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 2**64 - 1)),
            max_size=32,
        )
    )
    def test_encode_verdicts_frames_survive_the_ring(self, verdicts):
        with ShmRing.create(slots=2, slot_bytes=1024) as ring:
            blob = encode_verdicts(verdicts)
            assert ring.try_push(blob)
            assert decode_verdicts(ring.try_pop()) == verdicts


def _echo_child(request_name: str, response_name: str, count: int) -> None:
    request = ShmRing.attach(request_name)
    response = ShmRing.attach(response_name)
    try:
        for _ in range(count):
            frame = request.pop(timeout=30.0)
            response.push(frame, timeout=30.0)
    finally:
        request.close()
        response.close()


class TestCrossProcess:
    def test_attach_by_name_echo_round_trip(self):
        """A real second process attached by name echoes frames back:
        the spawn-mode worker path, including untracked attach (the
        parent's segments survive the child's exit)."""
        frames = [encode_batch([]), b"x" * 100, b"", b"\x00" * 64]
        with ShmRing.create(slots=2, slot_bytes=128) as request, ShmRing.create(
            slots=2, slot_bytes=128
        ) as response:
            child = multiprocessing.get_context("fork").Process(
                target=_echo_child,
                args=(request.name, response.name, len(frames)),
                daemon=True,
            )
            child.start()
            try:
                for frame in frames:
                    assert request.push(frame, timeout=30.0)
                    assert response.pop(timeout=30.0) == frame
            finally:
                child.join(timeout=10.0)
                assert child.exitcode == 0
