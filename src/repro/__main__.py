"""Command-line entry point: regenerate any of the paper's results.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig1                 # the 161-home preference study
    python -m repro fig2                 # the 1000-user survey
    python -m repro fig4 [--quick]      # middlebox throughput sweep
    python -m repro fig5b [--trials N]  # Boost FCT CDFs
    python -m repro fig6                 # matching accuracy grid
    python -m repro table1               # the property matrix
    python -m repro sec3                 # DPI limitations on cnn.com
    python -m repro sec46 [--scale S]   # campus trace replay
    python -m repro audit [--json]      # adversarial neutrality audit
    python -m repro controlplane        # sharded cookie server at scale
    python -m repro linklab [--json]    # cable/LTE/satellite scenario lab
    python -m repro billing [--json]    # multi-operator billing + crash drill

Benchmarks (`pytest benchmarks/ --benchmark-only`) assert the shapes; this
runner just prints them for a human.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig1(_args) -> None:
    from repro.study import BoostStudy

    result = BoostStudy(seed=2016).run()
    print("Fig. 1 — boosted websites across 400 offered homes")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")
    print(f"\n{'site':<28}{'homes':>6}{'rank':>8}")
    for domain, homes, rank in result.figure1_rows():
        if not domain.startswith("tail-site-"):
            print(f"{domain:<28}{homes:>6}{rank:>8}")


def _cmd_fig2(_args) -> None:
    from repro.study import ZeroRatingSurvey, analyze_coverage

    result = ZeroRatingSurvey(seed=2015).run()
    print("Fig. 2 — zero-rating survey")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")
    print(f"\n{'app':<22}{'users':>6}")
    for name, count in result.figure2_bars(limit=20):
        print(f"{name:<22}{count:>6}")
    print("\n§2 coverage of curated programs:")
    for program, fraction in analyze_coverage(result).program_coverage.items():
        print(f"  {program:<18}{fraction:>7.1%}")


def _cmd_fig4(args) -> None:
    from repro.experiments import run_sweep
    from repro.trace.stats import throughput_report

    flows = 60 if args.quick else 200
    descriptors = 200 if args.quick else 2000
    points = run_sweep(flows=flows, descriptors=descriptors)
    print("Fig. 4 — middlebox matching performance (pure Python)")
    print(throughput_report([p.sample for p in points]))


def _cmd_fig5b(args) -> None:
    from repro.experiments import run_fig5b

    result = run_fig5b(trials=args.trials, seed=100)
    print(f"Fig. 5(b) — 300 KB flow completion time ({args.trials} trials/class)")
    print(f"{'class':<14}{'median':>8}{'p90':>8}{'min':>8}{'max':>8}")
    for name, stats in result.summary().items():
        print(f"{name:<14}{stats['median_s']:>7.2f}s{stats['p90_s']:>7.2f}s"
              f"{stats['min_s']:>7.2f}s{stats['max_s']:>7.2f}s")


def _cmd_fig6(_args) -> None:
    from repro.experiments import TARGET_SITES, run_all_targets

    grid = run_all_targets()
    print("Fig. 6 — matching accuracy")
    print(f"{'target':<14}{'mechanism':<12}{'matched':>9}{'false/marked':>14}")
    for target in TARGET_SITES:
        for mechanism, result in grid[target].items():
            print(f"{target:<14}{mechanism:<12}"
                  f"{result.matched_fraction:>8.1%}"
                  f"{result.false_fraction_of_marked:>13.1%}")


def _cmd_table1(_args) -> None:
    from repro.baselines import format_table1

    print("Table 1 — mechanism property matrix")
    print(format_table1())


def _cmd_sec3(_args) -> None:
    from repro.experiments import run_sec3

    print("§3 — DPI limitations")
    for key, value in run_sec3().summary().items():
        print(f"  {key}: {value}")


def _cmd_sec46(args) -> None:
    from repro.experiments import run_sec46

    print(f"§4.6 — campus trace replay (scale={args.scale})")
    for key, value in run_sec46(scale=args.scale).summary().items():
        print(f"  {key}: {value}")


def _cmd_stats(args) -> None:
    """One merged telemetry snapshot for a synthetic data-path workload."""
    snapshot = run_stats_workload(
        flows=args.flows, packets_per_flow=6, pool_workers=args.pool_workers,
        include_audit=args.audit, include_server=args.server,
        include_sweep=args.sweep, include_billing=args.billing,
    )
    if args.json:
        print(snapshot.to_json())
    else:
        detail = ""
        if args.pool_workers:
            detail = (f" + {args.pool_workers}-worker process verifier "
                      "pool")
        if args.audit:
            detail += " + neutrality-audit campaign"
        if args.server:
            detail += " + sharded control plane"
        if args.sweep:
            detail += " + grid-sweep executor"
        if args.billing:
            detail += " + journal-backed billing"
        print(f"telemetry snapshot — {args.flows} flows through "
              f"cookie switch + zero-rating middlebox{detail}")
        print(snapshot.format_text())


def _cmd_audit(args) -> None:
    """Adversarial neutrality audit: honest stack + malicious personas."""
    from repro.experiments import AuditCampaignConfig, run_audit

    config = AuditCampaignConfig(
        seed=args.seed,
        trials=args.trials,
        personas=tuple(args.personas) if args.personas else None,
    )
    try:
        report = run_audit(config)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(report.to_json())
    else:
        print(f"neutrality audit — seed {config.seed}, "
              f"{config.trials} matched trials per element, "
              f"alpha {config.alpha}")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
        print(f"\n{'persona':<23}{'element':<21}{'expected':<10}"
              f"{'verdict':<10}{'flagged dimensions'}")
        for row in report.table_rows():
            print(f"{row['persona']:<23}{row['element']:<21}"
                  f"{row['expected']:<10}{row['verdict']:<10}"
                  f"{row['dimensions']}")
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
    if not report.ok:
        raise SystemExit(1)


def _cmd_chaos(args) -> None:
    """Fault-injection soak + outage and shard-kill drills."""
    from repro.experiments import ChaosConfig, run_chaos

    config = ChaosConfig(seed=args.seed, homes=args.homes,
                         duration_s=args.duration)
    report = run_chaos(config)
    if args.json:
        print(report.to_json())
    else:
        print(f"chaos soak — seed {config.seed}, {config.homes} homes, "
              f"{config.duration_s:.0f}s, all fault classes at "
              f"{config.drop_rate:.0%}")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
        for violation in report.violations:
            print(f"  VIOLATION: {violation.splitlines()[0]}")

    if not args.skip_drills:
        from repro.experiments import run_outage_drill, run_pool_kill_drill

        for mode in ("fail-open", "fail-closed"):
            drill = run_outage_drill(mode, seed=args.seed)
            print(f"\noutage drill ({mode}) — 30s control-plane outage")
            print(f"  boost before/during/after: "
                  f"{drill['before_outage']['boost_active']}/"
                  f"{drill['during_outage']['boost_active']}/"
                  f"{drill['after_recovery']['boost_active']}")
            print(f"  breaker opened {drill['breaker_opened']}x, "
                  f"{drill['grace_signings']} grace signings, "
                  f"{drill['rejected_open']} calls shed while open")
        kill = run_pool_kill_drill(seed=args.seed)
        print("\npool kill drill — SIGKILL a verifier shard until fallback")
        print(f"  kills {kill['kills']}, restarts {kill['restarts']}, "
              f"fallbacks {kill['fallbacks']} "
              f"(shards {kill['fallback_shards']}), "
              f"short verdict arrays {kill['short_verdict_arrays']}")

    if not report.ok:
        raise SystemExit(1)


def _cmd_billing(args) -> None:
    """Multi-operator zero-rating billing: journal, reconcile, crash drill."""
    from repro.experiments import BillingConfig, run_billing, run_crash_drill

    config = BillingConfig(seed=args.seed)
    report = run_billing(config)
    drill = None if args.skip_drill else run_crash_drill(seed=args.seed)
    if args.json:
        print(report.to_json())
        if drill is not None:
            print(drill.to_json())
    else:
        print(f"billing soak — seed {config.seed}, "
              f"{config.subscribers} subscribers across "
              f"{len(report.operators)} operator catalogs")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
        print()
        print(report.table())
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
        if drill is not None:
            print(f"\ncrash drill — SIGKILL mid-append at "
                  f"{len(drill.points)} injection points "
                  f"(digest {drill.digest[:16]}…)")
            for point in drill.points:
                print(f"  {point['point']:<20} "
                      f"acked {point['records_acked']:>2}  "
                      f"recovered {point['recovered_offset']:>2}  "
                      f"torn-tail {point['torn_tail_truncated']}  "
                      f"reconciled {point['records_reconciled']}")
            for violation in drill.violations:
                print(f"  VIOLATION: {violation}")
    if not report.ok or (drill is not None and not drill.ok):
        raise SystemExit(1)


def _axis_values(token: str) -> list[float]:
    """One grid-axis argument: a float, or a comma-separated run of them."""
    return [float(part) for part in token.split(",") if part]


def _flatten_axis(tokens: list[list[float]]) -> tuple[float, ...]:
    return tuple(value for token in tokens for value in token)


def _cmd_linklab(args) -> None:
    """Link-condition lab: boost/zero-rating/NCT across link profiles."""
    from repro.experiments import format_linklab_report, run_linklab

    kwargs = {}
    if args.rates:
        kwargs["rates_mbps"] = _flatten_axis(args.rates)
    if args.latencies:
        kwargs["latencies_s"] = _flatten_axis(args.latencies)
    if args.loss:
        kwargs["loss_rates"] = _flatten_axis(args.loss)
    report = run_linklab(seed=args.seed, workers=args.workers, **kwargs)
    if args.json:
        print(report.to_json(include_sweep=args.include_sweep))
    else:
        grid = (f"{len(report.rates_mbps)}x{len(report.latencies_s)}"
                f"x{len(report.loss_rates)}")
        stats = report.sweep_stats
        how = ("in-process" if stats.in_process
               else f"{stats.workers} workers")
        print(f"link-condition lab — {grid} grid "
              f"({len(report.cells)} cells), seed {report.campaign_seed}, "
              f"swept {how}")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
        print(format_linklab_report(report))


def _cmd_controlplane(args) -> None:
    """Sharded control plane vs CookieServer at subscriber scale."""
    import json as json_module

    from repro.experiments import (
        format_controlplane_report,
        run_controlplane,
    )

    shard_counts = tuple(args.shards) if args.shards else (1, 2, 4)
    report = run_controlplane(
        subscribers=args.subscribers,
        shard_counts=shard_counts,
        churn_events=args.churn_events,
        open_loop_ops=args.open_loop_ops,
    )
    if args.json:
        print(json_module.dumps(report, indent=2))
    else:
        print("§4.2 control plane — sharded cookie server, delta-log "
              "replication, live revocation drill")
        print(format_controlplane_report(report))


def _cmd_scaleout(args) -> None:
    """Multi-core verification: in-process vs 1/2/4 worker processes."""
    from repro.experiments import format_scaleout_report, run_scaleout

    workers = tuple(args.workers) if args.workers else None
    report = run_scaleout(
        worker_counts=workers or (1, 2, 4),
        cookies=args.cookies,
        rounds=args.rounds,
    )
    print("§5 scale-out — verification-bound stream, identical batches")
    print(format_scaleout_report(report))


def run_stats_workload(
    flows: int = 200,
    packets_per_flow: int = 6,
    pool_workers: int | None = None,
    include_audit: bool = False,
    include_server: bool = False,
    include_sweep: bool = False,
    include_billing: bool = False,
):
    """Drive a cookie switch and a zero-rating middlebox (each with its
    own matcher) through one registry and return the merged snapshot.

    The traffic mix exercises every counter family: valid cookies,
    forged cookies, replays, and bare flows, over enough simulated time
    for the replay cache to rotate.

    ``pool_workers`` additionally runs the same cookie mix through a
    :class:`~repro.core.parallel.ProcessShardExecutor` registered in the
    same registry — its collector polls each worker process's stats on
    demand at snapshot time, so the printed snapshot includes live
    multi-process counters under the ``pool.`` prefix.

    ``include_audit`` additionally runs the neutrality-audit campaign
    (:func:`repro.experiments.run_audit`) and merges its verdict counts
    into the same snapshot under the ``audit.`` prefix — the same
    collector pattern as every data-plane element.

    ``include_sweep`` additionally runs a small in-process grid sweep
    through :class:`~repro.core.sweep.SweepExecutor` with its collector
    registered, so the snapshot includes ``sweep.*`` counters (cells
    dispatched/completed, re-dispatches, worker restarts).

    ``include_billing`` additionally backs the middlebox with a
    journal-backed :class:`~repro.services.billing.BillingAccountant`
    over a one-operator catalog, so the snapshot includes ``billing.*``
    and ``billing.journal.*`` counters (bytes accounted free/charged,
    flushes, appends, fsyncs, recovery stats).

    ``include_server`` additionally drives a 2-shard
    :class:`~repro.core.cp.ShardedControlPlane` (acquire/renew/revoke
    churn against a registered verifier replica) and merges its
    telemetry — per-shard ops, log lengths, the broadcast-lag histogram,
    shed counts — into the same snapshot under the ``cp.`` prefix.
    """
    from repro.core import (
        CookieDescriptor,
        CookieGenerator,
        CookieMatcher,
        DescriptorStore,
    )
    from repro.core.switch import CookieSwitch
    from repro.core.transport import default_registry
    from repro.netsim.middlebox import Sink
    from repro.netsim.packet import make_tcp_packet
    from repro.services.zerorate import ZeroRatingMiddlebox
    from repro.telemetry import MetricsRegistry

    clock_now = 0.0
    clock = lambda: clock_now  # noqa: E731

    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    forged = CookieDescriptor.create(service_data="forged")

    registry = MetricsRegistry()
    switch = CookieSwitch(
        CookieMatcher(store, telemetry=registry), clock=clock,
        telemetry=registry,
    )
    accountant = None
    billing_dir = None
    if include_billing:
        import tempfile

        from repro.services.billing import BillingAccountant, BillingJournal
        from repro.services.zerorate import (
            AppCoverage,
            CatalogSet,
            OperatorCatalog,
        )

        billing_dir = tempfile.mkdtemp(prefix="repro-stats-billing-")
        catalogs = CatalogSet(
            [OperatorCatalog(
                operator="op-stats",
                apps=(AppCoverage(
                    app="zero-rate",
                    origin_ips=frozenset({"93.184.216.34"}),
                ),),
            )],
            default_operator="op-stats",
        )
        accountant = BillingAccountant(
            catalogs,
            BillingJournal(billing_dir, source="stats", fsync="never"),
        )
        accountant.register_telemetry(registry)
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store, telemetry=registry,
                      telemetry_prefix="middlebox.matcher"),
        clock=clock,
        billing=accountant,
        telemetry=registry,
    )
    switch >> middlebox >> Sink()
    flow_sizes = registry.histogram(
        "workload.flow_packets", buckets=(1, 2, 4, 8, 16)
    )

    transports = default_registry()
    replay_cookie = None
    for i in range(flows):
        # ~10 new flows per simulated second: the default 120-flow run
        # spans 12 s, past the replay cache's 2×NCT (10 s) window, so
        # the rotation counters are exercised.
        clock_now = i * 0.1
        sport = 20000 + i
        subscriber = f"10.0.{(i >> 8) & 255}.{i & 255}"
        first = make_tcp_packet(subscriber, sport, "93.184.216.34", 443,
                                payload_size=200)
        if i % 2 == 0:  # valid cookie
            cookie = CookieGenerator(descriptor, clock).generate()
            transports.attach(first, cookie)
            if replay_cookie is None:
                replay_cookie = cookie
        elif i % 10 == 1:  # forged cookie: verifies against no descriptor
            transports.attach(
                first, CookieGenerator(forged, clock).generate()
            )
        elif i % 10 == 3 and replay_cookie is not None:  # replayed uuid
            transports.attach(first, replay_cookie)
        count = 1 + (i % packets_per_flow)
        switch.push(first)
        for _ in range(count - 1):
            switch.push(
                make_tcp_packet("93.184.216.34", 443, subscriber, sport,
                                payload_size=1200)
            )
        flow_sizes.observe(count)

    if include_audit:
        from repro.experiments import AuditCampaignConfig, run_audit

        run_audit(AuditCampaignConfig(), telemetry=registry)

    if include_server:
        from repro.core.cp import ShardedControlPlane, VerifierReplica
        from repro.core.server import ServiceOffering

        controlplane = ShardedControlPlane(
            clock=clock, shards=2, mode="in-process"
        )
        controlplane.offer(ServiceOffering(name="zero-rate"))
        controlplane.register_replica(VerifierReplica("stats-verifier"))
        issued = [
            controlplane.acquire(f"sub-{i}", "zero-rate")
            for i in range(24)
        ]
        controlplane.renew("sub-0", issued[0].cookie_id)
        controlplane.revoke_batch([d.cookie_id for d in issued[:6]])
        # One shed of each flavor so the counters are non-zero.
        controlplane.inflight = controlplane.max_pending
        controlplane.admit()
        controlplane.inflight = 0
        controlplane.register_telemetry(registry, prefix="cp")

    if include_sweep:
        from repro.core.sweep import SweepCell, SweepExecutor

        def sweep_cell(params, seed):
            # A stand-in cell: enough work to produce honest counters.
            return sum(range(params["n"])) ^ seed

        # In-process mode (workers=0): the cell function never crosses a
        # process boundary, so the CLI needs no picklable module-level fn.
        with SweepExecutor(sweep_cell, workers=0, campaign_seed=7) as sweep:
            sweep.register_telemetry(registry, prefix="sweep")
            sweep.run(
                [SweepCell(labels=("stats", i), params={"n": 1000})
                 for i in range(8)]
            )

    if accountant is not None:
        # Journal every pending delta so the snapshot's billing.* and
        # billing.journal.* counters reflect the whole workload.
        accountant.flush_all(now=clock_now)

    snapshot = None
    if pool_workers:
        from repro.core.parallel import ProcessShardExecutor

        cookies = [
            CookieGenerator(descriptor, clock).generate()
            for _ in range(max(1, flows))
        ]
        with ProcessShardExecutor.auto(store, workers=pool_workers) as pool:
            pool.match_batch(cookies + cookies[: len(cookies) // 4],
                             clock_now)
            pool.register_telemetry(registry, prefix="pool")
            # Transport internals too: ring/pipe dispatch mix, degrade
            # flag — the CLI is where an operator would look for them.
            pool.register_transport_telemetry(registry, prefix="pool.shm")
            # Snapshot while workers are alive: the pool collector polls
            # each worker process on demand.
            snapshot = registry.snapshot()
    if snapshot is None:
        snapshot = registry.snapshot()
    if billing_dir is not None:
        import shutil

        accountant.journal.close()
        shutil.rmtree(billing_dir, ignore_errors=True)
    return snapshot


COMMANDS = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5b": _cmd_fig5b,
    "fig6": _cmd_fig6,
    "table1": _cmd_table1,
    "sec3": _cmd_sec3,
    "sec46": _cmd_sec46,
    "stats": _cmd_stats,
    "scaleout": _cmd_scaleout,
    "controlplane": _cmd_controlplane,
    "chaos": _cmd_chaos,
    "audit": _cmd_audit,
    "linklab": _cmd_linklab,
    "billing": _cmd_billing,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from 'Neutral Net Neutrality' "
                    "(SIGCOMM 2016).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list regenerable results")
    sub.add_parser("fig1", help="161-home Boost preference study")
    sub.add_parser("fig2", help="1000-user zero-rating survey + §2 coverage")
    fig4 = sub.add_parser("fig4", help="middlebox throughput sweep")
    fig4.add_argument("--quick", action="store_true",
                      help="smaller sweep for a fast look")
    fig5b = sub.add_parser("fig5b", help="Boost flow-completion-time CDFs")
    fig5b.add_argument("--trials", type=int, default=8)
    sub.add_parser("fig6", help="matching accuracy: cookies vs nDPI vs OOB")
    sub.add_parser("table1", help="mechanism property matrix")
    sub.add_parser("sec3", help="DPI limitations on cnn.com")
    sec46 = sub.add_parser("sec46", help="campus trace replay")
    sec46.add_argument("--scale", type=float, default=0.0004)
    stats = sub.add_parser(
        "stats",
        help="merged telemetry snapshot (matcher + switch + middlebox)",
    )
    stats.add_argument("--flows", type=int, default=200,
                       help="synthetic flows to drive through the path")
    stats.add_argument("--json", action="store_true",
                       help="print the snapshot as JSON")
    stats.add_argument("--pool-workers", type=int, default=0,
                       help="also run a process-shard verifier pool with "
                            "N workers and include its telemetry")
    stats.add_argument("--audit", action="store_true",
                       help="also run the neutrality-audit campaign and "
                            "merge its verdict counts into the snapshot")
    stats.add_argument("--server", action="store_true",
                       help="also drive a sharded control plane and merge "
                            "its telemetry (per-shard ops, log lengths, "
                            "broadcast-lag histogram, shed counts)")
    stats.add_argument("--sweep", action="store_true",
                       help="also run a small grid sweep and merge the "
                            "executor's sweep.* counters")
    stats.add_argument("--billing", action="store_true",
                       help="back the middlebox with a journal-backed "
                            "billing accountant and merge its billing.* "
                            "and billing.journal.* counters")
    scaleout = sub.add_parser(
        "scaleout",
        help="multi-core verification: in-process vs worker processes",
    )
    scaleout.add_argument("--workers", type=int, nargs="*",
                          help="worker counts to measure (default: 1 2 4)")
    scaleout.add_argument("--cookies", type=int, default=24_000)
    scaleout.add_argument("--rounds", type=int, default=3)
    controlplane = sub.add_parser(
        "controlplane",
        help="sharded async cookie server vs CookieServer at subscriber "
             "scale, with the live revocation drill",
    )
    controlplane.add_argument("--subscribers", type=int, default=100_000,
                              help="population size (the checked-in report "
                                   "uses 1,000,000)")
    controlplane.add_argument("--shards", type=int, nargs="*",
                              help="shard counts to measure (default: 1 2 4)")
    controlplane.add_argument("--churn-events", type=int, default=30_000)
    controlplane.add_argument("--open-loop-ops", type=int, default=4_000)
    controlplane.add_argument("--json", action="store_true",
                              help="print the full report as JSON")
    chaos = sub.add_parser(
        "chaos",
        help="fault-injection soak + outage and shard-kill drills",
    )
    chaos.add_argument("--seed", type=int, default=20160822,
                       help="PRNG seed; a run replays bit-identically")
    chaos.add_argument("--homes", type=int, default=8)
    chaos.add_argument("--duration", type=float, default=60.0,
                       help="simulated seconds of traffic")
    chaos.add_argument("--json", action="store_true",
                       help="print the full soak report as JSON")
    chaos.add_argument("--skip-drills", action="store_true",
                       help="soak only; skip outage and pool-kill drills")
    audit = sub.add_parser(
        "audit",
        help="adversarial neutrality audit: record/replay matched pairs "
             "against the honest stack and six malicious personas",
    )
    audit.add_argument("--seed", type=int, default=20160822,
                       help="audit seed; verdicts replay bit-identically")
    audit.add_argument("--trials", type=int, default=12,
                       help="matched-pair trials per element audit")
    audit.add_argument("--personas", nargs="*",
                       help="restrict to these persona names "
                            "(default: all six)")
    audit.add_argument("--json", action="store_true",
                       help="print the full verdict report as JSON")
    linklab = sub.add_parser(
        "linklab",
        help="link-condition scenario lab: boost FCT gain, zero-rating "
             "accounting, and NCT renewal across a rate x latency x loss "
             "grid (cable / LTE / satellite)",
    )
    linklab.add_argument("--seed", type=int, default=20160822,
                         help="campaign seed; the report replays "
                              "bit-identically at any worker count")
    linklab.add_argument("--workers", type=int, default=None,
                         help="sweep worker processes (default: sized to "
                              "the box; 0 forces in-process)")
    linklab.add_argument("--rates", type=_axis_values, nargs="*",
                         help="downlink rates in Mb/s, space- or "
                              "comma-separated (default: 2 6 12 20)")
    linklab.add_argument("--latencies", type=_axis_values, nargs="*",
                         help="one-way latencies in seconds "
                              "(default: 0.005 0.035 0.12 0.28)")
    linklab.add_argument("--loss", type=_axis_values, nargs="*",
                         help="loss rates (default: 0 0.005 0.02)")
    linklab.add_argument("--json", action="store_true",
                         help="print the heatmap report as JSON")
    linklab.add_argument("--include-sweep", action="store_true",
                         help="with --json, include sweep execution "
                              "stats (non-deterministic across configs)")
    billing = sub.add_parser(
        "billing",
        help="multi-operator zero-rating billing soak: crash-safe "
             "journal, exactly-once reconciliation, SIGKILL crash drill",
    )
    billing.add_argument("--seed", type=int, default=20160822,
                         help="billing seed; invoices and the drill "
                              "digest replay bit-identically")
    billing.add_argument("--json", action="store_true",
                         help="print the full report(s) as JSON")
    billing.add_argument("--skip-drill", action="store_true",
                         help="soak only; skip the SIGKILL crash drill")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("regenerable results:")
        for name, func in COMMANDS.items():
            print(f"  {name:<8} {func.__doc__ or ''}".rstrip())
        print("\nrun: python -m repro <name>")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
