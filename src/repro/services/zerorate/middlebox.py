"""The zero-rating middlebox (§4.6).

"Our middle-box keeps two counters per IP address (one for free and
another for charged data), and enforces the service in software for both
directions of a flow."  For each packet it does one of three things:
search for a cookie (first packets of a flow), search-and-verify (a packet
that carries one), or simply map the packet to its flow's service — the
task mix that determines Fig. 4's throughput curve.

This is the performance-critical path of the repository, so unlike
:class:`repro.core.switch.CookieSwitch` it keeps its own minimal flow
dictionary instead of the full :class:`FlowTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...core.matcher import CookieMatcher
from ...core.transport import TransportRegistry, default_registry
from ...netsim.flow import FiveTuple
from ...netsim.middlebox import Element
from ...netsim.packet import Packet

__all__ = [
    "SubscriberCounters",
    "ZeroRatingMiddlebox",
    "ZERO_RATE_SNIFF_PACKETS",
    "flow_key_to_fivetuple",
]


def flow_key_to_fivetuple(key: tuple) -> FiveTuple:
    """Convert the middlebox's inline flow key to a canonical FiveTuple.

    The inline key is ``((ip, port), (ip, port), proto)`` with endpoints
    in lexicographic order — the same canonical ordering
    :meth:`FiveTuple.canonical` uses — so the conversion is direct.  Used
    to hand resolved flows to :class:`repro.core.offload.HardwarePrefilter`.
    """
    (a_ip, a_port), (b_ip, b_port), proto = key
    return FiveTuple(a_ip, a_port, b_ip, b_port, proto)

ZERO_RATE_SNIFF_PACKETS = 3


@dataclass
class SubscriberCounters:
    """The paper's two per-IP counters."""

    free_bytes: int = 0
    charged_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.free_bytes + self.charged_bytes

    @property
    def free_fraction(self) -> float:
        total = self.total_bytes
        return self.free_bytes / total if total else 0.0


@dataclass
class _FlowState:
    """Per-flow fast-path state: the decision plus the sniff countdown."""

    zero_rated: bool = False
    packets_seen: int = 0
    subscriber_ip: str = ""
    service: object = None


class ZeroRatingMiddlebox(Element):
    """Counts subscriber traffic as free (cookied) or charged.

    ``is_subscriber`` decides which side of a packet is the subscriber
    (default: any RFC1918-ish "10." / "192.168." address).  Both directions
    of a flow share one state entry keyed on the canonical 5-tuple.
    """

    def __init__(
        self,
        matcher: CookieMatcher,
        clock: Callable[[], float],
        registry: TransportRegistry | None = None,
        is_subscriber: Callable[[str], bool] | None = None,
        sniff_packets: int = ZERO_RATE_SNIFF_PACKETS,
        on_flow_resolved: Callable[[tuple, "_FlowState"], None] | None = None,
        name: str = "zero-rating",
    ) -> None:
        super().__init__(name)
        self.matcher = matcher
        self.clock = clock
        self.registry = registry or default_registry()
        self.is_subscriber = is_subscriber or (
            lambda ip: ip.startswith("10.") or ip.startswith("192.168.")
        )
        self.sniff_packets = sniff_packets
        #: Invoked once per flow the moment its fate is final (cookie
        #: matched, or the sniff window closed without one).  The §4.6
        #: hardware co-design hooks here to offload the rest of the flow.
        self.on_flow_resolved = on_flow_resolved
        self.counters: dict[str, SubscriberCounters] = {}
        self._flows: dict[tuple, _FlowState] = {}
        self.packets_processed = 0
        self.cookie_hits = 0
        self.cookie_misses = 0

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        self.packets_processed += 1
        ip = packet.ip
        l4 = packet.l4
        if ip is None or l4 is None:
            self.emit(packet)
            return
        # Canonical bidirectional key without FlowTable overhead.
        a = (ip.src, l4.src_port)
        b = (ip.dst, l4.dst_port)
        key = (a, b, ip.proto) if a <= b else (b, a, ip.proto)
        state = self._flows.get(key)
        if state is None:
            state = _FlowState(
                subscriber_ip=self._subscriber_of(ip.src, ip.dst)
            )
            self._flows[key] = state
        state.packets_seen += 1

        if not state.zero_rated and state.packets_seen <= self.sniff_packets:
            found = self.registry.extract(packet)
            if found is not None:
                descriptor = self.matcher.match(found[0], self.clock())
                if descriptor is not None:
                    state.zero_rated = True
                    state.service = descriptor.service_data
                    self.cookie_hits += 1
                    self._resolve(key, state)
                else:
                    self.cookie_misses += 1
            elif state.packets_seen == self.sniff_packets:
                # Sniff window closed with no cookie: charged for good.
                self._resolve(key, state)

        self._account(state, packet)
        if state.zero_rated:
            packet.meta["zero_rated"] = True
        self.emit(packet)

    def _resolve(self, key: tuple, state: _FlowState) -> None:
        if self.on_flow_resolved is not None:
            self.on_flow_resolved(key, state)

    def _subscriber_of(self, src: str, dst: str) -> str:
        if self.is_subscriber(src):
            return src
        if self.is_subscriber(dst):
            return dst
        return src  # transit traffic: bill the sender

    def _account(self, state: _FlowState, packet: Packet) -> None:
        counters = self.counters.get(state.subscriber_ip)
        if counters is None:
            counters = SubscriberCounters()
            self.counters[state.subscriber_ip] = counters
        if state.zero_rated:
            counters.free_bytes += packet.wire_length
        else:
            counters.charged_bytes += packet.wire_length

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def counters_for(self, subscriber_ip: str) -> SubscriberCounters:
        """Counters for one subscriber (zeros if never seen)."""
        return self.counters.get(subscriber_ip, SubscriberCounters())

    def expire_flows(self, keep_last: int = 0) -> int:
        """Drop flow state (a real box ages it; benchmarks reset it).

        Returns how many entries were dropped.
        """
        if keep_last <= 0:
            dropped = len(self._flows)
            self._flows.clear()
            return dropped
        keys = list(self._flows)
        for key in keys[:-keep_last]:
            del self._flows[key]
        return len(keys) - keep_last

    @property
    def tracked_flows(self) -> int:
        return len(self._flows)
