"""The Boost daemon on the home access point (§5.2).

"We implement a python-based daemon on the WiFi router which sniffs
traffic, looks up cookies and enforces the desired QoS service.  Our
daemon sniffs the first 3 incoming packets for each flow; if it detects a
cookie, it tries to match the cookie against a known descriptor and
verifies its integrity.  If this is successful, it adds this and the
reverse flow to the fast lane."

Enforcement mirrors the prototype: boosted flows are stamped into the
fast-lane class (the WMM high-priority queue analogue) and, while any
boost is active, all other traffic is throttled.  Conflicts between
household members resolve *last one wins* — only the most recently bound
boost descriptor's flows ride the fast lane.
"""

from __future__ import annotations

from ...core import CookieDescriptor, CookieMatcher, DescriptorStore
from ...core.switch import CookieSwitch
from ...core.transport import TransportRegistry
from ...netsim.events import EventLoop, ScheduledEvent
from ...netsim.packet import Packet
from ...netsim.topology import HomeNetwork
from .qos import FAST_LANE_CLASS, CapacityEstimator, ThrottlePlan, WMM_FAST_LANE_CATEGORY
from .server import BOOST_EVENT_LIFETIME

__all__ = ["BoostDaemon", "DEGRADED_FAIL_OPEN", "DEGRADED_FAIL_CLOSED"]

#: While the cookie server is unreachable, keep the current fast-lane
#: state frozen (expiry suspended) — households keep what they paid for.
DEGRADED_FAIL_OPEN = "fail-open"
#: While the cookie server is unreachable, tear the fast lane down and
#: refuse new activations — nobody gets boosted on stale authority.
DEGRADED_FAIL_CLOSED = "fail-closed"


class BoostDaemon:
    """AP-side enforcement: cookie matching + fast lane + throttle.

    Splice :attr:`switch` into the home network's WAN ingress path (pass
    it in ``HomeNetwork(middleboxes=[daemon.switch])``), then call
    :meth:`attach` so the daemon can drive the throttle.
    """

    def __init__(
        self,
        loop: EventLoop,
        store: DescriptorStore,
        registry: TransportRegistry | None = None,
        boost_lifetime: float = BOOST_EVENT_LIFETIME,
        throttle_plan: ThrottlePlan | None = None,
        capacity_estimator: CapacityEstimator | None = None,
        sniff_packets: int = 3,
        telemetry=None,
        telemetry_prefix: str = "boost",
        verifier: "CookieMatcher | None" = None,
        degraded_mode: str = DEGRADED_FAIL_CLOSED,
    ) -> None:
        if degraded_mode not in (DEGRADED_FAIL_OPEN, DEGRADED_FAIL_CLOSED):
            raise ValueError(f"unknown degraded mode {degraded_mode!r}")
        self.loop = loop
        self.store = store
        # ``verifier`` lets a deployment swap the embedded single-core
        # matcher for a pool (ShardedVerifierPool / ProcessShardExecutor
        # over the same store) — anything exposing ``match`` and
        # ``register_telemetry`` drops in.
        self.matcher = verifier if verifier is not None else CookieMatcher(store)
        self.switch = CookieSwitch(
            self.matcher,
            loop=loop,
            registry=registry,
            applier=self._apply_boost,
            sniff_packets=sniff_packets,
            name="boost-daemon",
        )
        self.boost_lifetime = boost_lifetime
        self.throttle_plan = throttle_plan or ThrottlePlan()
        self.capacity_estimator = capacity_estimator
        self.home: HomeNetwork | None = None
        self.active_descriptor_id: int | None = None
        self._expiry_event: ScheduledEvent | None = None
        self.boost_events = 0
        self.superseded_events = 0
        #: Degraded-mode machinery: when the out-of-band path to the
        #: cookie server is down (reported via :meth:`set_degraded` or a
        #: breaker attached with :meth:`attach_breaker`), ``degraded_mode``
        #: decides what happens to the household fast lane.
        self.degraded_mode = degraded_mode
        self.degraded = False
        self.degraded_entered = 0
        self.degraded_activations_blocked = 0
        self._breaker = None
        if telemetry is not None:
            self.register_telemetry(telemetry, prefix=telemetry_prefix)

    def register_telemetry(self, registry, prefix: str = "boost") -> None:
        """Export daemon state (boost events, throttle status) plus the
        embedded switch's and matcher's counters into a
        :class:`~repro.telemetry.MetricsRegistry`."""
        from ...telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.boost_events": self.boost_events,
                    f"{prefix}.superseded_events": self.superseded_events,
                    f"{prefix}.degraded_entered": self.degraded_entered,
                    f"{prefix}.degraded_activations_blocked": (
                        self.degraded_activations_blocked
                    ),
                },
                gauges={
                    f"{prefix}.boost_active": int(self.boost_active),
                    f"{prefix}.degraded": int(self.degraded),
                },
            )

        registry.register_collector(prefix, collect)
        self.switch.register_telemetry(registry, prefix=f"{prefix}.switch")
        self.matcher.register_telemetry(registry, prefix=f"{prefix}.matcher")

    def attach(self, home: HomeNetwork) -> None:
        """Bind to the home network whose throttle this daemon drives."""
        self.home = home
        if self.capacity_estimator is None:
            self.capacity_estimator = CapacityEstimator(
                self.loop, true_capacity=lambda: home.downlink.rate_bps
            )

    # ------------------------------------------------------------------
    # Degraded mode (cookie server unreachable)
    # ------------------------------------------------------------------
    def attach_breaker(self, breaker) -> None:
        """Follow a :class:`~repro.core.resilience.CircuitBreaker` (the
        agent's channel breaker): whenever the breaker is open the daemon
        runs degraded, re-evaluated on every packet that would touch the
        fast lane."""
        self._breaker = breaker

    def set_degraded(self, degraded: bool) -> None:
        """Enter or leave degraded operation (idempotent).

        Verification itself still runs — the descriptor store is local.
        What changes is the household fast-lane state: fail-closed tears
        it down and blocks new activations; fail-open freezes the current
        boost (its expiry timer is suspended, because the daemon cannot
        renew authority while the server is down) and re-arms a fresh
        lifetime on recovery.
        """
        if degraded == self.degraded:
            return
        self.degraded = degraded
        if degraded:
            self.degraded_entered += 1
            if self.degraded_mode == DEGRADED_FAIL_CLOSED:
                self.cancel_boost()
            elif self._expiry_event is not None:
                self._expiry_event.cancel()
                self._expiry_event = None
        elif (
            self.active_descriptor_id is not None
            and self._expiry_event is None
        ):
            # Fail-open recovery: the frozen boost gets one fresh
            # lifetime from the moment authority is restored.
            self._expiry_event = self.loop.schedule(
                self.boost_lifetime,
                lambda cid=self.active_descriptor_id: self._expire(cid),
            )

    def poll_degraded(self) -> None:
        """Re-evaluate degraded state from the attached breaker.

        Called automatically on every fast-lane application; deployments
        with quiet data paths should also schedule it on a timer so an
        outage is noticed without waiting for the next valid cookie."""
        if self._breaker is not None:
            self.set_degraded(self._breaker.state == self._breaker.OPEN)

    # ------------------------------------------------------------------
    # Service application (called by the cookie switch per packet)
    # ------------------------------------------------------------------
    def _apply_boost(self, descriptor: CookieDescriptor, packet: Packet) -> None:
        self.poll_degraded()
        if self.degraded and self.degraded_mode == DEGRADED_FAIL_CLOSED:
            self.degraded_activations_blocked += 1
            return
        if self.active_descriptor_id != descriptor.cookie_id:
            if self.degraded:
                # Fail-open freezes the *current* state; it does not
                # start or hand over boosts on unrenewable authority.
                self.degraded_activations_blocked += 1
                return
            self._activate(descriptor)
        if descriptor.cookie_id == self.active_descriptor_id:
            packet.meta["qos_class"] = FAST_LANE_CLASS
            packet.meta["qos_class_name"] = WMM_FAST_LANE_CATEGORY
            packet.meta["service"] = descriptor.service_data

    def _activate(self, descriptor: CookieDescriptor) -> None:
        """Start (or hand over) the household's boost event.

        Last one wins: a newer descriptor supersedes the current one; "we
        expect users to resolve conflicts at a human level, if this is not
        enough".
        """
        if self.active_descriptor_id is not None:
            self.superseded_events += 1
        self.active_descriptor_id = descriptor.cookie_id
        self.boost_events += 1
        if self._expiry_event is not None:
            self._expiry_event.cancel()
        self._expiry_event = self.loop.schedule(
            self.boost_lifetime,
            lambda cid=descriptor.cookie_id: self._expire(cid),
        )
        # Homes without a throttle stage (e.g. WMM-only enforcement)
        # still get the fast lane; there is just nothing to shape.
        if self.home is not None and self.home.throttle is not None:
            rate = self._current_throttle_rate()
            self.home.activate_throttle(rate)

    def _expire(self, cookie_id: int) -> None:
        if self.active_descriptor_id != cookie_id:
            return  # superseded in the meantime
        self.active_descriptor_id = None
        self._expiry_event = None
        if self.home is not None:
            self.home.deactivate_throttle()

    def cancel_boost(self) -> None:
        """Explicitly end the current boost event (user pressed stop)."""
        if self.active_descriptor_id is None:
            return
        if self._expiry_event is not None:
            self._expiry_event.cancel()
            self._expiry_event = None
        self.active_descriptor_id = None
        if self.home is not None:
            self.home.deactivate_throttle()

    def _current_throttle_rate(self) -> float:
        assert self.home is not None
        if self.capacity_estimator is not None:
            capacity = self.capacity_estimator.probe_once()
        else:
            capacity = self.home.downlink.rate_bps
        return self.throttle_plan.throttle_rate(capacity)

    @property
    def boost_active(self) -> bool:
        return self.active_descriptor_id is not None
