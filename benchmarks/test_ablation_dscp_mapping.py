"""Ablation — cookie→DSCP edge mapping vs cookies at every hop (§4.6).

"The ISP can look up cookies at the edge, and then use an internal
mechanism to consume a service within the network (e.g., DiffServ) without
requiring all switches to support cookies."

This ablation runs the same flows across a three-hop path in both
deployments and compares (a) how many hops must run cookie verification
and (b) per-packet processing cost, while asserting the delivered service
is identical.
"""

import time

from repro.baselines.diffserv import DscpClassTable, DscpEnforcer
from repro.core import CookieMatcher, DescriptorStore
from repro.core.switch import CookieSwitch, DscpServiceApplier
from repro.netsim.middlebox import Sink
from repro.trace.moongen import PacketGenerator, build_descriptor_pool

FLOWS = 80
PACKETS_PER_FLOW = 30
HOPS = 3


def _workload(store, clock):
    pool = build_descriptor_pool(100, store)
    generator = PacketGenerator(
        pool, clock=clock, packet_size=512, packets_per_flow=PACKETS_PER_FLOW
    )
    return list(generator.packets(FLOWS))


def _run_everywhere():
    """Every hop is a cookie switch with its own matcher."""
    clock = time.perf_counter
    store = DescriptorStore()
    packets = _workload(store, clock)
    hops = [
        CookieSwitch(CookieMatcher(store, nct=600.0), clock=clock, name=f"hop{i}")
        for i in range(HOPS)
    ]
    sink = Sink(keep=False)
    head = hops[0]
    for upstream, downstream in zip(hops, hops[1:]):
        upstream >> downstream
    hops[-1] >> sink
    start = clock()
    for packet in packets:
        head.push(packet)
    elapsed = clock() - start
    served_at_last_hop = hops[-1].stats.packets_served
    return {
        "elapsed": elapsed,
        "cookie_hops": HOPS,
        "verifications": sum(h.stats.cookies_found for h in hops),
        "served_at_egress": served_at_last_hop,
        "packets": len(packets),
    }


def _run_edge_dscp():
    """Edge hop verifies cookies and writes DSCP; inner hops are plain
    DiffServ enforcers."""
    clock = time.perf_counter
    store = DescriptorStore()
    packets = _workload(store, clock)
    table = DscpClassTable()
    table.define(34, "zero-rate")
    edge = CookieSwitch(
        CookieMatcher(store, nct=600.0),
        clock=clock,
        applier=DscpServiceApplier({"zero-rate": 34}),
        name="edge",
    )
    inner = [
        DscpEnforcer(table, class_to_level={"zero-rate": 0}, name=f"core{i}")
        for i in range(HOPS - 1)
    ]
    sink = Sink(keep=False)
    edge >> inner[0]
    for upstream, downstream in zip(inner, inner[1:]):
        upstream >> downstream
    inner[-1] >> sink
    start = clock()
    for packet in packets:
        edge.push(packet)
    elapsed = clock() - start
    return {
        "elapsed": elapsed,
        "cookie_hops": 1,
        "verifications": edge.stats.cookies_found,
        "served_at_egress": inner[-1].served,
        "packets": len(packets),
    }


def test_ablation_dscp_edge_mapping(benchmark, report):
    edge = benchmark.pedantic(_run_edge_dscp, rounds=1, iterations=1)
    everywhere = _run_everywhere()

    report("deployment ablation over a 3-hop path")
    report(f"{'':<24}{'edge+DSCP':>12}{'cookies-everywhere':>20}")
    for key in ("cookie_hops", "verifications", "served_at_egress", "packets"):
        report(f"{key:<24}{edge[key]:>12,}{everywhere[key]:>20,}")
    report(f"{'elapsed_s':<24}{edge['elapsed']:>12.4f}"
           f"{everywhere['elapsed']:>20.4f}")

    benchmark.extra_info["edge_verifications"] = edge["verifications"]
    benchmark.extra_info["everywhere_verifications"] = everywhere["verifications"]

    # Only the edge runs cookie logic; the interior needs none.
    assert edge["cookie_hops"] == 1
    assert edge["verifications"] == FLOWS
    # The everywhere deployment pays HOPS x the cookie work and keeps
    # HOPS x the flow/replay state.  (Each hop's replay cache is
    # independent, so the same cookie is legitimately accepted once per
    # observation point — the distributed-uniqueness question the paper
    # defers to future work only arises when one logical verifier is
    # scaled out across boxes.)
    assert everywhere["verifications"] == FLOWS * HOPS
    # Both deployments deliver the identical service at the egress.
    assert edge["served_at_egress"] == edge["packets"]
    assert everywhere["served_at_egress"] == everywhere["packets"]
    # And the edge deployment is no slower.
    assert edge["elapsed"] < everywhere["elapsed"] * 1.5
