"""Every malicious-operator persona must trip the auditor on each of its
target elements — and on the dimension its cheat actually moves."""

import pytest

from repro.audit import PERSONAS, AuditConfig, NeutralityAuditor, persona_catalog

from .test_auditor import run_element

FAST = AuditConfig(trials=8)

# persona -> {element: dimensions that must be flagged}
EXPECTED = {
    "non-cookie-throttler": {
        # Dropping non-free packets breaks bill==delivered everywhere; on
        # the stateful path the cookied flow escapes the throttle whole,
        # so the paired FCT test fires too.
        "zerorate-stateful": {"conservation", "performance"},
        "zerorate-stateless": {"conservation"},
    },
    "free-byte-inflater": {
        "zerorate-stateful": {"conservation"},
        "zerorate-stateless": {"conservation"},
    },
    "boost-under-deliverer": {
        "boost": {"delivery"},
    },
    "replay-honorer": {
        "zerorate-stateful": {"replay"},
        "zerorate-stateless": {"replay"},
    },
    "descriptor-colluder": {
        # The colluder's stapled cookies ride bytes free on bare flows
        # (exclusivity) and collapse the advertised cookied-vs-bare
        # accounting gap; the extra cookie bytes are visible on the wire.
        "zerorate-stateful": {"accounting", "exclusivity"},
        "zerorate-stateless": {"accounting", "exclusivity"},
    },
    "revocation-ignorer": {
        "zerorate-stateful": {"revocation"},
        "zerorate-stateless": {"revocation"},
    },
}


def test_expected_matrix_covers_every_persona():
    assert set(EXPECTED) == set(PERSONAS)


CASES = [
    (persona, element)
    for persona, elements in sorted(EXPECTED.items())
    for element in sorted(elements)
]


@pytest.mark.parametrize("persona_name,element", CASES)
def test_persona_is_flagged_on_expected_dimensions(persona_name, element):
    persona = PERSONAS[persona_name]()
    verdict = run_element(NeutralityAuditor(FAST), element, persona)
    assert verdict.flagged
    assert verdict.persona == persona_name
    flagged = {name for name, dim in verdict.dimensions.items() if not dim.ok}
    missing = EXPECTED[persona_name][element] - flagged
    assert not missing, f"expected {missing} flagged, got {flagged}"
    assert verdict.violations


def test_persona_targets_match_expected_matrix():
    for name, cls in PERSONAS.items():
        targets = set(cls().targets)
        audited = set(EXPECTED[name])
        assert all(
            any(element == t or element.startswith(t + "-") for t in targets)
            for element in audited
        ), (name, targets, audited)


def test_persona_catalog_is_complete_and_serializable():
    catalog = persona_catalog()
    names = [entry["name"] for entry in catalog]
    assert sorted(names) == sorted(PERSONAS)
    for entry in catalog:
        assert entry["targets"]
        assert entry["description"]
