"""Boost: the user-defined fast lane (agent + AP daemon + cookie server)."""

from .agent import BoostAgent, BoostPreferences
from .daemon import BoostDaemon
from .qos import (
    BEST_EFFORT_CLASS,
    FAST_LANE_CLASS,
    CapacityEstimator,
    ThrottlePlan,
    WMM_FAST_LANE_CATEGORY,
)
from .server import BOOST_EVENT_LIFETIME, BOOST_SERVICE, make_boost_server

__all__ = [
    "BoostAgent",
    "BoostPreferences",
    "BoostDaemon",
    "BEST_EFFORT_CLASS",
    "FAST_LANE_CLASS",
    "CapacityEstimator",
    "ThrottlePlan",
    "WMM_FAST_LANE_CATEGORY",
    "BOOST_EVENT_LIFETIME",
    "BOOST_SERVICE",
    "make_boost_server",
]
