"""Link tests: serialization timing, propagation, priority interaction."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.links import Link
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.netsim.queues import StrictPriorityScheduler


def _packet(size=1210, qos=None):
    # 1210 payload + 40 headers = 1250 wire bytes = 10_000 bits
    packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=size)
    if qos is not None:
        packet.meta["qos_class"] = qos
    return packet


class TestSerialization:
    def test_transmit_time_matches_rate(self):
        loop = EventLoop()
        sink = Sink()
        link = Link(loop, rate_bps=10_000)  # 10 kb/s
        link >> sink
        link.push(_packet())  # 10_000 bits -> exactly 1 s
        loop.run_until_idle()
        assert loop.now == pytest.approx(1.0)
        assert sink.count == 1

    def test_back_to_back_serialize_sequentially(self):
        loop = EventLoop()
        sink = Sink()
        link = Link(loop, rate_bps=10_000)
        link >> sink
        link.push(_packet())
        link.push(_packet())
        loop.run_until_idle()
        assert loop.now == pytest.approx(2.0)

    def test_propagation_delay_added(self):
        loop = EventLoop()
        arrivals = []
        sink = Sink()
        link = Link(loop, rate_bps=10_000, delay=0.5)
        link >> sink

        class Recorder(Sink):
            def handle(self, packet):
                arrivals.append(loop.now)
                super().handle(packet)

        link.downstream = Recorder()
        link.push(_packet())
        loop.run_until_idle()
        assert arrivals == [pytest.approx(1.5)]

    def test_departure_timestamp_recorded(self):
        loop = EventLoop()
        sink = Sink()
        link = Link(loop, rate_bps=10_000, name="wan")
        link >> sink
        packet = _packet()
        link.push(packet)
        loop.run_until_idle()
        assert packet.meta["link_departures"]["wan"] == pytest.approx(1.0)

    def test_counters(self):
        loop = EventLoop()
        link = Link(loop, rate_bps=1e6)
        link >> Sink()
        packet = _packet()
        link.push(packet)
        loop.run_until_idle()
        assert link.transmitted_packets == 1
        assert link.transmitted_bytes == packet.wire_length


class TestPriorityOnLink:
    def test_high_priority_jumps_queue(self):
        loop = EventLoop()
        sink = Sink()
        link = Link(loop, rate_bps=10_000, scheduler=StrictPriorityScheduler(levels=2))
        link >> sink
        # First packet seizes the transmitter; then a low and a high queue up.
        link.push(_packet(qos=1))
        low = _packet(qos=1)
        high = _packet(qos=0)
        link.push(low)
        link.push(high)
        loop.run_until_idle()
        order = [p.packet_id for p in sink.packets]
        assert order.index(high.packet_id) < order.index(low.packet_id)


class TestConfig:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(EventLoop(), rate_bps=0)

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError):
            Link(EventLoop(), rate_bps=1, delay=-1)

    def test_set_rate(self):
        loop = EventLoop()
        link = Link(loop, rate_bps=10_000)
        link >> Sink()
        link.set_rate(20_000)
        link.push(_packet())
        loop.run_until_idle()
        assert loop.now == pytest.approx(0.5)
        with pytest.raises(ValueError):
            link.set_rate(-5)

    def test_on_transmit_callback(self):
        loop = EventLoop()
        transmitted = []
        link = Link(loop, rate_bps=1e6, on_transmit=transmitted.append)
        link >> Sink()
        link.push(_packet())
        loop.run_until_idle()
        assert len(transmitted) == 1
