"""Descriptor store tests: in-memory and SQLite, including persistence."""

import pytest

from repro.core.attributes import CookieAttributes
from repro.core.descriptor import CookieDescriptor
from repro.core.store import DescriptorStore, SQLiteDescriptorStore


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield DescriptorStore()
    else:
        sqlite_store = SQLiteDescriptorStore(":memory:")
        yield sqlite_store
        sqlite_store.close()


class TestCommonInterface:
    def test_add_and_get(self, store):
        descriptor = CookieDescriptor.create(service_data="Boost")
        store.add(descriptor)
        fetched = store.get(descriptor.cookie_id)
        assert fetched is not None
        assert fetched.cookie_id == descriptor.cookie_id
        assert fetched.key == descriptor.key
        assert fetched.service_data == "Boost"

    def test_get_missing_returns_none(self, store):
        assert store.get(12345) is None

    def test_contains_and_len(self, store):
        descriptor = CookieDescriptor.create()
        assert descriptor.cookie_id not in store
        store.add(descriptor)
        assert descriptor.cookie_id in store
        assert len(store) == 1

    def test_remove(self, store):
        descriptor = CookieDescriptor.create()
        store.add(descriptor)
        removed = store.remove(descriptor.cookie_id)
        assert removed is not None
        assert len(store) == 0
        assert store.remove(descriptor.cookie_id) is None

    def test_revoke(self, store):
        descriptor = CookieDescriptor.create()
        store.add(descriptor)
        assert store.revoke(descriptor.cookie_id)
        assert store.get(descriptor.cookie_id).revoked
        assert not store.revoke(999_999)

    def test_purge_expired(self, store):
        keeper = CookieDescriptor.create()
        expiring = CookieDescriptor.create(
            attributes=CookieAttributes(expires_at=10.0)
        )
        store.add(keeper)
        store.add(expiring)
        assert store.purge_expired(now=20.0) == 1
        assert len(store) == 1
        assert store.get(keeper.cookie_id) is not None

    def test_iteration(self, store):
        ids = {store.add(CookieDescriptor.create()).cookie_id for _ in range(3)}
        assert {d.cookie_id for d in store} == ids

    def test_replace_same_id(self, store):
        descriptor = CookieDescriptor.create(service_data="old")
        store.add(descriptor)
        replacement = CookieDescriptor(
            cookie_id=descriptor.cookie_id, key=b"new-key", service_data="new"
        )
        store.add(replacement)
        assert len(store) == 1
        assert store.get(descriptor.cookie_id).service_data == "new"


class TestSQLitePersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "descriptors.db")
        first = SQLiteDescriptorStore(path)
        descriptor = CookieDescriptor.create(
            service_data="Boost",
            attributes=CookieAttributes(shared=True, expires_at=42.0),
        )
        first.add(descriptor)
        first.close()

        second = SQLiteDescriptorStore(path)
        fetched = second.get(descriptor.cookie_id)
        assert fetched is not None
        assert fetched.key == descriptor.key
        assert fetched.attributes.shared
        assert fetched.attributes.expires_at == 42.0
        second.close()

    def test_revocation_persists(self, tmp_path):
        path = str(tmp_path / "descriptors.db")
        first = SQLiteDescriptorStore(path)
        descriptor = store_descriptor = CookieDescriptor.create()
        first.add(store_descriptor)
        first.revoke(descriptor.cookie_id)
        first.close()
        second = SQLiteDescriptorStore(path)
        assert second.get(descriptor.cookie_id).revoked
        second.close()

    def test_large_unsigned_ids(self):
        store = SQLiteDescriptorStore(":memory:")
        descriptor = CookieDescriptor(cookie_id=2**64 - 1, key=b"k")
        store.add(descriptor)
        assert store.get(2**64 - 1) is not None
        store.close()

    def test_complex_service_data(self):
        store = SQLiteDescriptorStore(":memory:")
        descriptor = CookieDescriptor.create(
            service_data={"name": "zero-rate", "tier": 2}
        )
        store.add(descriptor)
        assert store.get(descriptor.cookie_id).service_data == {
            "name": "zero-rate",
            "tier": 2,
        }
        store.close()


class TestControlPlaneTuning:
    """PR-8 SQLite tuning: WAL, bulk inserts, indexed expiry purge, and
    the migration that upgrades a pre-PR-8 database in place."""

    def _expiring(self, count, expired=0):
        return [
            CookieDescriptor.create(
                service_data="Boost",
                attributes=CookieAttributes(
                    expires_at=50.0 if i < expired else 1e9
                ),
            )
            for i in range(count)
        ]

    def test_wal_mode_on_file_database(self, tmp_path):
        store = SQLiteDescriptorStore(str(tmp_path / "wal.db"))
        assert (
            store._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        )
        store.close()

    def test_add_many_bulk_insert(self, tmp_path):
        store = SQLiteDescriptorStore(str(tmp_path / "bulk.db"))
        descriptors = self._expiring(50)
        assert store.add_many(descriptors) == 50
        assert len(store) == 50
        for descriptor in descriptors:
            assert store.get(descriptor.cookie_id) is not None
        store.close()

    def test_in_memory_add_many(self):
        store = DescriptorStore()
        assert store.add_many(self._expiring(10)) == 10
        assert len(store) == 10

    def test_indexed_purge_matches_scan_semantics(self, tmp_path):
        """The indexed DELETE and the legacy scan must agree exactly —
        including the strict ``now > expires_at`` boundary."""
        for purge in ("purge_expired", "_purge_expired_scan"):
            store = SQLiteDescriptorStore(
                str(tmp_path / f"purge_{purge}.db")
            )
            store.add_many(self._expiring(20, expired=8))
            boundary = CookieDescriptor.create(
                service_data="Boost",
                attributes=CookieAttributes(expires_at=100.0),
            )
            immortal = CookieDescriptor.create(service_data="Boost")
            store.add_many([boundary, immortal])
            assert getattr(store, purge)(now=100.0) == 8  # strict: not yet
            assert getattr(store, purge)(now=100.5) == 1  # boundary goes
            assert store.get(immortal.cookie_id) is not None
            assert len(store) == 13
            store.close()

    def test_migration_backfills_expiry_from_attributes(self, tmp_path):
        """A database created before the expiry column existed is
        upgraded on open, and the indexed purge then works on it."""
        import json
        import sqlite3

        path = str(tmp_path / "legacy.db")
        stale = CookieDescriptor.create(
            service_data="Boost",
            attributes=CookieAttributes(expires_at=50.0),
        )
        fresh = CookieDescriptor.create(service_data="Boost")
        conn = sqlite3.connect(path)
        conn.execute(
            """
            CREATE TABLE descriptors (
                cookie_id INTEGER PRIMARY KEY,
                key_hex TEXT NOT NULL,
                service_data TEXT NOT NULL,
                attributes TEXT NOT NULL,
                revoked INTEGER NOT NULL DEFAULT 0
            )
            """
        )
        for descriptor in (stale, fresh):
            conn.execute(
                "INSERT INTO descriptors VALUES (?, ?, ?, ?, ?)",
                (
                    descriptor.cookie_id - 2**63,
                    descriptor.key.hex(),
                    json.dumps(descriptor.service_data),
                    json.dumps(descriptor.attributes.to_json()),
                    0,
                ),
            )
        conn.commit()
        conn.close()

        store = SQLiteDescriptorStore(path)
        columns = {
            row[1]
            for row in store._conn.execute("PRAGMA table_info(descriptors)")
        }
        assert "expires_at" in columns
        assert store.purge_expired(now=100.0) == 1
        assert store.get(stale.cookie_id) is None
        assert store.get(fresh.cookie_id) is not None
        store.close()
