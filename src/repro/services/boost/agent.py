"""The Boost browser agent (§5.1).

A Chrome-extension analogue: it hooks the browser's outgoing requests and
lets the user express preferences in exactly the two forms the paper
shipped:

- **Boost a tab** — all traffic from/to a specific tab is boosted, until
  the tab closes or an hour passes;
- **Always boost a website** — remembered; whenever the user visits the
  site (defined by "the domain at the browser's address bar"), every flow
  generated within that tab is boosted.

The agent acquires a fresh boost descriptor per boost event (a "boost
request to a well-known server using a JSON message") and inserts cookies
into matching requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ...core import UserAgent
from ...core.client import RequestChannel
from ...core.transport import TransportRegistry
from ...netsim.packet import Packet
from ...web.browser import Browser, RequestContext, Tab
from .server import BOOST_EVENT_LIFETIME, BOOST_SERVICE

__all__ = ["BoostAgent", "BoostPreferences"]


@dataclass
class BoostPreferences:
    """The user's standing preferences, as the extension stores them."""

    always_boost: set[str]
    boosted_tabs: dict[int, float]  # tab id -> boost expiry time

    def snapshot(self) -> dict[str, Any]:
        return {
            "always_boost": sorted(self.always_boost),
            "boosted_tabs": dict(self.boosted_tabs),
        }


class BoostAgent:
    """The user-facing agent: preferences in, cookies out."""

    def __init__(
        self,
        user: str,
        clock: Callable[[], float],
        channel: RequestChannel,
        registry: TransportRegistry | None = None,
        tab_boost_lifetime: float = BOOST_EVENT_LIFETIME,
    ) -> None:
        self.clock = clock
        self.agent = UserAgent(user, clock=clock, channel=channel, registry=registry)
        self.preferences = BoostPreferences(always_boost=set(), boosted_tabs={})
        self.tab_boost_lifetime = tab_boost_lifetime
        self.cookies_inserted = 0
        self.requests_seen = 0

    # ------------------------------------------------------------------
    # Preference UI (what the extension's buttons do)
    # ------------------------------------------------------------------
    def boost_tab(self, tab: Tab) -> None:
        """Boost all traffic from this tab until it closes or an hour
        passes."""
        self.preferences.boosted_tabs[tab.tab_id] = (
            self.clock() + self.tab_boost_lifetime
        )

    def unboost_tab(self, tab: Tab) -> None:
        self.preferences.boosted_tabs.pop(tab.tab_id, None)

    def always_boost(self, domain: str) -> None:
        """Remember: whenever the user visits ``domain``, boost it."""
        self.preferences.always_boost.add(domain.lower())

    def remove_always_boost(self, domain: str) -> None:
        self.preferences.always_boost.discard(domain.lower())

    def attach(self, browser: Browser) -> None:
        """Install the request hook into a browser."""
        browser.on_request(self.on_request)

    # ------------------------------------------------------------------
    # The request hook
    # ------------------------------------------------------------------
    def _tab_boosted(self, tab: Tab) -> bool:
        expiry = self.preferences.boosted_tabs.get(tab.tab_id)
        if expiry is None:
            return False
        if tab.closed or self.clock() > expiry:
            self.preferences.boosted_tabs.pop(tab.tab_id, None)
            return False
        return True

    def should_boost(self, context: RequestContext) -> bool:
        """Does this request match the user's preferences?"""
        if self._tab_boosted(context.tab):
            return True
        return context.address_bar_domain.lower() in self.preferences.always_boost

    def on_request(self, packet: Packet, context: RequestContext) -> None:
        """Browser hook: tag matching requests with a boost cookie."""
        self.requests_seen += 1
        if not self.should_boost(context):
            return
        transport = self.agent.insert_cookie(packet, BOOST_SERVICE)
        if transport is not None:
            self.cookies_inserted += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def boosted_websites(self) -> list[str]:
        """The preference list Fig. 1 aggregates across users."""
        return sorted(self.preferences.always_boost)
