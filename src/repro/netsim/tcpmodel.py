"""A compact TCP sender/receiver pair for flow-completion-time studies.

Fig. 5(b) of the paper reports the completion-time CDF of a 300 KB download
under three service classes (best-effort, boosted, throttled) over a 6 Mb/s
last-mile link.  To reproduce the shape we need a congestion-controlled
sender that actually reacts to queueing and loss in the simulated pipeline —
an open-loop source would not show the crossover behaviour.

:class:`TcpTransfer` implements NewReno-flavoured congestion control (IW10
slow start, AIMD congestion avoidance, fast retransmit on three duplicate
ACKs, RTO fallback) with cumulative ACKs.  Data segments travel through the
supplied downlink pipeline; ACKs return over a fixed-latency uplink, which
models the paper's asymmetric residential path where the uplink is not the
bottleneck.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from .events import EventLoop, ScheduledEvent
from .middlebox import Element
from .packet import Packet, make_tcp_packet

__all__ = ["TcpTransfer", "TransferEndpoint", "CbrSource", "OnOffSource"]

MSS = 1460
TCP_OVERHEAD = 40  # IPv4 + TCP headers without options


class TransferEndpoint(Element):
    """Terminal element that dispatches data packets to their transfer.

    Senders tag each segment with ``meta['tcp_transfer']``; the endpoint
    routes arrivals back to that transfer object's receiver logic.  Packets
    without the tag (e.g. background UDP) are counted and dropped.
    """

    def __init__(self, name: str = "endpoint") -> None:
        super().__init__(name)
        self.untracked_packets = 0
        self.untracked_bytes = 0

    def handle(self, packet: Packet) -> None:
        transfer = packet.meta.get("tcp_transfer")
        if isinstance(transfer, TcpTransfer):
            transfer.on_data_arrival(packet)
        else:
            self.untracked_packets += 1
            self.untracked_bytes += packet.wire_length


@dataclass(slots=True)
class _SenderState:
    next_seg: int = 0
    highest_acked: int = 0
    cwnd: float = 10.0
    ssthresh: float = 64.0
    dupacks: int = 0
    in_recovery: bool = False
    rto_event: ScheduledEvent | None = field(default=None, repr=False)


class TcpTransfer:
    """One TCP download simulated at segment granularity.

    Parameters
    ----------
    loop:
        The shared event loop.
    path:
        Downlink pipeline head; data segments are pushed here and must
        eventually reach a :class:`TransferEndpoint`.
    size_bytes:
        Application bytes to deliver.
    ack_delay:
        One-way uplink latency for ACKs (uplink assumed uncongested).
    qos_class / qos_class_name:
        Stamped into ``packet.meta`` so schedulers and shapers downstream
        classify the flow; this is how experiments place a transfer in the
        fast lane or the throttled lane.
    """

    def __init__(
        self,
        loop: EventLoop,
        path: Element,
        size_bytes: int,
        *,
        src_ip: str = "203.0.113.10",
        src_port: int = 443,
        dst_ip: str = "192.168.1.100",
        dst_port: int = 50_000,
        ack_delay: float = 0.02,
        mss: int = MSS,
        qos_class: int | None = None,
        qos_class_name: str | None = None,
        meta: dict[str, Any] | None = None,
        on_complete: Callable[["TcpTransfer"], None] | None = None,
        rto_min: float = 0.5,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("transfer size must be positive")
        self.loop = loop
        self.path = path
        self.size_bytes = size_bytes
        self.mss = mss
        self.total_segments = (size_bytes + mss - 1) // mss
        self.ack_delay = ack_delay
        self.src_ip, self.src_port = src_ip, src_port
        self.dst_ip, self.dst_port = dst_ip, dst_port
        self.qos_class = qos_class
        self.qos_class_name = qos_class_name
        self.extra_meta = dict(meta or {})
        self.on_complete = on_complete
        self.rto_min = rto_min
        self.srtt: float | None = None
        self.state = _SenderState()
        self._received: set[int] = set()
        self._send_times: dict[int, float] = {}
        self._pending_acks: deque[int] = deque()
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.retransmissions = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the transfer at the current virtual time."""
        if self.start_time is not None:
            raise RuntimeError("transfer already started")
        self.start_time = self.loop.now
        self._fill_window()
        self._arm_rto()

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def completion_time(self) -> float | None:
        """Flow completion time in seconds, or None if unfinished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def _segment_size(self, seg: int) -> int:
        if seg == self.total_segments - 1:
            remainder = self.size_bytes - seg * self.mss
            return remainder if remainder > 0 else self.mss
        return self.mss

    def _window_limit(self) -> int:
        return self.state.highest_acked + max(1, int(self.state.cwnd))

    def _fill_window(self) -> None:
        state = self.state
        while (
            state.next_seg < self.total_segments
            and state.next_seg < self._window_limit()
        ):
            self._send_segment(state.next_seg)
            state.next_seg += 1

    def _send_segment(self, seg: int) -> None:
        packet = make_tcp_packet(
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            payload_size=self._segment_size(seg),
            seq=seg,
            created_at=self.loop.now,
        )
        packet.meta["tcp_transfer"] = self
        packet.meta["segment"] = seg
        if self.qos_class is not None:
            packet.meta["qos_class"] = self.qos_class
        if self.qos_class_name is not None:
            packet.meta["qos_class_name"] = self.qos_class_name
        packet.meta.update(self.extra_meta)
        self._send_times.setdefault(seg, self.loop.now)
        self.path.push(packet)

    # ------------------------------------------------------------------
    # Receiver side (invoked by the TransferEndpoint)
    # ------------------------------------------------------------------
    def on_data_arrival(self, packet: Packet) -> None:
        """Receiver logic: record the segment, send a cumulative ACK."""
        seg = packet.meta["segment"]
        self._received.add(seg)
        cumulative = self.state.highest_acked
        while cumulative in self._received:
            cumulative += 1
        # The uplink latency is constant, so ACKs arrive in the order
        # they were sent: a FIFO plus one bound-method event per ACK
        # avoids allocating a closure for every received segment.
        self._pending_acks.append(cumulative)
        self.loop.schedule(self.ack_delay, self._deliver_ack)

    def _deliver_ack(self) -> None:
        self._on_ack(self._pending_acks.popleft())

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _on_ack(self, ack: int) -> None:
        if self.completed:
            return
        state = self.state
        if ack > state.highest_acked:
            newly_acked = ack - state.highest_acked
            state.highest_acked = ack
            state.dupacks = 0
            self._update_rtt(ack - 1)
            if state.in_recovery:
                state.in_recovery = False
                state.cwnd = state.ssthresh
            elif state.cwnd < state.ssthresh:
                state.cwnd += newly_acked  # slow start
            else:
                state.cwnd += newly_acked / state.cwnd  # congestion avoidance
            if state.highest_acked >= self.total_segments:
                self._finish()
                return
            self._arm_rto()
            self._fill_window()
        elif ack == state.highest_acked:
            state.dupacks += 1
            if state.dupacks == 3 and not state.in_recovery:
                # Fast retransmit / fast recovery.
                state.ssthresh = max(2.0, state.cwnd / 2.0)
                state.cwnd = state.ssthresh
                state.in_recovery = True
                self.retransmissions += 1
                self._send_segment(state.highest_acked)

    def _update_rtt(self, seg: int) -> None:
        sent = self._send_times.get(seg)
        if sent is None:
            return
        sample = self.loop.now - sent
        self.srtt = sample if self.srtt is None else 0.875 * self.srtt + 0.125 * sample

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _rto_interval(self) -> float:
        if self.srtt is None:
            return 1.0
        return max(self.rto_min, 2.0 * self.srtt)

    def _arm_rto(self) -> None:
        if self.state.rto_event is not None:
            self.state.rto_event.cancel()
        self.state.rto_event = self.loop.schedule(
            self._rto_interval(), self._on_rto
        )

    def _on_rto(self) -> None:
        if self.completed:
            return
        state = self.state
        self.timeouts += 1
        state.ssthresh = max(2.0, state.cwnd / 2.0)
        state.cwnd = 1.0
        state.dupacks = 0
        state.in_recovery = False
        state.next_seg = state.highest_acked  # go-back-N restart
        self.retransmissions += 1
        self._fill_window()
        self._arm_rto()

    def _finish(self) -> None:
        self.finish_time = self.loop.now
        if self.state.rto_event is not None:
            self.state.rto_event.cancel()
            self.state.rto_event = None
        if self.on_complete is not None:
            self.on_complete(self)


class CbrSource:
    """Constant-bit-rate UDP source for background load."""

    def __init__(
        self,
        loop: EventLoop,
        path: Element,
        rate_bps: float,
        *,
        packet_size: int = 1200,
        src_ip: str = "203.0.113.200",
        dst_ip: str = "192.168.1.101",
        qos_class: int | None = None,
        qos_class_name: str | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.loop = loop
        self.path = path
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.src_ip, self.dst_ip = src_ip, dst_ip
        self.qos_class = qos_class
        self.qos_class_name = qos_class_name
        self.packets_sent = 0
        self._running = False
        self._stop_at: float | None = None
        self._timer = None

    @property
    def interval(self) -> float:
        return (self.packet_size + TCP_OVERHEAD) * 8.0 / self.rate_bps

    def start(self, duration: float | None = None) -> None:
        """Emit packets every ``interval`` seconds until ``duration`` elapses."""
        if self._timer is not None:
            self._timer.stop()
        self._running = True
        self._stop_at = None if duration is None else self.loop.now + duration
        self._tick()
        if self._running:
            # One recycled periodic event drives the whole emission
            # schedule — no closure or event allocation per packet.
            self._timer = self.loop.schedule_periodic(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_at is not None and self.loop.now >= self._stop_at:
            self.stop()
            return
        from .packet import make_udp_packet

        packet = make_udp_packet(
            self.src_ip,
            40_000,
            self.dst_ip,
            40_001,
            payload_size=self.packet_size,
            created_at=self.loop.now,
        )
        if self.qos_class is not None:
            packet.meta["qos_class"] = self.qos_class
        if self.qos_class_name is not None:
            packet.meta["qos_class_name"] = self.qos_class_name
        self.path.push(packet)
        self.packets_sent += 1


class OnOffSource:
    """Background source alternating exponential on/off periods.

    During "on" periods it behaves as a CBR source at ``rate_bps``; "off"
    periods are silent.  Randomness comes from the injected ``rng`` so runs
    are reproducible and trials differ only by seed — this produces the
    spread in the Fig. 5(b) completion-time CDFs.
    """

    def __init__(
        self,
        loop: EventLoop,
        path: Element,
        rate_bps: float,
        rng,
        *,
        mean_on: float = 2.0,
        mean_off: float = 1.0,
        packet_size: int = 1200,
        src_ip: str = "203.0.113.201",
        dst_ip: str = "192.168.1.102",
        qos_class: int | None = None,
        qos_class_name: str | None = None,
    ) -> None:
        self.loop = loop
        self.rng = rng
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.cbr = CbrSource(
            loop,
            path,
            rate_bps,
            packet_size=packet_size,
            src_ip=src_ip,
            dst_ip=dst_ip,
            qos_class=qos_class,
            qos_class_name=qos_class_name,
        )
        self._active = False

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent

    def start(self) -> None:
        self._active = True
        self._enter_on()

    def stop(self) -> None:
        self._active = False
        self.cbr.stop()

    def _enter_on(self) -> None:
        if not self._active:
            return
        duration = self.rng.expovariate(1.0 / self.mean_on)
        self.cbr.start(duration=duration)
        self.loop.schedule(duration, self._enter_off)

    def _enter_off(self) -> None:
        if not self._active:
            return
        self.cbr.stop()
        duration = self.rng.expovariate(1.0 / self.mean_off)
        self.loop.schedule(duration, self._enter_on)
