"""Small statistics helpers shared by trace tooling and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["percentile", "ThroughputSample", "throughput_report"]


def percentile(sorted_values: list, q: float) -> float:
    """Linear-interpolated percentile of an already *sorted* list.

    ``q`` in [0, 100].  Kept dependency-free so hot benchmark paths don't
    pull in numpy for a single number.
    """
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = (len(sorted_values) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return float(
        sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction
    )


@dataclass(frozen=True)
class ThroughputSample:
    """One middlebox throughput measurement."""

    packet_size: int
    packets_per_flow: int
    packets_processed: int
    elapsed_s: float

    @property
    def packets_per_second(self) -> float:
        return self.packets_processed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def gbps(self) -> float:
        """Forwarding rate in gigabits/second at this packet size."""
        return self.packets_per_second * self.packet_size * 8 / 1e9

    @property
    def new_flows_per_second(self) -> float:
        flows = self.packets_processed / self.packets_per_flow
        return flows / self.elapsed_s if self.elapsed_s else 0.0


def throughput_report(samples: list[ThroughputSample]) -> str:
    """Render samples as the Fig. 4 series (one row per measurement)."""
    lines = [
        f"{'pkt_size':>9} {'pkts/flow':>10} {'Mpps':>8} {'Gbps':>8} {'flows/s':>10}"
    ]
    for sample in samples:
        lines.append(
            f"{sample.packet_size:>9} {sample.packets_per_flow:>10} "
            f"{sample.packets_per_second / 1e6:>8.3f} {sample.gbps:>8.3f} "
            f"{sample.new_flows_per_second:>10.0f}"
        )
    return "\n".join(lines)
