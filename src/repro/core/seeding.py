"""Stable per-trial seed derivation for campaign-style experiments.

The chaos soak, the neutrality audit, and the scenario-lab sweeps all fan
one *campaign seed* out into many per-trial / per-cell seeds.  Ad-hoc
schemes (``seed + i``, ``seed ^ 0x5A``) are fragile: adjacent campaigns
collide (``seed=1, trial=2`` vs ``seed=2, trial=1``), and nothing ties a
derived stream to a human-readable purpose.

:func:`derive_seed` replaces them with one canonical construction: a
SHA-256 over the campaign seed plus a sequence of labels, length-prefixed
so distinct label tuples can never produce the same preimage
(``("ab",)`` vs ``("a", "b")``).  Properties the test suite pins:

- **stability** — the mapping is pure and process-independent (no
  ``hash()`` randomization, no platform dependence), so a campaign seed
  printed in a report replays bit-identically anywhere;
- **collision-freedom by construction** — different label tuples feed
  different byte strings into the hash;
- **independence** — distinct labels yield seeds with no usable
  correlation, so per-trial :class:`random.Random` streams do not shadow
  each other the way ``seed + i`` streams can.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]

#: Derived seeds are 63-bit so they stay positive in a signed 64-bit slot
#: (JSON round-trips, struct ``!q`` packing, SQLite INTEGER columns).
_SEED_BITS = 63


def derive_seed(campaign_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from ``campaign_seed`` and ``labels``.

    ``labels`` name the consumer (e.g. ``("chaos", "retry", home_index)``);
    each is rendered with ``str()`` and length-prefixed, so the encoding is
    injective over label tuples and any label type with a stable ``str``
    form (str, int, bool) is safe.  Floats are accepted but discouraged —
    their ``str`` form is stable in Python 3 yet easy to perturb upstream.

    Returns an integer in ``[0, 2**63)``.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro.derive_seed/v1")
    seed_repr = str(int(campaign_seed)).encode("ascii")
    hasher.update(len(seed_repr).to_bytes(4, "big"))
    hasher.update(seed_repr)
    for label in labels:
        rendered = str(label).encode("utf-8")
        hasher.update(len(rendered).to_bytes(4, "big"))
        hasher.update(rendered)
    return int.from_bytes(hasher.digest()[:8], "big") >> (64 - _SEED_BITS)
