"""Exactly-once invoice reconciliation (PROTOCOL.md §16.4).

Reconciliation replays one or more billing journals into per-operator
invoices and proves three things about the result:

1. **Exactly-once.** Records are deduplicated by ``record_id`` (seed-
   derived from (stream_seed, source, offset)), so replaying a segment
   twice — or feeding overlapping segment copies from a backup — changes
   nothing but the ``duplicates_skipped`` counter.
2. **Tariff conformance.** A free byte must sit in a coverable byte
   class (origin/cdn — the catalog can never zero-rate third-party or
   uncookied bytes), and when the caller passes the operator cap map,
   per-subscriber free bytes must not exceed the cap.
3. **Ground truth.** When the caller passes delivered-byte truth from
   :class:`repro.netsim.capture.PacketCapture` (grouped per operator →
   subscriber), invoiced totals must match delivered exactly: any
   shortfall is ``lost_bytes`` (a byte the subscriber received but
   nobody billed), any excess is ``double_billed_bytes``.  The crash
   drill's "never lose or double-bill a byte" claim is this check.

Corrupt records were already quarantined at read time by the journal
scanner; reconciliation reports them (``billing.corrupt_records``) and
carries on — a torn disk must never abort invoicing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..zerorate.catalog import COVERABLE_CLASSES
from .invoice import OperatorInvoice, build_invoices
from .journal import BillingJournal, BillingRecord, JournalRecoveryStats

__all__ = ["ReconciliationReport", "reconcile", "reconcile_directories"]


@dataclass
class ReconciliationReport:
    """The outcome of one reconciliation pass."""

    invoices: dict[str, OperatorInvoice]
    records_seen: int = 0
    records_applied: int = 0
    duplicates_skipped: int = 0
    corrupt_records: int = 0
    torn_tail_truncated: int = 0
    tariff_violations: list[str] = field(default_factory=list)
    #: operator -> subscriber -> bytes invoiced but not delivered
    double_billed: dict[str, dict[str, int]] = field(default_factory=dict)
    #: operator -> subscriber -> bytes delivered but never invoiced
    lost: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def double_billed_bytes(self) -> int:
        return sum(sum(per.values()) for per in self.double_billed.values())

    @property
    def lost_bytes(self) -> int:
        return sum(sum(per.values()) for per in self.lost.values())

    @property
    def ok(self) -> bool:
        return (
            not self.tariff_violations
            and self.double_billed_bytes == 0
            and self.lost_bytes == 0
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "records_seen": self.records_seen,
            "records_applied": self.records_applied,
            "duplicates_skipped": self.duplicates_skipped,
            "corrupt_records": self.corrupt_records,
            "torn_tail_truncated": self.torn_tail_truncated,
            "lost_bytes": self.lost_bytes,
            "double_billed_bytes": self.double_billed_bytes,
            "tariff_violations": list(self.tariff_violations),
            "invoices": {
                op: self.invoices[op].to_json() for op in sorted(self.invoices)
            },
        }


def reconcile(
    records: Iterable[BillingRecord],
    *,
    rates: dict[str, float] | None = None,
    caps: dict[str, int | None] | None = None,
    delivered: dict[str, dict[str, int]] | None = None,
    recovery: JournalRecoveryStats | None = None,
    applied_ids: set[int] | None = None,
) -> ReconciliationReport:
    """Replay ``records`` into invoices with exactly-once semantics.

    ``delivered`` is operator -> subscriber -> total delivered bytes
    (ground truth).  ``caps`` maps operator -> cap bytes (None for
    unlimited) and is only meaningful when the cap was constant for the
    window — mid-flight catalog updates make per-subscriber cap checks
    the experiment's job, not reconciliation's.  ``applied_ids`` lets a
    caller thread a dedup set across multiple passes (checkpointed
    incremental reconciliation).
    """
    seen_ids = applied_ids if applied_ids is not None else set()
    unique: list[BillingRecord] = []
    report = ReconciliationReport(invoices={})
    for record in records:
        report.records_seen += 1
        if record.record_id in seen_ids:
            report.duplicates_skipped += 1
            continue
        seen_ids.add(record.record_id)
        unique.append(record)
    report.records_applied = len(unique)
    report.invoices = build_invoices(unique, rates=rates)
    if recovery is not None:
        report.corrupt_records = recovery.corrupt_records
        report.torn_tail_truncated = recovery.torn_tail_truncated

    # --- tariff conformance -------------------------------------------
    for record in unique:
        if record.free_bytes and record.byte_class not in COVERABLE_CLASSES:
            report.tariff_violations.append(
                f"{record.operator}/{record.subscriber}: {record.free_bytes}B "
                f"free in non-coverable class {record.byte_class!r} "
                f"(offset {record.offset})"
            )
        if record.free_bytes < 0 or record.charged_bytes < 0:
            report.tariff_violations.append(
                f"{record.operator}/{record.subscriber}: negative bytes at "
                f"offset {record.offset}"
            )
    if caps:
        for operator, invoice in report.invoices.items():
            cap = caps.get(operator)
            if cap is None:
                continue
            for subscriber, statement in invoice.statements.items():
                if statement.free_bytes > cap:
                    report.tariff_violations.append(
                        f"{operator}/{subscriber}: {statement.free_bytes}B "
                        f"free exceeds cap {cap}B"
                    )

    # --- delivered-byte ground truth ----------------------------------
    if delivered is not None:
        operators = set(delivered) | set(report.invoices)
        for operator in sorted(operators):
            truth = delivered.get(operator, {})
            invoice = report.invoices.get(operator)
            billed = invoice.per_subscriber_totals() if invoice else {}
            for subscriber in sorted(set(truth) | set(billed)):
                got = truth.get(subscriber, 0)
                inv = billed.get(subscriber, 0)
                if inv > got:
                    report.double_billed.setdefault(operator, {})[subscriber] = (
                        inv - got
                    )
                elif got > inv:
                    report.lost.setdefault(operator, {})[subscriber] = got - inv
    return report


def reconcile_directories(
    directories: Sequence[str],
    *,
    rates: dict[str, float] | None = None,
    caps: dict[str, int | None] | None = None,
    delivered: dict[str, dict[str, int]] | None = None,
) -> ReconciliationReport:
    """Read + reconcile one or more journal directories (read-only)."""
    all_records: list[BillingRecord] = []
    recovery = JournalRecoveryStats()
    for directory in directories:
        records, stats = BillingJournal.read_directory(directory)
        all_records.extend(records)
        recovery.merge(stats)
    return reconcile(
        all_records,
        rates=rates,
        caps=caps,
        delivered=delivered,
        recovery=recovery,
    )
