"""Rate-limited links driven by the event loop.

A :class:`Link` is a unidirectional transmission resource: packets are
queued by a scheduling discipline, serialized at ``rate_bps``, and delivered
to the attached sink after a propagation delay.  This is where priority
queueing actually produces differentiated service — a boosted packet that
jumps the queue departs earlier.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

from .events import EventLoop
from .middlebox import Element
from .packet import Packet
from .queues import DropTailQueue

__all__ = ["Link", "Scheduler"]


class Scheduler(Protocol):
    """Interface a queueing discipline must expose to drive a link."""

    def enqueue(self, packet: Packet) -> bool: ...

    def dequeue(self) -> Packet | None: ...

    @property
    def is_empty(self) -> bool: ...


class Link(Element):
    """A serializing link with a pluggable scheduler.

    Packets pushed into the link enter ``scheduler``; whenever the
    transmitter is idle the head packet is clocked out over
    ``wire_length * 8 / rate_bps`` seconds and handed to the downstream
    element ``delay`` seconds later.  Per-packet departure timestamps are
    recorded in ``packet.meta['link_departures'][name]`` so experiments can
    compute queueing delay.
    """

    def __init__(
        self,
        loop: EventLoop,
        rate_bps: float,
        delay: float = 0.0,
        scheduler: Scheduler | None = None,
        name: str = "link",
        on_transmit: Callable[[Packet], None] | None = None,
    ) -> None:
        super().__init__(name)
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.loop = loop
        self.rate_bps = rate_bps
        self.delay = delay
        # `is not None`, not truthiness: an empty queue is falsy via __len__.
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else DropTailQueue()
        )
        self.on_transmit = on_transmit
        self._busy = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        # Closure-free hot path: the serializing packet and the
        # propagation FIFO are instance state, so every scheduled event
        # is a reusable bound method instead of a per-packet lambda.
        self._in_flight: Packet | None = None
        self._propagating: deque[Packet] = deque()

    def set_rate(self, rate_bps: float) -> None:
        """Retarget the link rate (takes effect at the next transmission)."""
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_bps = rate_bps

    def handle(self, packet: Packet) -> None:
        admitted = self.scheduler.enqueue(packet)
        if admitted and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.scheduler.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._in_flight = packet
        serialization = packet.wire_length * 8.0 / self.rate_bps
        self.loop.schedule(serialization, self._finish_in_flight)

    def _finish_in_flight(self) -> None:
        packet = self._in_flight
        assert packet is not None
        self._in_flight = None
        self._finish(packet)

    def _finish(self, packet: Packet) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.wire_length
        packet.meta.setdefault("link_departures", {})[self.name] = self.loop.now
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.delay > 0:
            # Propagation delay is constant, so deliveries are FIFO: one
            # shared deque + one bound-method event per packet replaces a
            # closure per packet.
            self._propagating.append(packet)
            self.loop.schedule(self.delay, self._deliver_propagated)
        else:
            self.emit(packet)
        self._start_transmission()

    def _deliver_propagated(self) -> None:
        self.emit(self._propagating.popleft())

    @property
    def utilization_bytes(self) -> int:
        return self.transmitted_bytes

    @property
    def busy(self) -> bool:
        return self._busy
