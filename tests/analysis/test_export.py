"""Figure-data exporter tests."""

import csv
import io
import json
from collections import Counter

import pytest

from repro.analysis import EmpiricalCDF
from repro.analysis.export import (
    cdf_to_csv,
    counts_to_csv,
    figure_bundle_to_json,
    series_to_csv,
)


class TestCdfCsv:
    def test_shared_grid(self):
        cdfs = {
            "boosted": EmpiricalCDF([0.4, 0.5, 0.6]),
            "throttled": EmpiricalCDF([5.0, 9.0, 12.0]),
        }
        rows = list(csv.DictReader(io.StringIO(cdf_to_csv(cdfs, points=10))))
        assert len(rows) == 10
        assert set(rows[0]) == {"x", "F_boosted", "F_throttled"}
        # At the grid's top both CDFs have reached 1.
        assert float(rows[-1]["F_boosted"]) == 1.0
        assert float(rows[-1]["F_throttled"]) == 1.0
        # Boosted completes before throttled starts.
        mid = rows[len(rows) // 2]
        assert float(mid["F_boosted"]) >= float(mid["F_throttled"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_to_csv({})


class TestCountsCsv:
    def test_ordering_and_extras(self):
        counts = Counter({"netflix.com": 10, "skai.gr": 1})
        text = counts_to_csv(
            counts,
            item_column="site",
            count_column="homes",
            extra={"netflix.com": {"rank": 28}, "skai.gr": {"rank": 6800}},
        )
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["site"] == "netflix.com"
        assert rows[0]["rank"] == "28"
        assert rows[1]["homes"] == "1"

    def test_missing_extra_blank(self):
        text = counts_to_csv(Counter({"a": 1}), extra={"b": {"rank": 2}})
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["rank"] == ""


class TestSeriesCsv:
    def test_rows(self):
        rows_in = [
            {"packet_size": 64, "gbps": 0.19},
            {"packet_size": 1500, "gbps": 4.85},
        ]
        rows = list(csv.DictReader(io.StringIO(series_to_csv(rows_in))))
        assert rows[1]["packet_size"] == "1500"

    def test_column_selection(self):
        text = series_to_csv([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv([])


class TestJsonBundle:
    def test_encodes_counters_and_cdfs(self):
        bundle = figure_bundle_to_json(
            {
                "fig1": {"counts": Counter({"a": 2, "b": 1})},
                "fig5b": {"boosted": EmpiricalCDF([1.0, 2.0])},
                "meta": ["x", 1],
            }
        )
        data = json.loads(bundle)
        assert data["fig1"]["counts"] == {"a": 2, "b": 1}
        assert data["fig5b"]["boosted"][-1][1] == 1.0
        assert data["meta"] == ["x", 1]

    def test_real_figure_data_bundles(self):
        from repro.study import BoostStudy

        result = BoostStudy(seed=1).run()
        bundle = figure_bundle_to_json({"fig1": {"counts": result.site_counts}})
        assert json.loads(bundle)["fig1"]["counts"]


class TestTelemetryExport:
    def _snapshot(self):
        from repro.telemetry import Histogram, TelemetrySnapshot

        histogram = Histogram("flow_packets", buckets=(1, 4, 16))
        for value in (1, 3, 20):
            histogram.observe(value)
        return TelemetrySnapshot(
            counters={"middlebox.cookie_hits": 5},
            gauges={"middlebox.tracked_flows": 2},
            histograms={"flow_packets": histogram.snapshot()},
        )

    def test_telemetry_to_csv_rows(self):
        from repro.analysis.export import telemetry_to_csv

        csv_text = telemetry_to_csv(self._snapshot())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "kind,name,value"
        assert "counter,middlebox.cookie_hits,5" in lines
        assert "gauge,middlebox.tracked_flows,2" in lines
        assert any(line.startswith("histogram,flow_packets.p50") for line in lines)

    def test_empty_snapshot_rejected(self):
        import pytest

        from repro.analysis.export import telemetry_to_csv
        from repro.telemetry import TelemetrySnapshot

        with pytest.raises(ValueError):
            telemetry_to_csv(TelemetrySnapshot())

    def test_bundle_encodes_snapshot(self):
        import json

        from repro.analysis.export import figure_bundle_to_json

        bundle = json.loads(
            figure_bundle_to_json({"telemetry": self._snapshot()})
        )
        assert bundle["telemetry"]["counters"]["middlebox.cookie_hits"] == 5
        assert bundle["telemetry"]["histograms"]["flow_packets"]["count"] == 3
