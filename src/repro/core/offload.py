"""Hardware/software co-design for cookie processing (§4.6).

"The hardware could detect and forward to software only packets that
contain cookies, avoiding the extra overhead for all other packets.  It
could further verify the timestamp and look the cookie id against a table
of known descriptors, further reducing the amount of packets that need to
go to software."

:class:`HardwarePrefilter` models a configurable pipeline (think P4) that
runs only the checks real match-action hardware can do — fixed-offset
presence detection, a timestamp range compare, and an exact-match table
lookup on the cookie id — and steers packets to either the software slow
path (a cookie switch or zero-rating middlebox) or a hardware fast path
that skips cookie work entirely.  HMAC verification and replay tracking
stay in software, as the paper's hardware discussion assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netsim.flow import FiveTuple, flow_key_of
from ..netsim.middlebox import Element
from ..netsim.packet import Packet
from .cookie import Cookie
from .store import DescriptorStore
from .transport.registry import TransportRegistry, default_registry

__all__ = ["PrefilterStats", "HardwarePrefilter"]


@dataclass
class PrefilterStats:
    """Where packets went and why."""

    packets: int = 0
    fast_path: int = 0
    to_software: int = 0
    offloaded_hits: int = 0
    dropped_early_unknown_id: int = 0
    dropped_early_stale: int = 0

    @property
    def software_fraction(self) -> float:
        return self.to_software / self.packets if self.packets else 0.0


class HardwarePrefilter(Element):
    """Steers only cookie-relevant packets to the software slow path.

    Stages (each optional, mirroring increasing hardware capability):

    1. *presence*: does any carrier find cookie bytes at all?  Packets
       without cookies take the fast path.
    2. *id check* (``check_ids=True``): is the cookie id in the known-
       descriptor exact-match table?  Unknown ids are treated as absent —
       the service would not have been granted anyway.
    3. *timestamp check* (``check_timestamp=True``): is the timestamp
       within NCT of now?  Stale cookies likewise take the fast path.

    Wire software with :meth:`software` and the fast path with
    :meth:`fast` (both default to the element's plain downstream).
    """

    def __init__(
        self,
        store: DescriptorStore,
        clock: Callable[[], float],
        registry: TransportRegistry | None = None,
        nct: float = 5.0,
        check_ids: bool = True,
        check_timestamp: bool = True,
        name: str = "hw-prefilter",
    ) -> None:
        super().__init__(name)
        self.store = store
        self.clock = clock
        self.registry = registry or default_registry()
        self.nct = nct
        self.check_ids = check_ids
        self.check_timestamp = check_timestamp
        self.software_path: Element | None = None
        self.fast_path: Element | None = None
        self._offloaded: dict[FiveTuple, Callable[[Packet], None]] = {}
        self.stats = PrefilterStats()

    def software(self, element: Element) -> Element:
        """Attach the software slow path (the cookie-aware middlebox)."""
        self.software_path = element
        return element

    def fast(self, element: Element) -> Element:
        """Attach the hardware fast path (no cookie work)."""
        self.fast_path = element
        return element

    # ------------------------------------------------------------------
    # Flow offload: software installs per-flow hardware actions
    # ------------------------------------------------------------------
    def offload_flow(
        self, key: FiveTuple, action: Callable[[Packet], None] | None = None
    ) -> None:
        """Install a hardware entry for a resolved flow.

        After software binds (or definitively rejects) a flow, it pushes
        the per-packet action — a counter increment, a class marking —
        down to hardware; every later packet of that flow then takes the
        fast path with the action applied in hardware.  ``key`` must be
        the canonical (direction-folded) flow key.
        """
        self._offloaded[key] = action or (lambda _p: None)

    def evict_flow(self, key: FiveTuple) -> bool:
        """Remove a hardware entry (flow ended or table pressure)."""
        return self._offloaded.pop(key, None) is not None

    @property
    def offloaded_flows(self) -> int:
        return len(self._offloaded)

    # ------------------------------------------------------------------
    def _hardware_accepts(self, cookie: Cookie) -> bool:
        """The checks an exact-match + range-compare pipeline can do."""
        if self.check_ids and self.store.get(cookie.cookie_id) is None:
            self.stats.dropped_early_unknown_id += 1
            return False
        if self.check_timestamp and abs(cookie.timestamp - self.clock()) > self.nct:
            self.stats.dropped_early_stale += 1
            return False
        return True

    def process_batch(self, packets: list[Packet]) -> None:
        """Batched steering: partition the vector, then one push per path.

        Exactly the scalar per-packet decisions (offload hit → fast with
        the installed action applied; hardware-visible cookie → software;
        otherwise fast), but the clock is read once, lookups are bound
        once, and each target receives its packets as a single batch in
        arrival order — the shape a real rx-burst pipeline hands to the
        slow path.
        """
        stats = self.stats
        stats.packets += len(packets)
        offloaded = self._offloaded
        extract_all = self.registry.extract_all
        hardware_accepts = self._hardware_accepts
        to_software: list[Packet] = []
        to_fast: list[Packet] = []
        for packet in packets:
            try:
                key = flow_key_of(packet)
            except ValueError:
                key = None
            if key is not None:
                action = offloaded.get(key)
                if action is not None:
                    action(packet)
                    stats.offloaded_hits += 1
                    stats.fast_path += 1
                    to_fast.append(packet)
                    continue
            if any(
                hardware_accepts(cookie)
                for cookie, _name in extract_all(packet)
            ):
                stats.to_software += 1
                to_software.append(packet)
            else:
                stats.fast_path += 1
                to_fast.append(packet)
        software_target = self.software_path or self.downstream
        if software_target is not None and to_software:
            software_target.push_batch(to_software)
        fast_target = self.fast_path or self.downstream
        if fast_target is not None and to_fast:
            fast_target.push_batch(to_fast)

    def handle(self, packet: Packet) -> None:
        self.stats.packets += 1
        try:
            key = flow_key_of(packet)
        except ValueError:
            key = None
        if key is not None:
            action = self._offloaded.get(key)
            if action is not None:
                action(packet)
                self.stats.offloaded_hits += 1
                self.stats.fast_path += 1
                target = self.fast_path or self.downstream
                if target is not None:
                    target.push(packet)
                return
        needs_software = any(
            self._hardware_accepts(cookie)
            for cookie, _name in self.registry.extract_all(packet)
        )
        if needs_software:
            self.stats.to_software += 1
            target = self.software_path or self.downstream
        else:
            self.stats.fast_path += 1
            target = self.fast_path or self.downstream
        if target is not None:
            target.push(packet)
