"""Property tests for the delta log (PROTOCOL.md §14.2).

The control plane's replication story rests on two invariants, checked
here under arbitrary add/revoke/remove interleavings:

* **Equivalence** — snapshot at any cut point + replay of the suffix
  reproduces the directly-mutated store exactly.
* **Idempotence** — re-delivering an overlapping window from any stale
  offset changes nothing (an ``add`` record never resurrects state a
  later ``revoke``/``remove`` already changed).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.cp.deltalog import (
    DeltaLog,
    LogTruncated,
    StoreSnapshot,
    replay,
)
from repro.core.descriptor import CookieDescriptor
from repro.core.store import DescriptorStore

SLOTS = 6

#: (op, slot): ``slot`` names a logical descriptor; revoke/remove target
#: whatever id that slot last minted (None → no-op, like the shard).
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "revoke", "remove"]),
        st.integers(0, SLOTS - 1),
    ),
    max_size=40,
)


def _drive(ops):
    """Apply ``ops`` directly to a store while logging each successful
    mutation — exactly what :class:`ControlPlaneShard` does."""
    log = DeltaLog()
    direct = DescriptorStore()
    slot_ids: dict[int, int] = {}
    for step, (op, slot) in enumerate(ops):
        t = float(step)
        if op == "add":
            descriptor = CookieDescriptor.create(service_data=f"svc{slot}")
            direct.add(descriptor)
            log.append(
                "add", descriptor.cookie_id, t, descriptor.to_json()
            )
            slot_ids[slot] = descriptor.cookie_id
        elif op == "revoke":
            cookie_id = slot_ids.get(slot)
            if cookie_id is not None and direct.revoke(cookie_id):
                log.append("revoke", cookie_id, t)
        else:  # remove
            cookie_id = slot_ids.get(slot)
            if cookie_id is not None and direct.remove(cookie_id):
                log.append("remove", cookie_id, t)
    return log, direct


def _state(store) -> dict[int, dict]:
    return {d.cookie_id: d.to_json() for d in store}


@settings(max_examples=150, deadline=None)
@given(ops=ops_strategy)
def test_full_replay_equals_direct_state(ops):
    log, direct = _drive(ops)
    replica = DescriptorStore()
    applied = replay(replica, log.since(0))
    assert applied == log.next_offset
    assert _state(replica) == _state(direct)


@settings(max_examples=150, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_snapshot_plus_suffix_replay_equals_direct_state(ops, data):
    log, direct = _drive(ops)
    cut = data.draw(st.integers(0, log.next_offset), label="cut")

    # A replica that had applied exactly ``cut`` records…
    donor = DescriptorStore()
    replay(donor, log.since(0)[:cut])
    snapshot = StoreSnapshot.take(donor, cut)

    # …hands its snapshot to a cold store, which replays the suffix.
    cold = DescriptorStore()
    snapshot.install(cold)
    applied = replay(cold, log.since(cut), applied_offset=cut)
    assert applied == log.next_offset
    assert _state(cold) == _state(direct)


@settings(max_examples=150, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_replay_idempotent_from_stale_offset(ops, data):
    """The reconnect case: a replica at offset ``k`` is re-served the
    window starting at ``j <= k``.  The overlap must be skipped."""
    log, direct = _drive(ops)
    k = data.draw(st.integers(0, log.next_offset), label="applied")
    j = data.draw(st.integers(0, k), label="window start")

    replica = DescriptorStore()
    replay(replica, log.since(0)[:k])
    before = _state(replica)

    applied = replay(replica, log.since(j), applied_offset=k)
    assert applied == log.next_offset
    # Everything below k was skipped; only the true suffix landed.
    suffix_only = DescriptorStore()
    replay(suffix_only, log.since(0))
    assert _state(replica) == _state(suffix_only) == _state(direct)

    # Degenerate overlap: redelivering with nothing new is a no-op.
    assert replay(replica, log.since(j), applied_offset=applied) == applied
    assert _state(replica) == _state(direct)
    del before


def test_replay_rejects_gaps():
    log, _direct = _drive([("add", 0), ("add", 1), ("add", 2)])
    records = log.since(0)
    replica = DescriptorStore()
    with pytest.raises(ValueError, match="delta gap"):
        replay(replica, [records[0], records[2]])


def test_stale_add_never_resurrects_revocation():
    """The invariant PROTOCOL.md §14.3 names: redelivered ``add`` must
    not overwrite a later ``revoke`` the replica already applied."""
    log, direct = _drive([("add", 0), ("revoke", 0)])
    replica = DescriptorStore()
    applied = replay(replica, log.since(0))
    assert next(iter(replica)).revoked
    # The server re-serves the whole window; the add is skipped.
    replay(replica, log.since(0), applied_offset=applied)
    assert next(iter(replica)).revoked
    assert _state(replica) == _state(direct)


def test_compaction_truncates_and_since_raises():
    log, _direct = _drive([("add", i % SLOTS) for i in range(10)])
    assert log.compact_to(4) == 4
    assert log.base_offset == 4
    assert len(log) == 6
    assert not log.covers(3)
    assert log.covers(4)
    with pytest.raises(LogTruncated):
        log.since(3)
    assert [r.offset for r in log.since(4)] == list(range(4, 10))
    # Compacting beyond the head clamps; numbering survives.
    assert log.compact_to(99) == 6
    assert log.next_offset == 10
    assert log.since(10) == []


def test_record_roundtrip_and_validation():
    log = DeltaLog()
    with pytest.raises(ValueError, match="unknown delta op"):
        log.append("frobnicate", 1, 0.0)
    with pytest.raises(ValueError, match="must carry the descriptor"):
        log.append("add", 1, 0.0)
    descriptor = CookieDescriptor.create(service_data="Boost")
    record = log.append("add", descriptor.cookie_id, 1.5, descriptor.to_json())
    from repro.core.cp.deltalog import DeltaRecord

    assert DeltaRecord.from_json(record.to_json()) == record
    snapshot = StoreSnapshot(offset=1, descriptors=[descriptor.to_json()])
    assert StoreSnapshot.from_json(snapshot.to_json()) == snapshot
