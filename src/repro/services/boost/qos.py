"""QoS provisioning for the Boost fast lane.

The prototype provisions its fast lane with two mechanisms (§5.2): the
high-bandwidth wireless WMM queue for boosted traffic, and a throttle on
everything else "to ensure certain capacity for boosted traffic through
the last-mile connection", where "the actual throttling rate depends on
the capacity of the WAN connection which we estimate using periodic active
tests".

:class:`CapacityEstimator` models those active tests; :class:`ThrottlePlan`
turns an estimate into a throttle rate (the paper's Fig. 5(b) scenario is
a 6 Mb/s line throttled to 1 Mb/s).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ...netsim.events import EventLoop

__all__ = [
    "FAST_LANE_CLASS",
    "BEST_EFFORT_CLASS",
    "CapacityEstimator",
    "ThrottlePlan",
    "WMM_FAST_LANE_CATEGORY",
]

FAST_LANE_CLASS = 0
BEST_EFFORT_CLASS = 1
#: The WMM access category boosted traffic rides in.
WMM_FAST_LANE_CATEGORY = "video"


class CapacityEstimator:
    """Periodic active capacity tests against the WAN link.

    ``true_capacity`` supplies ground truth (in simulation, the configured
    link rate); each probe observes it with multiplicative noise, and the
    estimate is an EWMA over probes — enough structure to study how
    mis-estimation affects the throttle.
    """

    def __init__(
        self,
        loop: EventLoop,
        true_capacity: Callable[[], float],
        interval: float = 60.0,
        noise: float = 0.05,
        smoothing: float = 0.3,
        seed: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        if not 0 <= noise < 1:
            raise ValueError("noise must be in [0, 1)")
        self.loop = loop
        self.true_capacity = true_capacity
        self.interval = interval
        self.noise = noise
        self.smoothing = smoothing
        self.rng = random.Random(seed)
        self.estimate: float | None = None
        self.probes_run = 0
        self._running = False

    def probe_once(self) -> float:
        """Run one active test and fold it into the estimate."""
        observed = self.true_capacity() * (
            1.0 + self.rng.uniform(-self.noise, self.noise)
        )
        if self.estimate is None:
            self.estimate = observed
        else:
            self.estimate = (
                (1 - self.smoothing) * self.estimate + self.smoothing * observed
            )
        self.probes_run += 1
        return self.estimate

    def start(self) -> None:
        """Probe now and then every ``interval`` seconds."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.probe_once()
        self.loop.schedule(self.interval, self._tick)


@dataclass
class ThrottlePlan:
    """Computes the non-boost throttle rate from a capacity estimate.

    ``reserve_fraction`` of the estimated capacity is reserved for the
    fast lane; the remainder (never below ``floor_bps``) throttles the
    rest.  With the paper's 6 Mb/s line and the default fraction this
    yields the 1 Mb/s throttle of Fig. 5(b).
    """

    reserve_fraction: float = 5.0 / 6.0
    floor_bps: float = 250_000.0

    def __post_init__(self) -> None:
        if not 0 < self.reserve_fraction < 1:
            raise ValueError("reserve_fraction must be in (0, 1)")
        if self.floor_bps <= 0:
            raise ValueError("floor must be positive")

    def throttle_rate(self, capacity_bps: float) -> float:
        """The rate to shape non-boosted traffic to."""
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        return max(self.floor_bps, capacity_bps * (1.0 - self.reserve_fraction))
