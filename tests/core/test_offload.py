"""Hardware prefilter tests (§4.6 hardware/software co-design)."""

import pytest

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    DescriptorStore,
)
from repro.core.offload import HardwarePrefilter
from repro.core.transport import default_registry
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.flow import flow_key_of
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.zerorate import ZeroRatingMiddlebox, flow_key_to_fivetuple


def _env(**kwargs):
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    prefilter = HardwarePrefilter(store, clock=lambda: 0.0, **kwargs)
    software, fast = Sink(), Sink()
    prefilter.software(software)
    prefilter.fast(fast)
    return store, descriptor, prefilter, software, fast


def _cookied(descriptor, sport=5000, when=0.0):
    packet = make_tcp_packet(
        "10.0.0.1", sport, "2.2.2.2", 443, content=TLSClientHello(sni="x.com")
    )
    cookie = CookieGenerator(descriptor, clock=lambda: when).generate()
    default_registry().attach(packet, cookie)
    return packet


def _plain(sport=6000):
    return make_tcp_packet(
        "10.0.0.1", sport, "2.2.2.2", 443, payload_size=1200, encrypted=True
    )


class TestSteering:
    def test_cookieless_packets_take_fast_path(self):
        _store, _descriptor, prefilter, software, fast = _env()
        for i in range(10):
            prefilter.push(_plain(sport=6000 + i))
        assert fast.count == 10 and software.count == 0
        assert prefilter.stats.software_fraction == 0.0

    def test_cookied_packets_go_to_software(self):
        _store, descriptor, prefilter, software, fast = _env()
        prefilter.push(_cookied(descriptor))
        assert software.count == 1 and fast.count == 0

    def test_unknown_id_filtered_in_hardware(self):
        _store, _descriptor, prefilter, software, fast = _env()
        stranger = CookieDescriptor.create()
        prefilter.push(_cookied(stranger))
        assert fast.count == 1 and software.count == 0
        assert prefilter.stats.dropped_early_unknown_id == 1

    def test_stale_timestamp_filtered_in_hardware(self):
        _store, descriptor, prefilter, software, fast = _env()
        prefilter.push(_cookied(descriptor, when=1_000_000.0))
        assert fast.count == 1
        assert prefilter.stats.dropped_early_stale == 1

    def test_checks_can_be_disabled(self):
        """A presence-only pipeline sends every cookied packet up."""
        _store, _descriptor, prefilter, software, _fast = _env(
            check_ids=False, check_timestamp=False
        )
        prefilter.push(_cookied(CookieDescriptor.create(), when=1_000_000.0))
        assert software.count == 1

    def test_default_downstream_when_unwired(self):
        store = DescriptorStore()
        prefilter = HardwarePrefilter(store, clock=lambda: 0.0)
        sink = Sink()
        prefilter >> sink
        prefilter.push(_plain())
        assert sink.count == 1


class TestFlowOffload:
    def test_offloaded_flow_bypasses_software(self):
        _store, descriptor, prefilter, software, fast = _env()
        first = _cookied(descriptor)
        prefilter.push(first)  # goes to software
        counted = []
        prefilter.offload_flow(flow_key_of(first), counted.append)
        follow_up = make_tcp_packet(
            "10.0.0.1", 5000, "2.2.2.2", 443, payload_size=1200
        )
        prefilter.push(follow_up)
        assert fast.count == 1 and software.count == 1
        assert counted == [follow_up]
        assert prefilter.stats.offloaded_hits == 1

    def test_reverse_direction_hits_offload(self):
        _store, descriptor, prefilter, _software, fast = _env()
        first = _cookied(descriptor)
        prefilter.push(first)
        prefilter.offload_flow(flow_key_of(first))
        reverse = make_tcp_packet("2.2.2.2", 443, "10.0.0.1", 5000, payload_size=900)
        prefilter.push(reverse)
        assert fast.count == 1

    def test_evict(self):
        _store, descriptor, prefilter, software, _fast = _env()
        first = _cookied(descriptor)
        key = flow_key_of(first)
        prefilter.offload_flow(key)
        assert prefilter.offloaded_flows == 1
        assert prefilter.evict_flow(key)
        assert not prefilter.evict_flow(key)

    def test_non_ip_goes_to_fast_path(self):
        from repro.netsim.packet import Packet

        _store, _descriptor, prefilter, software, fast = _env()
        prefilter.push(Packet())
        assert fast.count == 1 and software.count == 0


class TestCoDesignWithZeroRating:
    def test_middlebox_offloads_resolved_flows(self):
        """The full §4.6 co-design: software resolves each flow once,
        installs a hardware counter, and never sees the flow again."""
        store = DescriptorStore()
        descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
        prefilter = HardwarePrefilter(store, clock=lambda: 0.0)
        hw_counted = {"packets": 0}

        middlebox = ZeroRatingMiddlebox(
            CookieMatcher(store),
            clock=lambda: 0.0,
            on_flow_resolved=lambda key, state: prefilter.offload_flow(
                flow_key_to_fivetuple(key),
                lambda _p: hw_counted.__setitem__(
                    "packets", hw_counted["packets"] + 1
                ),
            ),
        )
        fast = Sink(keep=False)
        prefilter.software(middlebox)
        prefilter.fast(fast)

        prefilter.push(_cookied(descriptor))  # software resolves + offloads
        for _ in range(20):
            prefilter.push(_plain(sport=5000))
        assert middlebox.packets_processed == 1  # software saw one packet
        assert hw_counted["packets"] == 20
        assert prefilter.stats.offloaded_hits == 20

    def test_charged_flows_resolve_once_in_software(self):
        """A cookieless flow (seen by software, e.g. when no hardware
        presence filter is deployed) resolves as charged exactly once
        when the sniff window closes."""
        store = DescriptorStore()
        offloads = []
        middlebox = ZeroRatingMiddlebox(
            CookieMatcher(store),
            clock=lambda: 0.0,
            sniff_packets=3,
            on_flow_resolved=lambda key, state: offloads.append(
                (flow_key_to_fivetuple(key), state.zero_rated)
            ),
        )
        for _ in range(5):
            middlebox.handle(_plain(sport=7000))
        # Sniff window is 3 packets; resolution fires exactly once.
        assert len(offloads) == 1
        assert offloads[0][1] is False  # charged
