"""The 161-home Boost deployment study (Fig. 1).

"Our first version of Boost ... was made available to 400 home users,
during an internal dogfood test of the OnHub home WiFi router.  161 users
(40 %) installed the extension" and expressed website preferences whose
distribution Fig. 1 plots: "43 % of expressed preferences were unique ...
while the median popularity index of prioritized websites was 223."

:class:`BoostStudy` replays that deployment against the calibrated
preference sampler and reports the same aggregates.
"""

from __future__ import annotations

import random
import statistics
from collections import Counter
from dataclasses import dataclass, field

from .alexa import AlexaIndex
from .preferences import WebsitePreferenceSampler

__all__ = ["BoostStudyResult", "BoostStudy", "PUBLISHED_FIG1"]

#: The aggregates the paper reports for Fig. 1.
PUBLISHED_FIG1 = {
    "homes_offered": 400,
    "homes_installed": 161,
    "install_rate": 0.40,
    "unique_preference_fraction": 0.43,
    "median_popularity_index": 223,
}


@dataclass
class BoostStudyResult:
    """Everything Fig. 1 shows, plus the per-home raw data."""

    homes_offered: int
    homes_installed: int
    preferences_by_home: list[list[str]] = field(default_factory=list)
    site_counts: Counter = field(default_factory=Counter)
    site_ranks: dict[str, int] = field(default_factory=dict)

    @property
    def install_rate(self) -> float:
        return self.homes_installed / self.homes_offered

    @property
    def total_preferences(self) -> int:
        return sum(self.site_counts.values())

    @property
    def unique_preference_fraction(self) -> float:
        """Preferences whose website was picked by exactly one home."""
        singletons = sum(1 for count in self.site_counts.values() if count == 1)
        total = self.total_preferences
        return singletons / total if total else 0.0

    @property
    def median_popularity_index(self) -> float:
        """Median rank over *expressed preferences* (popular sites counted
        once per home that picked them)."""
        ranks: list[int] = []
        for domain, count in self.site_counts.items():
            ranks.extend([self.site_ranks[domain]] * count)
        return statistics.median(ranks) if ranks else 0.0

    def figure1_rows(self, min_users: int = 2) -> list[tuple[str, int, int]]:
        """(domain, homes, rank) rows like Fig. 1's labelled points —
        named sites picked by at least ``min_users`` homes, plus a sample
        of singletons, ordered by rank."""
        rows = [
            (domain, count, self.site_ranks[domain])
            for domain, count in self.site_counts.items()
            if count >= min_users or not domain.startswith("tail-site-")
        ]
        return sorted(rows, key=lambda r: r[2])

    def summary(self) -> dict[str, float]:
        return {
            "homes_offered": self.homes_offered,
            "homes_installed": self.homes_installed,
            "install_rate": round(self.install_rate, 3),
            "total_preferences": self.total_preferences,
            "distinct_sites": len(self.site_counts),
            "unique_preference_fraction": round(self.unique_preference_fraction, 3),
            "median_popularity_index": self.median_popularity_index,
        }


class BoostStudy:
    """Simulates the OnHub dogfood deployment."""

    def __init__(
        self,
        homes_offered: int = 400,
        install_rate: float = 0.4025,  # 161 / 400
        sampler: WebsitePreferenceSampler | None = None,
        seed: int = 2016,
    ) -> None:
        if homes_offered <= 0:
            raise ValueError("need at least one home")
        if not 0 < install_rate <= 1:
            raise ValueError("install_rate must be in (0, 1]")
        self.homes_offered = homes_offered
        self.install_rate = install_rate
        self.rng = random.Random(seed)
        self.sampler = sampler or WebsitePreferenceSampler(seed=seed)

    def run(self) -> BoostStudyResult:
        """Install in ~40 % of homes, collect each installer's preferences."""
        installed = sum(
            1 for _ in range(self.homes_offered) if self.rng.random() < self.install_rate
        )
        result = BoostStudyResult(
            homes_offered=self.homes_offered, homes_installed=installed
        )
        index: AlexaIndex = self.sampler.index
        for _home in range(installed):
            picks = self.sampler.draw_user_preferences()
            result.preferences_by_home.append([s.domain for s in picks])
            for site in picks:
                result.site_counts[site.domain] += 1
                result.site_ranks[site.domain] = site.rank
        # Record ranks for lookup completeness.
        for domain in result.site_counts:
            if domain not in result.site_ranks:
                rank = index.rank(domain)
                result.site_ranks[domain] = rank if rank is not None else 0
        return result
