"""Network cookies: the paper's primary contribution.

Control plane: :class:`CookieServer` advertises services and issues
:class:`CookieDescriptor` objects under a pluggable :class:`AccessPolicy`,
with every grant recorded in an :class:`AuditLog`.  Clients
(:class:`UserAgent`) acquire descriptors out-of-band and locally mint
single-use, HMAC-signed :class:`Cookie` tokens.

Data plane: cookies ride in-band over any registered transport
(HTTP header, TLS extension, IPv6 extension header, TCP option, UDP shim);
a :class:`CookieSwitch` verifies them (signature, coherency time, replay)
via :class:`CookieMatcher` and binds flows to services.
"""

from .attributes import CookieAttributes, Granularity
# The audit log lives in repro.audit.log since the module grew into the
# adversarial-auditor package; ``.audit`` is kept as a compat re-export.
from ..audit.log import AuditEvent, AuditLog, AuditRecord
from .client import AgentStats, UserAgent
from .cookie import (
    COOKIE_WIRE_BYTES,
    SIGNATURE_BYTES,
    UUID_BYTES,
    Cookie,
    sign_cookie_fields,
    SignerCache,
)
from .delegation import DelegatedParty, delegate_descriptor, make_ack_cookie
from .descriptor import COOKIE_ID_BITS, CookieDescriptor
from .distributed import (
    NaiveVerifierPool,
    PoolStats,
    ShardedVerifierPool,
    rendezvous_shard,
)
from .parallel import (
    ProcessShardExecutor,
    decode_batch,
    decode_verdicts,
    encode_batch,
    encode_verdicts,
)
from .discovery import (
    DHCP_COOKIE_SERVER_OPTION,
    DhcpDiscovery,
    Directory,
    HardcodedDiscovery,
    MdnsDiscovery,
    ServerRecord,
)
from .errors import (
    AcquisitionDenied,
    ChannelUnavailable,
    CookieError,
    DelegationError,
    DescriptorExpired,
    DescriptorRevoked,
    InvalidSignature,
    MalformedCookie,
    ReplayDetected,
    StaleTimestamp,
    TransportError,
    UnknownDescriptor,
)
from .generator import CookieGenerator
from .resilience import (
    CircuitBreaker,
    ResilientChannel,
    RetryPolicy,
)
from .matcher import (
    NETWORK_COHERENCY_TIME,
    CookieMatcher,
    MatchStats,
    ReplayCache,
    ShardedReplayCache,
)
from .netserver import (
    AsyncCookieServer,
    CookieClient,
    JsonLineServer,
    request_over_tcp,
)
from .cp import (
    AsyncControlPlaneServer,
    ControlPlaneShard,
    DeltaLog,
    DeltaRecord,
    LogTruncated,
    ReplicaUnreachable,
    ShardedControlPlane,
    StoreSnapshot,
    VerifierReplica,
)
from .offload import HardwarePrefilter, PrefilterStats
from .policy import (
    AccessPolicy,
    AcquisitionRequest,
    AllOfPolicy,
    AuthenticatedUsersPolicy,
    OpenAccessPolicy,
    PrepaidPolicy,
    QuotaPolicy,
    ServiceWhitelistPolicy,
)
from .seeding import derive_seed
from .server import CookieServer, ServiceOffering
from .sweep import (
    SweepCell,
    SweepError,
    SweepExecutor,
    SweepStats,
    run_sweep,
)
from .store import DescriptorStore, SQLiteDescriptorStore
from .switch import (
    FAST_LANE_CLASS,
    CookieSwitch,
    DscpServiceApplier,
    SwitchStats,
)
from .transport import TransportRegistry, default_registry

__all__ = [
    "CookieAttributes",
    "Granularity",
    "AuditEvent",
    "AuditLog",
    "AuditRecord",
    "AgentStats",
    "UserAgent",
    "COOKIE_WIRE_BYTES",
    "SIGNATURE_BYTES",
    "UUID_BYTES",
    "Cookie",
    "sign_cookie_fields",
    "SignerCache",
    "DelegatedParty",
    "delegate_descriptor",
    "make_ack_cookie",
    "COOKIE_ID_BITS",
    "CookieDescriptor",
    "NaiveVerifierPool",
    "PoolStats",
    "ShardedVerifierPool",
    "rendezvous_shard",
    "ProcessShardExecutor",
    "encode_batch",
    "decode_batch",
    "encode_verdicts",
    "decode_verdicts",
    "DHCP_COOKIE_SERVER_OPTION",
    "DhcpDiscovery",
    "Directory",
    "HardcodedDiscovery",
    "MdnsDiscovery",
    "ServerRecord",
    "AcquisitionDenied",
    "ChannelUnavailable",
    "CookieError",
    "DelegationError",
    "DescriptorExpired",
    "DescriptorRevoked",
    "InvalidSignature",
    "MalformedCookie",
    "ReplayDetected",
    "StaleTimestamp",
    "TransportError",
    "UnknownDescriptor",
    "CookieGenerator",
    "CircuitBreaker",
    "ResilientChannel",
    "RetryPolicy",
    "NETWORK_COHERENCY_TIME",
    "CookieMatcher",
    "MatchStats",
    "ReplayCache",
    "ShardedReplayCache",
    "AsyncCookieServer",
    "CookieClient",
    "JsonLineServer",
    "request_over_tcp",
    "AsyncControlPlaneServer",
    "ControlPlaneShard",
    "DeltaLog",
    "DeltaRecord",
    "LogTruncated",
    "ReplicaUnreachable",
    "ShardedControlPlane",
    "StoreSnapshot",
    "VerifierReplica",
    "HardwarePrefilter",
    "PrefilterStats",
    "AccessPolicy",
    "AcquisitionRequest",
    "AllOfPolicy",
    "AuthenticatedUsersPolicy",
    "OpenAccessPolicy",
    "PrepaidPolicy",
    "QuotaPolicy",
    "ServiceWhitelistPolicy",
    "derive_seed",
    "CookieServer",
    "ServiceOffering",
    "SweepCell",
    "SweepError",
    "SweepExecutor",
    "SweepStats",
    "run_sweep",
    "DescriptorStore",
    "SQLiteDescriptorStore",
    "FAST_LANE_CLASS",
    "CookieSwitch",
    "DscpServiceApplier",
    "SwitchStats",
    "TransportRegistry",
    "default_registry",
]
