"""HTTP header carrier.

For unencrypted traffic the cookie rides in a dedicated request header as
base64 text, exactly as the Boost prototype does ("We insert cookies as a
special HTTP header for unencrypted traffic").
"""

from __future__ import annotations

from ...netsim.appmsg import HTTPRequest
from ...netsim.packet import Packet
from ..cookie import COOKIE_WIRE_BYTES, Cookie
from ..errors import MalformedCookie, TransportError
from .base import CookieCarrier

__all__ = ["HttpHeaderCarrier", "COOKIE_HEADER"]

COOKIE_HEADER = "X-Network-Cookie"


class HttpHeaderCarrier(CookieCarrier):
    """Carries the cookie in the ``X-Network-Cookie`` request header."""

    name = "http"
    # header name + ": " + base64(48 bytes) + CRLF
    overhead_bytes = len(COOKIE_HEADER) + 2 + ((COOKIE_WIRE_BYTES + 2) // 3) * 4 + 2

    def can_carry(self, packet: Packet) -> bool:
        return (
            isinstance(packet.payload.content, HTTPRequest)
            and not packet.payload.encrypted
        )

    def attach(self, packet: Packet, cookie: Cookie) -> None:
        """Attach a cookie; composes with any already present (the header
        value becomes a comma-separated list, HTTP list-header style)."""
        if not self.can_carry(packet):
            raise TransportError("packet does not carry a plaintext HTTP request")
        request: HTTPRequest = packet.payload.content
        existing = request.header(COOKIE_HEADER)
        value = cookie.to_text() if existing is None else f"{existing},{cookie.to_text()}"
        request.set_header(COOKIE_HEADER, value)
        packet.payload.size += self.overhead_bytes

    def extract(self, packet: Packet) -> Cookie | None:
        cookies = self.extract_all(packet)
        return cookies[0] if cookies else None

    def extract_all(self, packet: Packet) -> list[Cookie]:
        if not self.can_carry(packet):
            return []
        request: HTTPRequest = packet.payload.content
        text = request.header(COOKIE_HEADER)
        if text is None:
            return []
        cookies = []
        for item in text.split(","):
            try:
                cookies.append(Cookie.from_text(item.strip()))
            except MalformedCookie:
                continue
        return cookies
