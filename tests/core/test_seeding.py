"""Properties of the shared seed-derivation helper.

``derive_seed`` is the root of every campaign's determinism story — the
chaos soak, the audit, and the grid sweep all derive their per-trial
streams from it — so its mapping is pinned here byte-for-byte: a change
to the construction would silently invalidate every recorded report.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.seeding import derive_seed

label = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.booleans(),
)


# Pinned values: if these move, every checked-in campaign report with a
# recorded seed silently stops replaying.  Regenerate ONLY with a
# deliberate construction change, and say so in the changelog.
PINNED = {
    (0, ()): 3091872937143141306,
    (0, ("sweep",)): 6503708035264366334,
    (20160822, ("chaos", "homes")): 3376813460183348728,
    (20160822, ("audit", "zerorate")): 8722717984789229007,
    (20160822, ("sweep", "linklab", 6.0, 0.035, 0.005)):
        6257886294338801546,
    (1, ("a", "b")): 8355391671721957134,
    (42, (7,)): 6165416527519680293,
}


def test_pinned_values_are_stable():
    for (campaign, labels), expected in PINNED.items():
        assert derive_seed(campaign, *labels) == expected


def test_range_is_63_bit():
    for seed in (0, 1, -5, 2**70, 20160822):
        value = derive_seed(seed, "x")
        assert 0 <= value < 2**63


@given(campaign=st.integers(), labels=st.lists(label, max_size=4))
@settings(max_examples=200, deadline=None)
def test_deterministic(campaign, labels):
    assert derive_seed(campaign, *labels) == derive_seed(campaign, *labels)


@given(campaign=st.integers(min_value=0, max_value=2**32), a=label, b=label)
@settings(max_examples=200, deadline=None)
def test_order_sensitive(campaign, a, b):
    if str(a) == str(b):
        return
    assert derive_seed(campaign, a, b) != derive_seed(campaign, b, a)


def test_length_prefix_prevents_concatenation_collisions():
    # The classic failure of naive concatenation hashing.
    assert derive_seed(0, "ab") != derive_seed(0, "a", "b")
    assert derive_seed(0, "a", "bc") != derive_seed(0, "ab", "c")
    assert derive_seed(12, "3") != derive_seed(1, "23")


def test_adjacent_campaigns_do_not_collide():
    # The ad-hoc schemes this helper replaced DID collide here.
    assert derive_seed(1, 2) != derive_seed(2, 1)
    seen = set()
    for campaign in range(50):
        for trial in range(50):
            seen.add(derive_seed(campaign, "trial", trial))
    assert len(seen) == 2500


@given(
    campaign=st.integers(min_value=0, max_value=2**20),
    labels=st.lists(label, min_size=1, max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_streams_are_usable_random_seeds(campaign, labels):
    # Derived seeds must feed random.Random without truncation surprises.
    rng = random.Random(derive_seed(campaign, *labels))
    values = [rng.random() for _ in range(3)]
    rng2 = random.Random(derive_seed(campaign, *labels))
    assert values == [rng2.random() for _ in range(3)]


def test_campaign_seed_coerced_to_int():
    assert derive_seed(True, "x") == derive_seed(1, "x")
    with pytest.raises((TypeError, ValueError)):
        derive_seed("not-an-int", "x")  # type: ignore[arg-type]
