"""Fig. 5(b) — flow completion time for a 300 KB flow under Boost.

Paper: over a 6 Mb/s line with non-boosted traffic throttled to 1 Mb/s,
the boosted CDF rises steeply well before the best-effort curve, and the
throttled curve is far to the right (their x-axis runs to 12 s).

Asserted shape: strict ordering boosted < best-effort < throttled with
first-order stochastic dominance, and the boosted flow close to the
ideal 0.4 s transfer time.
"""

import pytest

from repro.analysis import EmpiricalCDF
from repro.experiments.fig5b_fct import run_fig5b

TRIALS = 8


@pytest.fixture(scope="module")
def fct_result():
    return run_fig5b(trials=TRIALS, seed=100)


def test_fig5b_completion_time_cdfs(benchmark, report, fct_result):
    # Benchmark one full boosted trial (daemon + cookies + queues).
    from repro.experiments.fig5b_fct import run_trial

    benchmark.pedantic(
        lambda: run_trial("boosted", seed=999), rounds=1, iterations=1
    )

    report("Fig. 5(b) — FCT of a 300 KB flow (seconds)")
    report(f"{'class':<14}{'median':>8}{'p90':>8}{'min':>8}{'max':>8}")
    for name, stats in fct_result.summary().items():
        report(
            f"{name:<14}{stats['median_s']:>8.2f}{stats['p90_s']:>8.2f}"
            f"{stats['min_s']:>8.2f}{stats['max_s']:>8.2f}"
        )
    report()
    report("CDF points (time -> fraction complete):")
    for name in ("boosted", "best-effort", "throttled"):
        cdf = fct_result.cdf(name)
        points = ", ".join(f"{x:.1f}s:{y:.2f}" for x, y in cdf.curve(points=8))
        report(f"  {name:<12} {points}")

    medians = fct_result.medians()
    benchmark.extra_info.update(
        {f"median_{k}": round(v, 3) for k, v in medians.items()}
    )

    # Ordering, as in the figure.
    assert medians["boosted"] < medians["best-effort"] < medians["throttled"]
    boosted = fct_result.cdf("boosted")
    best_effort = fct_result.cdf("best-effort")
    throttled = fct_result.cdf("throttled")
    # Quantile-wise ordering with a small tolerance: on a trial whose
    # background happens to be idle, best-effort legitimately ties the
    # boosted flow (boost only helps under contention), so we compare
    # quantiles rather than demanding strict stochastic dominance.
    for q in (0.25, 0.5, 0.75, 0.9):
        assert boosted.quantile(q) <= best_effort.quantile(q) + 0.01
    assert best_effort.stochastically_dominates(throttled)
    # Boosted is near the 0.4 s ideal; throttled is whole-seconds slow.
    ideal = 300_000 * 8 / 6e6
    assert medians["boosted"] < ideal * 4
    assert medians["throttled"] > 2.4  # 300 KB at the full 1 Mb/s throttle
    # Clear separation factors, as the figure shows.
    assert medians["best-effort"] / medians["boosted"] > 1.5
    assert medians["throttled"] / medians["best-effort"] > 2.0
