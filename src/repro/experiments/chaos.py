"""Chaos soak: the cookie data path under a seeded fault storm.

The paper's safety argument is conditional — "cookies are bound to
their network service and cannot be abused" — and every condition is a
*failure-path* property: a corrupted cookie must read as "no cookie", a
replayed cookie must hit the replay cache, an unreachable cookie server
must degrade service rather than grant it, a dead verifier shard must
fail closed.  This module drives the whole stack (agents → fault
injector → zero-rating middlebox → accounting sink, plus an on-path
replay attacker) with every fault class enabled at once and checks the
three invariants that make the claims hold:

1. **No free riding**: flows whose cookie was corrupted in flight, and
   flows minted by the replay attacker, accrue **zero** zero-rated
   bytes.
2. **Conservation**: per subscriber IP, the middlebox's
   ``free + charged`` equals the bytes the sink actually delivered —
   faults may drop or duplicate packets but never unaccount them.
3. **No crashes**: the run completes with zero unhandled exceptions;
   every fault surfaces as a counter, never a traceback.
4. **Billing**: the soak runs the full multi-operator billing pipeline
   (three catalogs — unlimited, capped, roaming-suspended — a
   journal-backed accountant, and exactly-once reconciliation): per
   operator, the sum of invoiced free+charged bytes per IP equals the
   bytes the sink delivered, across every fault the storm injected.

Everything is a pure function of ``ChaosConfig.seed``, so a failing run
reproduces bit-identically from its seed (the CI job pins one).

Two focused drills complement the soak:

- :func:`run_outage_drill` — a 30 s cookie-server outage against a
  resilient agent (retry → breaker → renewal grace) and a
  :class:`~repro.services.boost.daemon.BoostDaemon` in either degraded
  mode.
- :func:`run_pool_kill_drill` — SIGKILLs a
  :class:`~repro.core.parallel.ProcessShardExecutor` worker until the
  shard exhausts ``max_restarts`` and retires to its in-process
  fallback, asserting dispatch never loses a verdict along the way.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import tempfile
import traceback
from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.seeding import derive_seed

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "run_outage_drill",
    "run_pool_kill_drill",
]

#: The zero-rated service every chaos home subscribes to.
CHAOS_SERVICE = "zero-rate"
_SERVER_IP = "93.184.216.34"
_ATTACKER_IP = "10.99.0.99"
#: Simulated wall-clock epoch — keeps skewed host clocks positive.
_EPOCH = 1_700_000_000.0


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one soak run; the default is the CI acceptance profile
    (≥5% of each fault class, ±2 s clock skew, two control-plane
    outages)."""

    seed: int = 20160822
    homes: int = 8
    flows_per_home: int = 12
    packets_per_flow: int = 8
    payload_bytes: int = 600
    #: Flow start times are spread across this many simulated seconds.
    duration_s: float = 60.0
    drop_rate: float = 0.05
    duplicate_rate: float = 0.05
    reorder_rate: float = 0.05
    corrupt_rate: float = 0.05
    delay_rate: float = 0.05
    delay_jitter_s: float = 0.25
    #: Per-home constant clock skew is drawn from ±this many seconds.
    max_clock_skew_s: float = 2.0
    #: How many sniffed cookies the on-path attacker replays on fresh
    #: flows (half inside the NCT window, half beyond it).
    attacker_replays: int = 40
    #: Control-plane outage windows (start, end) in simulated seconds.
    outages: tuple[tuple[float, float], ...] = ((15.0, 25.0), (40.0, 48.0))
    #: Short descriptor lifetime so renewals (and renewal grace, during
    #: the outage windows) actually happen mid-run.
    descriptor_lifetime_s: float = 20.0
    renewal_grace_s: float = 30.0
    nct_s: float = 5.0


@dataclass
class ChaosReport:
    """Everything a failing CI run needs to be diagnosed from the log."""

    config: dict[str, Any]
    faults: dict[str, int]
    middlebox: dict[str, int]
    agents: dict[str, int]
    flows: dict[str, int]
    #: Zero-rated bytes accrued by corrupted/attacker flows (must be 0).
    invalid_free_bytes: int
    free_bytes: int
    charged_bytes: int
    conservation_violations: list[str] = field(default_factory=list)
    unhandled_exceptions: list[str] = field(default_factory=list)
    #: Per-operator billing totals + reconciliation counters (§16).
    billing: dict[str, Any] = field(default_factory=dict)
    billing_violations: list[str] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        out = list(self.conservation_violations)
        if self.invalid_free_bytes:
            out.append(
                f"{self.invalid_free_bytes} free bytes granted to "
                "corrupted/replayed flows"
            )
        out.extend(self.unhandled_exceptions)
        if not self.free_bytes:
            out.append("vacuous run: no flow was zero-rated at all")
        out.extend(self.billing_violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        payload = asdict(self)
        payload["violations"] = self.violations
        payload["ok"] = self.ok
        return json.dumps(payload, indent=2, sort_keys=True)

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": len(self.violations),
            "injected": {
                k: v for k, v in self.faults.items() if k != "packets"
            },
            "free_bytes": self.free_bytes,
            "charged_bytes": self.charged_bytes,
            "invalid_free_bytes": self.invalid_free_bytes,
            "grace_signings": self.agents.get("grace_signings", 0),
            "verifier_failures": self.middlebox.get("verifier_failures", 0),
        }


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """One deterministic soak; see the module docstring for invariants."""
    from ..core.resilience import CircuitBreaker, ResilientChannel, RetryPolicy
    from ..core.client import UserAgent
    from ..core.matcher import CookieMatcher
    from ..core.server import CookieServer, ServiceOffering
    from ..core.store import DescriptorStore
    from ..core.transport import default_registry
    from ..netsim import (
        EventLoop,
        FaultInjector,
        FaultPlan,
        Sink,
        SkewedClock,
        Tap,
        flow_key_of,
        make_tcp_packet,
    )
    from ..services.billing import BillingAccountant, BillingJournal, reconcile
    from ..services.zerorate import (
        AppCoverage,
        CatalogSet,
        OperatorCatalog,
        ZeroRatingMiddlebox,
    )
    from ..telemetry import MetricsRegistry

    config = config or ChaosConfig()
    # All per-component randomness derives from the one campaign seed via
    # the shared stable hash, so streams never shadow one another and the
    # whole soak replays bit-identically from ``config.seed``.
    rng = random.Random(derive_seed(config.seed, "chaos", "homes"))
    loop = EventLoop()

    # Wall-clock epoch: the loop starts at t=0, but cookie timestamps
    # are unsigned on the wire, so a negatively-skewed host clock must
    # never dip below zero.
    def clock() -> float:
        return _EPOCH + loop.now

    # Control plane: one cookie server whose channel blacks out during
    # the configured outage windows.
    store = DescriptorStore()
    server = CookieServer(clock=clock)
    server.offer(
        ServiceOffering(
            name=CHAOS_SERVICE,
            description="chaos-soak zero-rating",
            lifetime=config.descriptor_lifetime_s,
            service_data=CHAOS_SERVICE,
        )
    )
    server.attach_enforcement_store(store)

    def flaky_channel(request: dict[str, Any]) -> dict[str, Any]:
        for start, end in config.outages:
            if start <= loop.now < end:
                raise ConnectionError(
                    f"cookie server unreachable ({start}s–{end}s outage)"
                )
        return server.handle_request(request)

    # One resilient agent per home, each on its own skewed host clock.
    # Retries are instantaneous in simulated time (sleep is a no-op):
    # what matters here is retry *accounting* and breaker behaviour,
    # exercised for real by the outage drill's virtual timeline.
    agents: list[UserAgent] = []
    for home in range(config.homes):
        channel = ResilientChannel(
            flaky_channel,
            policy=RetryPolicy(
                max_attempts=3,
                base_delay=0.05,
                max_delay=0.2,
                seed=derive_seed(config.seed, "chaos", "retry", home),
            ),
            breaker=CircuitBreaker(
                failure_threshold=4, reset_timeout=5.0, clock=clock
            ),
            clock=clock,
            sleep=None,
        )
        agents.append(
            UserAgent(
                f"home-{home}",
                clock=SkewedClock(
                    clock,
                    rng.uniform(
                        -config.max_clock_skew_s, config.max_clock_skew_s
                    ),
                ),
                channel=channel,
                renewal_grace=config.renewal_grace_s,
            )
        )

    # Data plane: injector → middlebox → attacker tap → accounting sink.
    telemetry = MetricsRegistry()
    corrupted_flows: set = set()
    injector = FaultInjector(
        FaultPlan(
            drop_rate=config.drop_rate,
            duplicate_rate=config.duplicate_rate,
            reorder_rate=config.reorder_rate,
            corrupt_rate=config.corrupt_rate,
            delay_rate=config.delay_rate,
            delay_jitter_s=config.delay_jitter_s,
            seed=derive_seed(config.seed, "chaos", "faults"),
        ),
        loop=loop,
        on_corrupt=lambda packet: corrupted_flows.add(flow_key_of(packet)),
        telemetry=telemetry,
    )
    # Billing rides the same storm: three operator catalogs over the one
    # chaos service — op-a unlimited, op-b behind a cap that bites
    # mid-run, op-c roaming-suspended for its first home — journaled and
    # reconciled to the delivered ground truth at the end.
    chaos_app = AppCoverage(
        app=CHAOS_SERVICE, origin_ips=frozenset({_SERVER_IP})
    )
    catalogs = CatalogSet(
        [
            OperatorCatalog(operator="op-a", apps=(chaos_app,)),
            OperatorCatalog(
                operator="op-b", apps=(chaos_app,), cap_bytes=20_000
            ),
            OperatorCatalog(operator="op-c", apps=(chaos_app,)),
        ]
    )
    chaos_operators = ("op-a", "op-b", "op-c")
    for home in range(config.homes):
        catalogs.assign(
            f"10.0.{home}.2", chaos_operators[home % len(chaos_operators)]
        )
    if config.homes > 2:
        catalogs.set_roaming("10.0.2.2")  # op-c's first home is abroad
    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-billing-")
    journal = BillingJournal(
        journal_dir,
        source="chaos",
        stream_seed=config.seed,
        fsync="never",
    )
    accountant = BillingAccountant(catalogs, journal)
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store, nct=config.nct_s),
        clock=clock,
        billing=accountant,
        telemetry=telemetry,
    )

    # The attacker sits past the middlebox and replays cookies the
    # middlebox actually *consumed* (``meta["cookie_checked"]``) — the
    # replay threat model the cache defends.  A cookie the box skipped
    # (delayed past the sniff window of an already-resolved flow) is
    # still unspent: stealing it is a first spend, which only a secure
    # channel can prevent — the problem the paper defers to TLS, not a
    # replay-cache invariant.  Each consumed cookie is replayed once on
    # a brand-new flow from the attacker's own subscriber IP.
    transports = default_registry()
    attacker_flows: set = set()
    replays_left = [config.attacker_replays]

    def replay(cookie, index: int) -> None:
        packet = make_tcp_packet(
            _ATTACKER_IP,
            50000 + index,
            _SERVER_IP,
            443,
            payload_size=config.payload_bytes,
            created_at=loop.now,
        )
        transports.attach(packet, cookie)
        attacker_flows.add(flow_key_of(packet))
        # Injected straight into the middlebox: the attack must be
        # defeated by verification, not by the attacker's own bad luck
        # with the fault injector.
        middlebox.push(packet)

    def sniff(packet) -> None:
        if (
            replays_left[0] <= 0
            or not packet.meta.get("cookie_checked")
            or flow_key_of(packet) in attacker_flows
        ):
            return
        for cookie, _carrier in transports.extract_all(packet):
            if replays_left[0] <= 0:
                break
            replays_left[0] -= 1
            index = config.attacker_replays - replays_left[0]
            # Half the replays land inside the NCT window (replay cache
            # must catch them), half beyond it (staleness must).
            lag = (
                rng.uniform(0.1, config.nct_s * 0.5)
                if index % 2
                else config.nct_s + rng.uniform(0.5, config.nct_s)
            )
            loop.schedule(lag, lambda c=cookie, i=index: replay(c, i))

    per_flow_free: dict = {}
    per_ip_delivered: dict[str, int] = {}

    def account(packet) -> None:
        key = flow_key_of(packet)
        src = packet.ip.src
        per_ip_delivered[src] = (
            per_ip_delivered.get(src, 0) + packet.wire_length
        )
        if packet.meta.get("zero_rated"):
            per_flow_free[key] = (
                per_flow_free.get(key, 0) + packet.wire_length
            )

    sink = Sink(name="chaos-sink", keep=False)
    injector >> middlebox >> Tap(sniff, name="attacker-tap") >> Tap(
        account, name="accounting-tap"
    ) >> sink

    # Traffic: every flow front-loads its cookie on packet 0 (the sniff
    # window) then streams payload.  Uncookied sends (agent degraded
    # past grace) still flow — charged, which is the safe direction.
    legit_flows: set = set()

    def send(agent: UserAgent, src_ip: str, sport: int, first: bool) -> None:
        packet = make_tcp_packet(
            src_ip,
            sport,
            _SERVER_IP,
            443,
            payload_size=config.payload_bytes,
            created_at=loop.now,
        )
        if first:
            agent.insert_cookie(packet, CHAOS_SERVICE)
        legit_flows.add(flow_key_of(packet))
        injector.push(packet)

    sport = 20000
    for home, agent in enumerate(agents):
        src_ip = f"10.0.{home}.2"
        for _flow in range(config.flows_per_home):
            sport += 1
            start = rng.uniform(0.0, config.duration_s)
            for index in range(config.packets_per_flow):
                loop.schedule_at(
                    start + index * 0.05,
                    lambda a=agent, ip=src_ip, p=sport, i=index: send(
                        a, ip, p, i == 0
                    ),
                )

    unhandled: list[str] = []
    try:
        loop.run(until=config.duration_s + config.nct_s * 3 + 5.0)
        loop.run_until_idle()
        injector.flush()
    except Exception:  # the invariant is that this never happens
        unhandled.append(traceback.format_exc())

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    invalid_flows = corrupted_flows | attacker_flows
    invalid_free_bytes = sum(
        per_flow_free.get(key, 0) for key in invalid_flows
    )

    free_bytes = sum(c.free_bytes for c in middlebox.counters.values())
    charged_bytes = sum(c.charged_bytes for c in middlebox.counters.values())
    conservation: list[str] = []
    for ip, counters in sorted(middlebox.counters.items()):
        delivered = per_ip_delivered.get(ip, 0)
        accounted = counters.free_bytes + counters.charged_bytes
        if delivered != accounted:
            conservation.append(
                f"{ip}: middlebox accounted {accounted} B "
                f"but sink delivered {delivered} B"
            )
    for ip in sorted(set(per_ip_delivered) - set(middlebox.counters)):
        conservation.append(
            f"{ip}: {per_ip_delivered[ip]} B delivered but never accounted"
        )

    agent_totals: dict[str, int] = {}
    for agent in agents:
        for name, value in agent.stats.as_dict().items():
            if isinstance(value, (int, float)):
                agent_totals[name] = agent_totals.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    # Billing invariant: per operator, invoiced free+charged per IP ==
    # bytes the sink delivered, across the whole faulted soak.
    # ------------------------------------------------------------------
    billing_violations: list[str] = []
    billing_summary: dict[str, Any] = {}
    try:
        accountant.flush_all(now=clock())
        records = list(journal.records())
        journal.close()
        delivered_by_operator: dict[str, dict[str, int]] = {}
        for ip, nbytes in per_ip_delivered.items():
            per = delivered_by_operator.setdefault(
                catalogs.operator_of(ip), {}
            )
            per[ip] = per.get(ip, 0) + nbytes
        reconciled = reconcile(
            records,
            delivered=delivered_by_operator,
            recovery=journal.recovery,
        )
        billing_violations.extend(reconciled.tariff_violations)
        for operator, per in sorted(reconciled.lost.items()):
            for ip, nbytes in sorted(per.items()):
                billing_violations.append(
                    f"billing lost: {operator}/{ip} delivered {nbytes} B "
                    "never invoiced"
                )
        for operator, per in sorted(reconciled.double_billed.items()):
            for ip, nbytes in sorted(per.items()):
                billing_violations.append(
                    f"billing double: {operator}/{ip} invoiced {nbytes} B "
                    "never delivered"
                )
        capped = reconciled.invoices.get("op-b")
        if capped is not None and capped.statements:
            over = [
                ip
                for ip, statement in capped.statements.items()
                if statement.free_bytes > 20_000
            ]
            if over:
                billing_violations.append(
                    f"op-b cap exceeded for {sorted(over)}"
                )
        billing_summary = {
            "records": reconciled.records_applied,
            "duplicates_skipped": reconciled.duplicates_skipped,
            "corrupt_records": reconciled.corrupt_records,
            "operators": {
                operator: {
                    "free_bytes": invoice.free_bytes,
                    "charged_bytes": invoice.charged_bytes,
                    "subscribers": len(invoice.statements),
                }
                for operator, invoice in sorted(
                    reconciled.invoices.items()
                )
            },
        }
    except Exception:  # billing must never crash the soak either
        billing_violations.append(traceback.format_exc())
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)

    return ChaosReport(
        config=asdict(config),
        faults=injector.stats.as_dict(),
        middlebox={
            "free_bytes": free_bytes,
            "charged_bytes": charged_bytes,
            "flows_resolved": middlebox.flows_resolved,
            "cookie_hits": middlebox.cookie_hits,
            "verifier_failures": middlebox.verifier_failures,
            "subscribers": len(middlebox.counters),
        },
        agents=agent_totals,
        flows={
            "legit": len(legit_flows),
            "corrupted": len(corrupted_flows),
            "attacker": len(attacker_flows),
            "sink_packets": sink.count,
        },
        invalid_free_bytes=invalid_free_bytes,
        free_bytes=free_bytes,
        charged_bytes=charged_bytes,
        conservation_violations=conservation,
        unhandled_exceptions=unhandled,
        billing=billing_summary,
        billing_violations=billing_violations,
    )


# ----------------------------------------------------------------------
# Outage drill
# ----------------------------------------------------------------------
def run_outage_drill(mode: str, seed: int = 0) -> dict[str, Any]:
    """A 30 s cookie-server outage on a virtual timeline.

    One home keeps minting every second while the control channel is
    down from t=5 s to t=35 s.  Expected arc: retries fail → the
    breaker opens → renewal past descriptor expiry falls back to grace
    signing → the daemon (watching the same breaker) enters ``mode``'s
    degraded behaviour → recovery closes the breaker, renews the
    descriptor, and restores the fast lane.  Returns the observed
    timeline for tests/CLI to assert on.
    """
    from ..core.resilience import CircuitBreaker, ResilientChannel, RetryPolicy
    from ..core.client import UserAgent
    from ..core.server import CookieServer, ServiceOffering
    from ..core.store import DescriptorStore
    from ..netsim import EventLoop, make_tcp_packet
    from ..services.boost.daemon import BoostDaemon

    outage = (5.0, 35.0)
    loop = EventLoop()

    def clock() -> float:
        return loop.now

    store = DescriptorStore()
    server = CookieServer(clock=clock)
    server.offer(
        ServiceOffering(
            name=CHAOS_SERVICE,
            description="outage drill",
            lifetime=10.0,
            service_data=CHAOS_SERVICE,
        )
    )
    server.attach_enforcement_store(store)

    def channel_fn(request: dict[str, Any]) -> dict[str, Any]:
        if outage[0] <= loop.now < outage[1]:
            raise ConnectionError("cookie server outage")
        return server.handle_request(request)

    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout=5.0, clock=clock
    )
    agent = UserAgent(
        "drill-home",
        clock=clock,
        channel=ResilientChannel(
            channel_fn,
            policy=RetryPolicy(
                max_attempts=2, base_delay=0.05, max_delay=0.1, seed=seed
            ),
            breaker=breaker,
            clock=clock,
            sleep=None,
        ),
        renewal_grace=60.0,
    )
    daemon = BoostDaemon(
        loop, store, boost_lifetime=60.0, degraded_mode=mode
    )
    daemon.attach_breaker(breaker)

    observed: dict[str, Any] = {"mode": mode}

    def tick() -> None:
        packet = make_tcp_packet(
            "10.0.0.2",
            40000 + int(loop.now),
            _SERVER_IP,
            443,
            payload_size=100,
            created_at=loop.now,
        )
        agent.insert_cookie(packet, CHAOS_SERVICE)
        daemon.switch.push(packet)
        daemon.poll_degraded()

    for second in range(46):
        loop.schedule_at(second + 0.5, tick)

    def observe(label: str) -> None:
        observed[label] = {
            "boost_active": daemon.active_descriptor_id is not None,
            "degraded": daemon.degraded,
            "breaker_state": breaker.state,
        }

    loop.schedule_at(4.9, lambda: observe("before_outage"))
    loop.schedule_at(30.0, lambda: observe("during_outage"))
    loop.schedule_at(45.9, lambda: observe("after_recovery"))
    loop.run(until=46.0)

    observed.update(
        breaker_opened=breaker.opened,
        degraded_entered=daemon.degraded_entered,
        activations_blocked=daemon.degraded_activations_blocked,
        grace_signings=agent.stats.grace_signings,
        renewals_failed=agent.stats.renewals_failed,
        retries=agent.channel.stats.retries,
        rejected_open=agent.channel.stats.rejected_open,
    )
    return observed


# ----------------------------------------------------------------------
# Pool kill drill
# ----------------------------------------------------------------------
def run_pool_kill_drill(
    seed: int = 0,
    kills: int = 3,
    workers: int = 2,
    max_restarts: int = 2,
    batches: int = 12,
) -> dict[str, Any]:
    """SIGKILL a verifier shard between dispatches until it falls back.

    With ``kills > max_restarts`` the victim shard must walk the whole
    recovery ladder — restart with backoff per kill, then permanent
    in-process fallback — while **every** dispatch still returns a full
    verdict array.  Returns the tallies the kill test asserts on.
    """
    from ..core.parallel import ProcessShardExecutor, VERDICT_UNAVAILABLE
    from ..core.resilience import RetryPolicy
    from .scaleout import STREAM_NOW, build_verification_stream

    store, stream = build_verification_stream(
        descriptors=48, cookies=batches * 64, batch_size=64
    )
    rng = random.Random(seed)
    kill_rounds = sorted(
        rng.sample(range(1, batches), min(kills, batches - 1))
    )
    report: dict[str, Any] = {
        "kills": 0,
        "dispatches": 0,
        "short_verdict_arrays": 0,
        "unavailable_reasons": 0,
    }
    victim = 0
    with ProcessShardExecutor(
        store,
        workers=workers,
        reply_timeout=10.0,
        max_restarts=max_restarts,
        restart_backoff=RetryPolicy(
            max_attempts=max_restarts + 1, base_delay=0.01, max_delay=0.05
        ),
    ) as pool:
        for round_index, batch in enumerate(stream):
            if round_index in kill_rounds:
                pid = pool.worker_pids()[victim]
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
                    report["kills"] += 1
            reasons: list[str] = []
            verdicts = pool.match_batch(batch, STREAM_NOW, reasons=reasons)
            report["dispatches"] += 1
            if len(verdicts) != len(batch) or len(reasons) != len(batch):
                report["short_verdict_arrays"] += 1
            report["unavailable_reasons"] += reasons.count(
                VERDICT_UNAVAILABLE
            )
        report.update(
            restarts=pool.stats.shard_restarts,
            fallbacks=pool.stats.fallbacks,
            fallback_shards=pool.fallback_shards,
            unavailable_verdicts=pool.stats.unavailable_verdicts,
            accepted=pool.stats.accepted,
            healthy=pool.health(),
        )
    return report
