"""CLI tests: every subcommand runs and prints its headline."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig4", "fig5b", "fig6",
                        "table1", "sec3", "sec46", "audit",
                        "controlplane"):
            args = parser.parse_args([command] + (
                ["--trials", "1"] if command == "fig5b" else []
            ))
            assert args.command == command

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9000"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "regenerable" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cookies" in out and "diffserv" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "unique_preference_fraction" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out and "Music Freedom" in out

    def test_sec3(self, capsys):
        assert main(["sec3"]) == 0
        assert "255 flows" in capsys.readouterr().out

    def test_sec46_quick(self, capsys):
        assert main(["sec46", "--scale", "0.0001"]) == 0
        assert "sustainable_new_flows_per_s" in capsys.readouterr().out

    def test_fig5b_single_trial(self, capsys):
        assert main(["fig5b", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "boosted" in out and "throttled" in out

    def test_fig4_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        assert "Gbps" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "cnn.com" in out and "oob" in out


class TestAuditCommand:
    def test_audit_runs_clean_and_prints_table(self, capsys):
        assert main(["audit", "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "honest" in out
        assert "replay-honorer" in out
        assert "flagged" in out

    def test_audit_json_report(self, capsys):
        import json

        assert main(
            ["audit", "--trials", "8", "--personas", "revocation-ignorer",
             "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        personas = {v["persona"] for v in report["verdicts"]}
        assert personas == {"honest", "revocation-ignorer"}

    def test_audit_unknown_persona_errors(self):
        with pytest.raises(SystemExit):
            main(["audit", "--personas", "quantum-cheater"])


class TestStatsCommand:
    def test_stats_prints_merged_snapshot(self, capsys):
        assert main(["stats", "--flows", "60"]) == 0
        out = capsys.readouterr().out
        # One snapshot covering matcher, switch, and middlebox.
        assert "matcher.accepted" in out
        assert "switch.packets" in out
        assert "middlebox.packets_processed" in out
        assert "middlebox.tracked_flows" in out
        assert "workload.flow_packets" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "--flows", "40", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["switch.packets"] > 0
        assert snapshot["counters"]["middlebox.cookie_hits"] > 0
        assert snapshot["gauges"]["matcher.replay_cache.size"] >= 0

    def test_stats_audit_merges_auditor_telemetry(self, capsys):
        import json

        assert main(["stats", "--flows", "40", "--audit", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["audit.audits"] > 0
        assert snapshot["counters"]["audit.false_positives"] == 0
        assert snapshot["gauges"]["audit.ok"] == 1
        # The ordinary workload metrics ride in the same snapshot.
        assert snapshot["counters"]["switch.packets"] > 0

    def test_stats_workload_exercises_failure_paths(self):
        from repro.__main__ import run_stats_workload

        snapshot = run_stats_workload(flows=120)
        assert snapshot.counters["matcher.accepted"] > 0
        assert snapshot.counters["matcher.unknown_id"] > 0
        assert snapshot.counters["matcher.replayed"] > 0
        assert snapshot.counters["matcher.replay_cache.rotations"] > 0
        # Switch and middlebox verify independently but see the same mix.
        assert (snapshot.counters["matcher.accepted"]
                == snapshot.counters["middlebox.matcher.accepted"])


class TestControlPlaneCommands:
    def test_controlplane_prints_report(self, capsys):
        assert main(["controlplane", "--subscribers", "2000",
                     "--shards", "1", "--churn-events", "600",
                     "--open-loop-ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "baseline CookieServer" in out
        assert "1 shard(s)" in out
        assert "WITHIN BOUND" in out

    def test_controlplane_json(self, capsys):
        import json

        assert main(["controlplane", "--subscribers", "2000",
                     "--shards", "1", "--churn-events", "600",
                     "--open-loop-ops", "200", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["subscribers"] == 2000
        assert report["revocation"]["within_bound"]
        assert report["configs"][0]["closed_loop"]["ops_per_s"] > 0

    def test_stats_server_merges_controlplane_telemetry(self, capsys):
        import json

        assert main(["stats", "--flows", "40", "--server", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["cp.acquired"] == 25
        assert snapshot["counters"]["cp.revoked"] == 6
        assert snapshot["counters"]["cp.shed_pending"] == 1
        assert snapshot["gauges"]["cp.shards"] == 2
        assert "cp.broadcast_lag_s" in snapshot["histograms"]
        # Data-path telemetry still present alongside: one registry.
        assert any(k.startswith("switch.") or k.startswith("matcher.")
                   for k in snapshot["counters"])


class TestBillingCommand:
    def test_billing_runs_soak_and_drill(self, capsys):
        assert main(["billing"]) == 0
        out = capsys.readouterr().out
        assert "billing soak" in out
        assert "crash drill" in out
        # The per-operator invoice table names all three catalogs.
        for operator in ("op-cnn", "op-tube", "op-skai"):
            assert operator in out
        assert "VIOLATION" not in out

    def test_billing_json(self, capsys):
        import json

        assert main(["billing", "--skip-drill", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["operators"]) == 3
        for row in payload["operators"]:
            assert row["total_bytes"] == row["delivered_bytes"]

    def test_stats_billing_merges_accountant_telemetry(self, capsys):
        import json

        assert main(["stats", "--flows", "40", "--billing", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        counters = snapshot["counters"]
        assert counters["billing.packets_accounted"] > 0
        assert counters["billing.journal.records_appended"] > 0
        assert counters["billing.journal.corrupt_records"] == 0
        assert snapshot["gauges"]["billing.pending_bytes"] == 0
        # Data-path telemetry still present alongside: one registry.
        assert any(k.startswith("middlebox.") for k in counters)
