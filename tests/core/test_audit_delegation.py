"""Audit log and delegation tests: the accountability half of the tussle."""

import json

import pytest

from repro.core.audit import AuditEvent, AuditLog
from repro.core.attributes import CookieAttributes
from repro.core.delegation import DelegatedParty, delegate_descriptor, make_ack_cookie
from repro.core.descriptor import CookieDescriptor
from repro.core.errors import DelegationError
from repro.core.generator import CookieGenerator
from repro.core.matcher import CookieMatcher
from repro.core.store import DescriptorStore
from repro.netsim.appmsg import HTTPRequest
from repro.netsim.packet import make_tcp_packet


class TestAuditLog:
    def test_records_appended(self):
        log = AuditLog()
        log.record(1.0, AuditEvent.GRANTED, "alice", "Boost", cookie_id=7)
        assert len(log) == 1

    def test_queries(self):
        log = AuditLog()
        log.record(0.0, AuditEvent.REQUESTED, "alice", "Boost")
        log.record(1.0, AuditEvent.GRANTED, "alice", "Boost", cookie_id=7)
        log.record(2.0, AuditEvent.DENIED, "bob", "Boost")
        log.record(3.0, AuditEvent.GRANTED, "bob", "zero-rate", cookie_id=8)
        assert len(log.by_user("alice")) == 2
        assert len(log.by_service("Boost")) == 3
        assert len(log.grants()) == 2
        assert len(log.denials()) == 1

    def test_grant_latency(self):
        log = AuditLog()
        log.record(10.0, AuditEvent.REQUESTED, "soma.fm", "music-freedom")
        log.record(18.0 * 30 * 86400, AuditEvent.GRANTED, "soma.fm", "music-freedom")
        latency = log.grant_latency("soma.fm", "music-freedom")
        assert latency == pytest.approx(18.0 * 30 * 86400 - 10.0)

    def test_grant_latency_missing(self):
        log = AuditLog()
        assert log.grant_latency("nobody", "nothing") is None

    def test_regulator_report(self):
        log = AuditLog()
        log.record(0.0, AuditEvent.GRANTED, "alice", "Boost", cookie_id=1)
        log.record(1.0, AuditEvent.GRANTED, "bob", "Boost", cookie_id=2)
        log.record(2.0, AuditEvent.DENIED, "eve", "Boost")
        log.record(3.0, AuditEvent.REVOKED, "network", "Boost", cookie_id=1)
        report = log.regulator_report()
        boost = report["services"]["Boost"]
        assert boost["granted"] == 2
        assert boost["denied"] == 1
        assert boost["revoked"] == 1
        assert boost["grantees"] == ["alice", "bob"]

    def test_jsonl_export_parses(self):
        log = AuditLog()
        log.record(0.0, AuditEvent.GRANTED, "alice", "Boost", cookie_id=1, note="x")
        lines = log.to_jsonl().splitlines()
        assert json.loads(lines[0])["detail"]["note"] == "x"


class TestDelegation:
    def _shared_descriptor(self):
        return CookieDescriptor.create(
            service_data="Boost", attributes=CookieAttributes(shared=True)
        )

    def test_shared_descriptor_delegates(self):
        descriptor = self._shared_descriptor()
        log = AuditLog()
        result = delegate_descriptor(
            descriptor, "netflix", audit_log=log, now=5.0, by="alice"
        )
        assert result is descriptor
        delegations = log.by_event(AuditEvent.DELEGATED)
        assert delegations[0].detail["delegate"] == "netflix"

    def test_unshared_descriptor_refuses(self):
        descriptor = CookieDescriptor.create()
        with pytest.raises(DelegationError):
            delegate_descriptor(descriptor, "netflix")

    def test_revoked_descriptor_refuses(self):
        descriptor = self._shared_descriptor()
        descriptor.revoke()
        with pytest.raises(DelegationError):
            delegate_descriptor(descriptor, "netflix")

    def test_delegate_stamps_valid_downlink_cookies(self):
        store = DescriptorStore()
        descriptor = store.add(self._shared_descriptor())
        party = DelegatedParty("netflix", clock=lambda: 0.0)
        party.accept_delegation(delegate_descriptor(descriptor, "netflix"))
        packet = make_tcp_packet(
            "203.0.113.5", 443, "10.0.0.1", 5000, content=HTTPRequest(host="")
        )
        transport = party.stamp(packet, descriptor.cookie_id)
        assert transport is not None
        matcher = CookieMatcher(store)
        cookie, _carrier = party.registry.extract(packet)
        assert matcher.match(cookie, now=0.0) is not None

    def test_revocation_cuts_off_delegates(self):
        """Delegation hands over signing, not new key material: revoking
        the descriptor kills the delegate's cookies too."""
        store = DescriptorStore()
        descriptor = store.add(self._shared_descriptor())
        party = DelegatedParty("netflix", clock=lambda: 0.0)
        party.accept_delegation(descriptor)
        store.revoke(descriptor.cookie_id)
        matcher = CookieMatcher(store)
        from repro.core.errors import CookieError

        with pytest.raises(CookieError):
            party_generator = party._generators[descriptor.cookie_id]
            cookie = party_generator.generate()
            assert matcher.match(cookie, now=0.0) is None

    def test_party_refuses_unshared(self):
        party = DelegatedParty("netflix", clock=lambda: 0.0)
        with pytest.raises(DelegationError):
            party.accept_delegation(CookieDescriptor.create())

    def test_stamp_without_delegation_raises(self):
        party = DelegatedParty("netflix", clock=lambda: 0.0)
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        with pytest.raises(DelegationError):
            party.stamp(packet, 42)

    def test_holds(self):
        descriptor = self._shared_descriptor()
        party = DelegatedParty("netflix", clock=lambda: 0.0)
        assert not party.holds(descriptor.cookie_id)
        party.accept_delegation(descriptor)
        assert party.holds(descriptor.cookie_id)


class TestAckCookies:
    def test_playback_without_descriptor(self):
        descriptor = CookieDescriptor.create()
        original = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
        ack = make_ack_cookie(original, None, clock=lambda: 1.0)
        assert ack == original

    def test_fresh_ack_from_descriptor(self):
        store = DescriptorStore()
        descriptor = store.add(
            CookieDescriptor.create(attributes=CookieAttributes(shared=True))
        )
        original = CookieGenerator(descriptor, clock=lambda: 0.0).generate()
        ack = make_ack_cookie(original, descriptor, clock=lambda: 1.0)
        assert ack != original
        # A fresh ack passes verification even after the original was used.
        matcher = CookieMatcher(store)
        assert matcher.match(original, now=1.0) is not None
        assert matcher.match(ack, now=1.0) is not None
