"""Protocol header models for the packet substrate.

Each header is a small dataclass with a byte-accurate ``wire_length`` and a
``pack``/``unpack`` pair so that throughput benchmarks account for real wire
sizes and parsers can be exercised against real byte strings.  The models are
deliberately minimal: they carry the fields the paper's mechanisms need
(addresses, ports, DSCP bits, TCP options, IPv6 extension headers, TLS SNI)
and nothing more.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from functools import lru_cache

__all__ = [
    "EtherType",
    "IPProto",
    "EthernetHeader",
    "IPv4Header",
    "IPv6ExtensionHeader",
    "IPv6Header",
    "TCPOption",
    "TCPHeader",
    "UDPHeader",
    "DSCP_MAX",
    "HeaderError",
]

DSCP_MAX = 63  # DiffServ code points use 6 bits: 0..63.


class HeaderError(ValueError):
    """Raised when a header is malformed or cannot be parsed."""


class EtherType(IntEnum):
    """EtherType values used by the simulator."""

    IPV4 = 0x0800
    IPV6 = 0x86DD
    ARP = 0x0806


class IPProto(IntEnum):
    """IP protocol numbers used by the simulator."""

    TCP = 6
    UDP = 17
    # IPv6 extension header "Destination Options"; used to carry cookies.
    IPV6_DEST_OPTS = 60


@dataclass(slots=True)
class EthernetHeader:
    """Ethernet II header (14 bytes on the wire)."""

    src_mac: str = "00:00:00:00:00:00"
    dst_mac: str = "ff:ff:ff:ff:ff:ff"
    ethertype: int = EtherType.IPV4

    WIRE_LENGTH = 14

    @property
    def wire_length(self) -> int:
        return self.WIRE_LENGTH

    def pack(self) -> bytes:
        return _packed_ethernet(self.dst_mac, self.src_mac, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.WIRE_LENGTH:
            raise HeaderError("truncated Ethernet header")
        dst = _bytes_to_mac(data[0:6])
        src = _bytes_to_mac(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(src_mac=src, dst_mac=dst, ethertype=ethertype)


@dataclass(slots=True)
class IPv4Header:
    """IPv4 header without options (20 bytes).

    ``dscp`` models the 6 DiffServ bits; ``ecn`` the remaining 2 bits of the
    legacy TOS octet.  ``total_length`` covers the IP header plus payload, as
    on the wire.
    """

    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    proto: int = IPProto.TCP
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    total_length: int = 20
    ident: int = 0

    WIRE_LENGTH = 20

    def __post_init__(self) -> None:
        if not 0 <= self.dscp <= DSCP_MAX:
            raise HeaderError(f"DSCP {self.dscp} out of range 0..{DSCP_MAX}")
        if not 0 <= self.ecn <= 3:
            raise HeaderError(f"ECN {self.ecn} out of range 0..3")

    @property
    def wire_length(self) -> int:
        return self.WIRE_LENGTH

    @property
    def tos(self) -> int:
        """The legacy TOS octet: DSCP in the high 6 bits, ECN in the low 2."""
        return (self.dscp << 2) | self.ecn

    def pack(self) -> bytes:
        return _packed_ipv4(
            self.src,
            self.dst,
            self.proto,
            self.ttl,
            self.tos,
            self.total_length,
            self.ident,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < cls.WIRE_LENGTH:
            raise HeaderError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            ident,
            _frag,
            ttl,
            proto,
            _csum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[: cls.WIRE_LENGTH])
        if version_ihl >> 4 != 4:
            raise HeaderError("not an IPv4 header")
        return cls(
            src=_bytes_to_ipv4(src),
            dst=_bytes_to_ipv4(dst),
            proto=proto,
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            total_length=total_length,
            ident=ident,
        )


@dataclass(slots=True)
class IPv6ExtensionHeader:
    """A generic IPv6 extension header carrying opaque option data.

    The paper proposes IPv6 extension headers as one transport for network
    cookies; :mod:`repro.core.transport.ipv6` uses this type with
    ``next_header`` chaining.  On the wire an extension header is
    ``8 * (hdr_ext_len + 1)`` bytes; we round the option data up to that
    boundary.
    """

    next_header: int = IPProto.TCP
    option_type: int = 0x1E  # experimental option type
    data: bytes = b""

    @property
    def wire_length(self) -> int:
        # next_header (1) + hdr_ext_len (1) + option type (1) + option len (1)
        raw = 4 + len(self.data)
        return ((raw + 7) // 8) * 8

    def pack(self) -> bytes:
        raw = 4 + len(self.data)
        padded = ((raw + 7) // 8) * 8
        ext_len = padded // 8 - 1
        if len(self.data) > 255:
            raise HeaderError("IPv6 option data exceeds 255 bytes")
        body = struct.pack(
            "!BBBB", self.next_header, ext_len, self.option_type, len(self.data)
        ) + self.data
        return body + b"\x00" * (padded - raw)

    @classmethod
    def unpack(cls, data: bytes) -> "IPv6ExtensionHeader":
        if len(data) < 4:
            raise HeaderError("truncated IPv6 extension header")
        next_header, ext_len, option_type, option_len = struct.unpack(
            "!BBBB", data[:4]
        )
        total = (ext_len + 1) * 8
        if len(data) < total or option_len > total - 4:
            raise HeaderError("truncated IPv6 extension header body")
        return cls(
            next_header=next_header,
            option_type=option_type,
            data=data[4 : 4 + option_len],
        )


@dataclass(slots=True)
class IPv6Header:
    """IPv6 header (40 bytes) with an optional extension-header chain."""

    src: str = "::"
    dst: str = "::"
    next_header: int = IPProto.TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0
    extensions: list[IPv6ExtensionHeader] = field(default_factory=list)

    BASE_WIRE_LENGTH = 40

    @property
    def dscp(self) -> int:
        return self.traffic_class >> 2

    @dscp.setter
    def dscp(self, value: int) -> None:
        if not 0 <= value <= DSCP_MAX:
            raise HeaderError(f"DSCP {value} out of range 0..{DSCP_MAX}")
        self.traffic_class = (value << 2) | (self.traffic_class & 0x3)

    @property
    def wire_length(self) -> int:
        return self.BASE_WIRE_LENGTH + sum(e.wire_length for e in self.extensions)


@dataclass(slots=True)
class TCPOption:
    """A single TCP option as (kind, data).

    Kind 253/254 are the IETF experimental kinds; the paper's "TCP long
    options" cookie carrier uses an experimental kind.
    """

    kind: int
    data: bytes = b""

    @property
    def wire_length(self) -> int:
        if self.kind in (0, 1):  # EOL / NOP are single bytes
            return 1
        return 2 + len(self.data)

    def pack(self) -> bytes:
        return _packed_tcp_option(self.kind, self.data)


@dataclass(slots=True)
class TCPHeader:
    """TCP header (20 bytes + options, padded to 4-byte words)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    options: list[TCPOption] = field(default_factory=list)

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    BASE_WIRE_LENGTH = 20

    @property
    def wire_length(self) -> int:
        options = self.options
        if not options:
            return self.BASE_WIRE_LENGTH
        opts = sum(o.wire_length for o in options)
        return self.BASE_WIRE_LENGTH + ((opts + 3) // 4) * 4

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & self.FLAG_SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & self.FLAG_FIN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & self.FLAG_ACK)

    def find_option(self, kind: int) -> TCPOption | None:
        """Return the first option of ``kind``, or None."""
        for option in self.options:
            if option.kind == kind:
                return option
        return None


@dataclass(slots=True)
class UDPHeader:
    """UDP header (8 bytes)."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 8

    WIRE_LENGTH = 8

    @property
    def wire_length(self) -> int:
        return self.WIRE_LENGTH

    def pack(self) -> bytes:
        return _packed_udp(self.src_port, self.dst_port, self.length)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < cls.WIRE_LENGTH:
            raise HeaderError("truncated UDP header")
        src, dst, length, _csum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src, dst_port=dst, length=length)


# ----------------------------------------------------------------------
# Memoized serialization
#
# Headers are tiny value objects that repeat heavily inside one workload
# (the same src/dst pair serialized for every segment of a flow).  The
# packed wire image is a pure function of the field values, so an LRU
# over those values turns repeat serialization into a dict hit.  The
# caches are bounded; a miss simply pays the original struct.pack cost.
# ----------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _packed_ethernet(dst_mac: str, src_mac: str, ethertype: int) -> bytes:
    return (
        _mac_to_bytes(dst_mac)
        + _mac_to_bytes(src_mac)
        + struct.pack("!H", ethertype)
    )


@lru_cache(maxsize=8192)
def _packed_ipv4(
    src: str,
    dst: str,
    proto: int,
    ttl: int,
    tos: int,
    total_length: int,
    ident: int,
) -> bytes:
    version_ihl = (4 << 4) | 5
    return struct.pack(
        "!BBHHHBBH4s4s",
        version_ihl,
        tos,
        total_length,
        ident,
        0,  # flags + fragment offset
        ttl,
        proto,
        0,  # checksum (not modelled)
        _ipv4_to_bytes(src),
        _ipv4_to_bytes(dst),
    )


@lru_cache(maxsize=4096)
def _packed_tcp_option(kind: int, data: bytes) -> bytes:
    if kind in (0, 1):
        return bytes([kind])
    length = 2 + len(data)
    if length > 255:
        raise HeaderError("TCP option too long")
    return bytes([kind, length]) + data


@lru_cache(maxsize=4096)
def _packed_udp(src_port: int, dst_port: int, length: int) -> bytes:
    return struct.pack("!HHHH", src_port, dst_port, length, 0)


def _mac_to_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise HeaderError(f"bad MAC address {mac!r}")
    try:
        return bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise HeaderError(f"bad MAC address {mac!r}") from exc


def _bytes_to_mac(data: bytes) -> str:
    return ":".join(f"{b:02x}" for b in data)


def _ipv4_to_bytes(addr: str) -> bytes:
    parts = addr.split(".")
    if len(parts) != 4:
        raise HeaderError(f"bad IPv4 address {addr!r}")
    try:
        values = [int(p) for p in parts]
    except ValueError as exc:
        raise HeaderError(f"bad IPv4 address {addr!r}") from exc
    if any(not 0 <= v <= 255 for v in values):
        raise HeaderError(f"bad IPv4 address {addr!r}")
    return bytes(values)


def _bytes_to_ipv4(data: bytes) -> str:
    return ".".join(str(b) for b in data)
