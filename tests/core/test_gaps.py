"""Gap-filling tests for paths the main suites don't reach."""

import asyncio

import pytest

from repro.core import (
    AcquisitionDenied,
    CookieServer,
    ServiceOffering,
    UserAgent,
)
from repro.core.netserver import AsyncCookieServer, request_over_tcp
from repro.trace.records import FlowRecord, flow_to_packets


def _with_live_server(sync_scenario):
    """Run the async cookie server in a live loop while ``sync_scenario``
    (which uses the blocking ``request_over_tcp`` helper) executes in a
    worker thread — the deployment shape the helper exists for."""

    async def harness():
        server = CookieServer(clock=lambda: 0.0)
        server.offer(ServiceOffering(name="Boost"))
        tcp = AsyncCookieServer(server)
        host, port = await tcp.start()
        try:
            return await asyncio.to_thread(sync_scenario, host, port)
        finally:
            await tcp.stop()

    return asyncio.run(harness())


class TestRequestOverTcpHelper:
    def test_one_shot_request(self):
        def scenario(host, port):
            return request_over_tcp(host, port, {"op": "list_services"})

        response = _with_live_server(scenario)
        assert response["ok"]
        assert response["services"][0]["name"] == "Boost"

    def test_as_user_agent_channel(self):
        def scenario(host, port):
            agent = UserAgent(
                "alice",
                clock=lambda: 0.0,
                channel=lambda req: request_over_tcp(host, port, req),
            )
            return agent.acquire("Boost")

        descriptor = _with_live_server(scenario)
        assert descriptor.service_data == "Boost"


class TestOfferingDetails:
    def test_extra_fields_advertised(self):
        server = CookieServer(clock=lambda: 0.0)
        server.offer(
            ServiceOffering(name="Boost", extra={"price_per_hour": 0.50})
        )
        assert server.list_services()[0]["price_per_hour"] == 0.50

    def test_none_lifetime_never_expires(self):
        server = CookieServer(clock=lambda: 0.0)
        server.offer(ServiceOffering(name="forever", lifetime=None))
        descriptor = server.acquire("u", "forever")
        assert descriptor.attributes.expires_at is None

    def test_service_data_defaults_to_name(self):
        server = CookieServer(clock=lambda: 0.0)
        server.offer(ServiceOffering(name="Boost"))
        assert server.acquire("u", "Boost").service_data == "Boost"


class TestAgentDiscoveryFailure:
    def test_failed_discovery_raises(self):
        agent = UserAgent(
            "alice",
            clock=lambda: 0.0,
            channel=lambda req: {"ok": False, "error": "down for maintenance"},
        )
        with pytest.raises(AcquisitionDenied):
            agent.discover_services()


class TestFlowExpansionEdges:
    def _record(self, packets=10):
        return FlowRecord(
            start_time=0.0, client_ip="10.0.0.1", client_port=1,
            server_ip="2.2.2.2", server_port=443, packets=packets,
        )

    def test_all_downlink(self):
        packets = list(flow_to_packets(self._record(), downlink_fraction=1.0))
        downlink = [p for p in packets if p.src_ip == "2.2.2.2"]
        assert len(downlink) == 9  # everything after the request

    def test_all_uplink(self):
        packets = list(flow_to_packets(self._record(), downlink_fraction=0.0))
        assert all(p.src_ip == "10.0.0.1" for p in packets)

    def test_single_packet_flow(self):
        packets = list(flow_to_packets(self._record(packets=1)))
        assert len(packets) == 1


class TestWmmConstants:
    def test_access_category_tuple(self):
        from repro.netsim import WMM_ACCESS_CATEGORIES
        from repro.netsim.queues import WMMScheduler

        assert set(WMM_ACCESS_CATEGORIES) == set(WMMScheduler.DEFAULT_WEIGHTS)
        # Priority ordering of the weights themselves.
        weights = WMMScheduler.DEFAULT_WEIGHTS
        assert weights["voice"] > weights["video"] > weights["best_effort"]
        assert weights["best_effort"] > weights["background"]
