"""Analysis helpers: empirical CDFs and heavy-tail metrics."""

from .cdf import EmpiricalCDF
from .export import (
    cdf_to_csv,
    counts_to_csv,
    figure_bundle_to_json,
    series_to_csv,
)
from .tails import (
    coverage_curve,
    head_coverage,
    is_heavy_tailed,
    uniqueness_fraction,
)

__all__ = [
    "EmpiricalCDF",
    "cdf_to_csv",
    "counts_to_csv",
    "figure_bundle_to_json",
    "series_to_csv",
    "coverage_curve",
    "head_coverage",
    "is_heavy_tailed",
    "uniqueness_fraction",
]
