"""Link-condition scenario lab: cookies across cable, LTE, and satellite.

The paper evaluates Boost and zero-rating on one link shape — a 6 Mb/s
residential downlink with ~10 ms of propagation delay.  The mechanisms'
claims, however, are *link-independent*: boost should still shorten
completion times on a 2 Mb/s DSL line, zero-rating accounting should
stay honest when the path drops packets, and the cookie's 5 s network
coherency time (NCT) must still admit a cookie that crossed a
geostationary-satellite hop.  This lab checks those claims across a
rate × latency × loss grid spanning three canonical profiles:

==========  ==================  ==========================
profile     one-way latency     exemplar
==========  ==================  ==========================
cable       < 20 ms             DOCSIS / fibre last mile
lte         20 – 80 ms          cellular with HARQ jitter
satellite   > 80 ms             GEO bent-pipe (~280 ms)
==========  ==================  ==========================

Per cell the lab runs four scenarios, each through the full netsim
machinery (HomeNetwork, TokenBucket throttle, FaultInjector loss,
CookieMatcher verification):

a. **Boost FCT gain** — a measured download with and without the fast
   lane, against elastic background traffic; gain = baseline / boosted.
b. **Zero-rating accounting accuracy** — cookied flows through a
   :class:`~repro.services.zerorate.ZeroRatingMiddlebox` with loss both
   before the box (cookies vanish → flows wrongly charged) and after it
   (counted bytes never delivered).  Accuracy compares delivered free
   bytes with counted free bytes.
c. **Cookie renewal under NCT** — clients deliver cookies over the lossy
   link with exponential-backoff retries.  A client that *renews* (mints
   a fresh cookie per attempt) is compared against one that retransmits
   the original cookie bytes; the stale copy ages past the NCT=5 s
   window while backoff grows, and satellite latency eats the margin.
d. **Competing-traffic fairness** — one boosted and one best-effort
   transfer sharing the downlink while the throttle is active; reports
   the throughput ratio and the Jain fairness index (the paper's §6
   "boost is deliberately unfair while active" trade-off, quantified).

The grid is evaluated by :class:`repro.core.sweep.SweepExecutor`; every
cell's seed derives from the campaign seed and the cell's labels, so the
merged report is bit-identical no matter how many worker processes ran
it (``LinklabReport.payload()`` is the deterministic surface; sweep
execution stats ride alongside, excluded from the contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
import random

from ..core import CookieDescriptor, CookieGenerator, CookieMatcher, DescriptorStore
from ..core.matcher import NETWORK_COHERENCY_TIME
from ..core.seeding import derive_seed
from ..core.sweep import SweepCell, SweepStats, run_sweep
from ..core.transport import default_registry
from ..netsim.events import EventLoop
from ..netsim.faults import FaultInjector, FaultPlan
from ..netsim.links import Link
from ..netsim.middlebox import FunctionElement, Sink
from ..netsim.packet import make_tcp_packet
from ..netsim.tcpmodel import TcpTransfer
from ..netsim.topology import (
    DEFAULT_CLASS,
    FAST_LANE_CLASS,
    HomeNetwork,
    HomeNetworkConfig,
)
from ..services.zerorate import ZeroRatingMiddlebox

__all__ = [
    "DEFAULT_RATES_MBPS",
    "DEFAULT_LATENCIES_S",
    "DEFAULT_LOSS_RATES",
    "LinklabReport",
    "link_profile",
    "run_cell",
    "run_linklab",
]

#: Downlink rates: DSL, the paper's cable scenario, mid fibre, fast fibre.
DEFAULT_RATES_MBPS = (2.0, 6.0, 12.0, 20.0)
#: One-way propagation delays spanning the three profiles (satellite x2
#: brackets the GEO bent-pipe spread).
DEFAULT_LATENCIES_S = (0.005, 0.035, 0.12, 0.28)
#: Loss rates: clean, noticeable, bad-wireless.
DEFAULT_LOSS_RATES = (0.0, 0.005, 0.02)

MEASURED_FLOW_BYTES = 150_000
FCT_TIMEOUT_S = 30.0
#: FCT trials per arm: a short flow's completion time is loss-sensitive
#: (one unlucky drop costs an RTO), so each arm reports a median of 3.
FCT_TRIALS = 3
FAIRNESS_WINDOW_S = 6.0
#: Retry backoff for the renewal scenario: attempt ``k`` fires at
#: ``(2**k - 1) * RENEWAL_BACKOFF_UNIT_S`` — 0, 0.8, 2.4, 5.6, 12 s.  The
#: third retry crosses the NCT=5 s window, which is exactly the regime
#: where renewing beats retransmitting the original cookie bytes.
RENEWAL_BACKOFF_UNIT_S = 0.8
RENEWAL_ATTEMPTS = 5
RENEWAL_FLOWS = 8


def link_profile(latency_s: float) -> str:
    """Classify a one-way latency into cable / lte / satellite."""
    if latency_s < 0.02:
        return "cable"
    if latency_s < 0.08:
        return "lte"
    return "satellite"


# ----------------------------------------------------------------------
# Scenario (a): Boost FCT gain
# ----------------------------------------------------------------------
def _run_fct(rate_bps: float, latency_s: float, loss: float, seed: int,
             boosted: bool) -> float:
    loop = EventLoop()
    injector = FaultInjector(FaultPlan(drop_rate=loss, seed=seed))
    home = HomeNetwork(
        loop,
        config=HomeNetworkConfig(
            downlink_bps=rate_bps,
            propagation_delay=latency_s,
            throttle_bps=rate_bps / 6.0,
        ),
        middleboxes=[injector],
    )
    rng = random.Random(seed)
    for i in range(2):
        bulk = TcpTransfer(
            loop,
            home.wan_ingress,
            size_bytes=50_000_000,  # outlives the trial
            src_ip=f"203.0.113.{30 + i}",
            dst_ip="192.168.1.101",
            dst_port=41_000 + i,
            ack_delay=latency_s,
        )
        loop.schedule(rng.uniform(0.0, 0.3), bulk.start)
    if boosted:
        home.activate_throttle()
    loop.run(until=1.0)  # let the background build queue state
    transfer = TcpTransfer(
        loop,
        home.wan_ingress,
        size_bytes=MEASURED_FLOW_BYTES,
        dst_ip="192.168.1.100",
        ack_delay=latency_s,
        qos_class=FAST_LANE_CLASS if boosted else None,
    )
    transfer.start()
    deadline = 1.0 + FCT_TIMEOUT_S
    while not transfer.completed and loop.now < deadline:
        loop.run(until=min(loop.now + 1.0, deadline))
    if not transfer.completed:
        return FCT_TIMEOUT_S
    return transfer.completion_time or FCT_TIMEOUT_S


# ----------------------------------------------------------------------
# Scenario (b): zero-rating accounting accuracy
# ----------------------------------------------------------------------
def _run_accounting(rate_bps: float, latency_s: float, loss: float,
                    seed: int) -> dict:
    del rate_bps, latency_s  # accounting is loss-driven, not rate-driven
    clock_now = 0.0
    clock = lambda: clock_now  # noqa: E731
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    transports = default_registry()
    middlebox = ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
    pre = FaultInjector(FaultPlan(drop_rate=loss, seed=seed),
                        name="pre-loss")
    post = FaultInjector(FaultPlan(drop_rate=loss, seed=seed + 1),
                         name="post-loss")
    delivered = {"free": 0, "total": 0}

    def count(packet):
        delivered["total"] += packet.wire_length
        if packet.meta.get("zero_rated"):
            delivered["free"] += packet.wire_length
        return packet

    pre >> middlebox >> post >> FunctionElement(count, name="delivered")

    flows, packets_per_flow = 6, 25
    for i in range(flows):
        clock_now = i * 0.2
        subscriber = f"192.168.1.{100 + i}"
        sport = 30_000 + i
        first = make_tcp_packet("93.184.216.34", 443, subscriber, sport,
                                payload_size=200)
        cookie = CookieGenerator(descriptor, clock).generate()
        transports.attach(first, cookie)
        pre.push(first)
        for _ in range(packets_per_flow - 1):
            pre.push(make_tcp_packet("93.184.216.34", 443, subscriber,
                                     sport, payload_size=1200))

    counted_free = sum(c.free_bytes for c in middlebox.counters.values())
    counted_total = sum(c.total_bytes for c in middlebox.counters.values())
    accuracy = (delivered["free"] / counted_free) if counted_free else 1.0
    return {
        "counted_free_bytes": counted_free,
        "counted_total_bytes": counted_total,
        "delivered_free_bytes": delivered["free"],
        "accuracy": round(accuracy, 4),
        "free_flows": middlebox.cookie_hits,
        "flows": flows,
    }


# ----------------------------------------------------------------------
# Scenario (c): cookie renewal under the NCT window
# ----------------------------------------------------------------------
def _run_renewal(rate_bps: float, latency_s: float, loss: float,
                 seed: int) -> dict:
    """Deliver cookies over the lossy link under two retry policies.

    Flow ``i`` is forced to start at retry attempt ``i % 4`` (modeling
    ``i % 4`` earlier attempts lost), so the backoff ladder is exercised
    deterministically rather than waiting for rare loss streaks; random
    loss applies on top.  ``renew`` mints a fresh cookie per attempt;
    ``retransmit`` resends the bytes minted at flow start, which age
    against the NCT while the backoff grows.
    """
    results: dict[str, dict] = {}
    for policy_index, policy in enumerate(("renew", "retransmit")):
        loop = EventLoop()
        store = DescriptorStore()
        descriptor = store.add(
            CookieDescriptor.create(service_data="boost")
        )
        matcher = CookieMatcher(store, nct=NETWORK_COHERENCY_TIME)
        transports = default_registry()
        injector = FaultInjector(
            FaultPlan(drop_rate=loss, seed=seed * 2 + policy_index)
        )
        link = Link(loop, rate_bps=rate_bps, delay=latency_s)
        succeeded: dict[int, float] = {}  # flow -> NCT margin at accept
        attempts_sent = {"n": 0}

        def verify(packet):
            found = transports.extract(packet)
            if found is None:
                return packet
            cookie = found[0]
            flow = packet.meta["renewal_flow"]
            if flow in succeeded:
                return packet
            if matcher.match(cookie, loop.now) is not None:
                succeeded[flow] = NETWORK_COHERENCY_TIME - (
                    loop.now - cookie.timestamp
                )
            return packet

        injector >> link >> FunctionElement(verify, name="verifier")

        clock = lambda: loop.now  # noqa: E731
        generator = CookieGenerator(descriptor, clock)
        for flow in range(RENEWAL_FLOWS):
            start_attempt = flow % 4
            # The flow-start cookie is minted at t=0 (all flows start
            # together): flows forced to begin at a later attempt model
            # "my earlier transmissions were lost", so their retransmit
            # copy carries the original, already-aging timestamp.
            state: dict = {"cookie": generator.generate()}

            def make_attempt(flow: int, state: dict):
                def fire():
                    if flow in succeeded:
                        return
                    attempts_sent["n"] += 1
                    if policy == "renew":
                        cookie = generator.generate()
                    else:
                        cookie = state["cookie"]
                    packet = make_tcp_packet(
                        "10.0.0.2", 40_000 + flow, "198.51.100.9", 443,
                        payload_size=120,
                    )
                    packet.meta["renewal_flow"] = flow
                    transports.attach(packet, cookie)
                    injector.push(packet)
                return fire

            fire = make_attempt(flow, state)
            for k in range(start_attempt, RENEWAL_ATTEMPTS):
                loop.schedule(
                    (2**k - 1) * RENEWAL_BACKOFF_UNIT_S, fire
                )
        loop.run(until=30.0)
        margins = sorted(succeeded.values())
        results[policy] = {
            "success_rate": round(len(succeeded) / RENEWAL_FLOWS, 4),
            "attempts": attempts_sent["n"],
            "min_nct_margin_s": (
                round(margins[0], 4) if margins else None
            ),
        }
    return {
        "renew": results["renew"],
        "retransmit": results["retransmit"],
        "nct_s": NETWORK_COHERENCY_TIME,
    }


# ----------------------------------------------------------------------
# Scenario (d): competing-traffic fairness
# ----------------------------------------------------------------------
def _run_fairness(rate_bps: float, latency_s: float, loss: float,
                  seed: int) -> dict:
    loop = EventLoop()
    injector = FaultInjector(FaultPlan(drop_rate=loss, seed=seed + 7))
    home = HomeNetwork(
        loop,
        config=HomeNetworkConfig(
            downlink_bps=rate_bps,
            propagation_delay=latency_s,
            throttle_bps=rate_bps / 6.0,
        ),
        middleboxes=[injector],
    )
    home.activate_throttle()
    transfers = {}
    for name, qos in (("boosted", FAST_LANE_CLASS),
                      ("best_effort", DEFAULT_CLASS)):
        transfers[name] = TcpTransfer(
            loop,
            home.wan_ingress,
            size_bytes=50_000_000,
            src_ip=f"203.0.113.{50 + qos}",
            dst_ip="192.168.1.100",
            dst_port=42_000 + qos,
            ack_delay=latency_s,
            qos_class=qos,
        )
        transfers[name].start()
    loop.run(until=FAIRNESS_WINDOW_S)
    goodput = {
        name: transfer.state.highest_acked * transfer.mss * 8.0
        / FAIRNESS_WINDOW_S
        for name, transfer in transfers.items()
    }
    x = [goodput["boosted"], goodput["best_effort"]]
    total_sq = (x[0] + x[1]) ** 2
    jain = total_sq / (2 * (x[0] ** 2 + x[1] ** 2)) if any(x) else 1.0
    ratio = (x[0] / x[1]) if x[1] else float("inf")
    return {
        "boosted_bps": round(x[0], 1),
        "best_effort_bps": round(x[1], 1),
        "throughput_ratio": round(ratio, 3) if ratio != float("inf") else None,
        "jain_index": round(jain, 4),
    }


# ----------------------------------------------------------------------
# The cell function (sweep unit) and the campaign driver
# ----------------------------------------------------------------------
def run_cell(params: dict, seed: int) -> dict:
    """One grid cell: all four scenarios at (rate, latency, loss).

    Module-level and deterministic in ``(params, seed)`` — the shape
    :class:`~repro.core.sweep.SweepExecutor` requires.
    """
    rate_mbps = params["rate_mbps"]
    latency_s = params["latency_s"]
    loss = params["loss"]
    rate_bps = rate_mbps * 1_000_000.0
    # Scenario sub-seeds stay well separated without burning entropy on
    # another hash round: the cell seed is already label-derived.
    def median_fct(boosted: bool) -> float:
        samples = sorted(
            _run_fct(
                rate_bps, latency_s, loss,
                derive_seed(seed, "fct", trial), boosted=boosted,
            )
            for trial in range(FCT_TRIALS)
        )
        return samples[len(samples) // 2]

    baseline_fct = median_fct(boosted=False)
    boosted_fct = median_fct(boosted=True)
    return {
        "rate_mbps": rate_mbps,
        "latency_ms": round(latency_s * 1000.0, 3),
        "loss": loss,
        "profile": link_profile(latency_s),
        "fct": {
            "baseline_s": round(baseline_fct, 4),
            "boosted_s": round(boosted_fct, 4),
            "gain": round(baseline_fct / boosted_fct, 4)
            if boosted_fct else None,
        },
        "accounting": _run_accounting(rate_bps, latency_s, loss, seed),
        "renewal": _run_renewal(rate_bps, latency_s, loss, seed),
        "fairness": _run_fairness(rate_bps, latency_s, loss, seed),
    }


@dataclass
class LinklabReport:
    """The campaign's merged result.

    :meth:`payload` is the deterministic surface — bit-identical for a
    given (grid, campaign_seed) across worker counts.  ``sweep_stats``
    describes how this particular run executed (worker count, crash
    re-dispatches) and is deliberately outside the payload.
    """

    campaign_seed: int
    rates_mbps: tuple[float, ...]
    latencies_s: tuple[float, ...]
    loss_rates: tuple[float, ...]
    cells: list[dict] = field(default_factory=list)
    sweep_stats: SweepStats = field(default_factory=SweepStats)

    def heatmaps(self) -> dict[str, list[dict]]:
        """Flat per-metric heatmap rows (rate, latency, loss, value)."""
        maps: dict[str, list[dict]] = {
            "boost_fct_gain": [],
            "accounting_accuracy": [],
            "renewal_success": [],
            "fairness_jain": [],
        }
        for cell in self.cells:
            key = {
                "rate_mbps": cell["rate_mbps"],
                "latency_ms": cell["latency_ms"],
                "loss": cell["loss"],
                "profile": cell["profile"],
            }
            maps["boost_fct_gain"].append(
                {**key, "value": cell["fct"]["gain"]}
            )
            maps["accounting_accuracy"].append(
                {**key, "value": cell["accounting"]["accuracy"]}
            )
            maps["renewal_success"].append(
                {**key, "value": cell["renewal"]["renew"]["success_rate"]}
            )
            maps["fairness_jain"].append(
                {**key, "value": cell["fairness"]["jain_index"]}
            )
        return maps

    def payload(self) -> dict:
        """The deterministic report body (excludes execution stats)."""
        return {
            "campaign_seed": self.campaign_seed,
            "grid": {
                "rates_mbps": list(self.rates_mbps),
                "latencies_s": list(self.latencies_s),
                "loss_rates": list(self.loss_rates),
            },
            "cells": self.cells,
            "heatmaps": self.heatmaps(),
        }

    def to_json(self, include_sweep: bool = False, indent: int = 2) -> str:
        body = self.payload()
        if include_sweep:
            body["sweep"] = self.sweep_stats.as_dict()
        return json.dumps(body, indent=indent, sort_keys=True)

    def summary(self) -> dict[str, float]:
        gains = [c["fct"]["gain"] for c in self.cells if c["fct"]["gain"]]
        accuracy = [c["accounting"]["accuracy"] for c in self.cells]
        renew = [c["renewal"]["renew"]["success_rate"] for c in self.cells]
        stale = [
            c["renewal"]["retransmit"]["success_rate"] for c in self.cells
        ]
        return {
            "cells": len(self.cells),
            "median_boost_gain": round(sorted(gains)[len(gains) // 2], 3)
            if gains else 0.0,
            "min_accounting_accuracy": round(min(accuracy), 4)
            if accuracy else 0.0,
            "mean_renewal_success": round(sum(renew) / len(renew), 4)
            if renew else 0.0,
            "mean_retransmit_success": round(sum(stale) / len(stale), 4)
            if stale else 0.0,
        }


def run_linklab(
    rates_mbps: tuple[float, ...] = DEFAULT_RATES_MBPS,
    latencies_s: tuple[float, ...] = DEFAULT_LATENCIES_S,
    loss_rates: tuple[float, ...] = DEFAULT_LOSS_RATES,
    *,
    seed: int = 20160822,
    workers: int | None = None,
    telemetry=None,
) -> LinklabReport:
    """Sweep the full grid; ``workers=None`` sizes the pool to the box
    (in-process below 2 CPUs), ``workers=0`` forces in-process, any other
    value forces that pool size.  The report payload is identical in all
    three cases."""
    cells = [
        SweepCell(
            labels=("linklab", rate, latency, loss),
            params={"rate_mbps": rate, "latency_s": latency, "loss": loss},
        )
        for rate in rates_mbps
        for latency in latencies_s
        for loss in loss_rates
    ]
    results, stats = run_sweep(
        run_cell,
        cells,
        campaign_seed=seed,
        workers=workers,
        telemetry=telemetry,
    )
    return LinklabReport(
        campaign_seed=seed,
        rates_mbps=tuple(rates_mbps),
        latencies_s=tuple(latencies_s),
        loss_rates=tuple(loss_rates),
        cells=results,
        sweep_stats=stats,
    )


def format_linklab_report(report: LinklabReport) -> str:
    """Human-readable matrices: one row per rate, one column per latency,
    averaged over the loss axis."""
    lines: list[str] = []
    latencies = list(report.latencies_s)
    for metric, title in (
        ("boost_fct_gain", "Boost FCT gain (baseline / boosted)"),
        ("accounting_accuracy", "zero-rating accounting accuracy"),
        ("renewal_success", "cookie renewal success (NCT=5s)"),
        ("fairness_jain", "Jain index, boosted vs best-effort"),
    ):
        rows = report.heatmaps()[metric]
        lines.append(f"\n{title} — mean over loss axis")
        header = "rate\\owd " + "".join(
            f"{latency * 1000:>9.0f}ms" for latency in latencies
        )
        lines.append(header)
        for rate in report.rates_mbps:
            values = []
            for latency in latencies:
                cell_values = [
                    row["value"]
                    for row in rows
                    if row["rate_mbps"] == rate
                    and abs(row["latency_ms"] - latency * 1000.0) < 1e-6
                    and row["value"] is not None
                ]
                mean = (
                    sum(cell_values) / len(cell_values)
                    if cell_values else float("nan")
                )
                values.append(f"{mean:>11.3f}")
            lines.append(f"{rate:>6.1f}Mb" + "".join(values))
    return "\n".join(lines)
