"""AnyLink proxy tests: cookie-selected slow lanes."""

import pytest

from repro.core import CookieMatcher, DescriptorStore, UserAgent
from repro.core.transport import default_registry
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.events import EventLoop
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.anylink import (
    STANDARD_PROFILES,
    AnyLinkProxy,
    LinkProfile,
    make_anylink_server,
)


def _env():
    loop = EventLoop()
    server = make_anylink_server(clock=lambda: loop.now)
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    proxy = AnyLinkProxy(loop, CookieMatcher(store))
    sink = Sink()
    proxy >> sink
    agent = UserAgent("dev", clock=lambda: loop.now, channel=server.handle_request)
    return loop, server, proxy, sink, agent


def _request_packet(sport=5000):
    return make_tcp_packet(
        "10.0.0.1", sport, "93.184.216.34", 443,
        content=TLSClientHello(sni="app.example.com"), payload_size=200,
    )


def _data_packet(sport=5000, size=1200):
    return make_tcp_packet(
        "10.0.0.1", sport, "93.184.216.34", 443, payload_size=size, encrypted=True
    )


class TestServer:
    def test_offers_one_service_per_profile(self):
        loop = EventLoop()
        server = make_anylink_server(clock=lambda: loop.now)
        names = {s["name"] for s in server.list_services()}
        assert names == {f"anylink-{p}" for p in STANDARD_PROFILES}

    def test_service_data_is_profile_name(self):
        loop = EventLoop()
        server = make_anylink_server(clock=lambda: loop.now)
        descriptor = server.acquire("dev", "anylink-3g")
        assert descriptor.service_data == "3g"


class TestProxy:
    def test_cookied_flow_shaped(self):
        loop, _server, proxy, sink, agent = _env()
        packet = _request_packet()
        agent.insert_cookie(packet, "anylink-2g")
        proxy.push(packet)
        assert proxy.flows_bound == 1
        # Follow-up data rides the 2g shaper: 50 kb/s on ~1.2 KB packets.
        for _ in range(10):
            proxy.push(_data_packet())
        loop.run_until_idle()
        assert sink.count == 11
        assert all(
            p.meta.get("anylink_profile") == "2g" for p in sink.packets[1:]
        )
        # 10 x 1240-byte packets at 50 kb/s is meaningful virtual time.
        assert loop.now > 0.5

    def test_uncookied_flow_passes_at_full_speed(self):
        loop, _server, proxy, sink, _agent = _env()
        for _ in range(10):
            proxy.push(_data_packet(sport=6000))
        assert sink.count == 10
        assert loop.now == 0.0  # never touched a shaper

    def test_profiles_have_distinct_rates(self):
        def drain_time(profile):
            loop, _server, proxy, sink, agent = _env()
            packet = _request_packet()
            agent.insert_cookie(packet, f"anylink-{profile}")
            proxy.push(packet)
            for _ in range(20):
                proxy.push(_data_packet())
            loop.run_until_idle()
            return loop.now

        assert drain_time("2g") > drain_time("3g") * 2

    def test_unknown_profile_descriptor_ignored(self):
        loop, server, proxy, sink, _agent = _env()
        # Server-side descriptor whose service_data is not a profile.
        from repro.core import CookieDescriptor, CookieGenerator

        descriptor = CookieDescriptor.create(service_data="not-a-profile")
        proxy.matcher.store.add(descriptor)
        packet = _request_packet(sport=7000)
        cookie = CookieGenerator(descriptor, clock=lambda: loop.now).generate()
        default_registry().attach(packet, cookie)
        proxy.push(packet)
        assert proxy.flows_bound == 0
        assert sink.count == 1

    def test_rewire_updates_shapers(self):
        loop, _server, proxy, _old_sink, agent = _env()
        packet = _request_packet()
        agent.insert_cookie(packet, "anylink-dsl")
        proxy.push(packet)
        new_sink = Sink()
        proxy >> new_sink
        proxy.push(_data_packet())
        loop.run_until_idle()
        assert new_sink.count >= 1

    def test_custom_profiles(self):
        loop = EventLoop()
        profiles = {"lab": LinkProfile("lab", 2_000_000.0, "lab link")}
        server = make_anylink_server(clock=lambda: loop.now, profiles=profiles)
        assert server.list_services()[0]["name"] == "anylink-lab"

    def test_non_ip_passthrough(self):
        from repro.netsim.packet import Packet

        _loop, _server, proxy, sink, _agent = _env()
        proxy.push(Packet())
        assert sink.count == 1
