"""Differential tests: batched vs scalar data paths for the packet-level
elements — zero-rating middlebox, cookie switch, hardware prefilter.

Each test builds two identical element instances over one descriptor
store, feeds the scalar one with ``handle``/``push`` per packet and the
batched one with ``process_batch``/``push_batch`` over clones of the
same stream, and compares everything observable: emitted packets and
their metadata, per-IP byte counters, flow-table state and LRU order,
eviction/resolution counters, and telemetry snapshots.  Hypothesis
drives adversarial traffic: interleaved flows with valid, malformed, and
absent cookies, mixed free/charged subscribers, tiny state caps, and
idle gaps between bursts.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    DescriptorStore,
)
from repro.core.cookie import Cookie
from repro.core.offload import HardwarePrefilter
from repro.core.switch import CookieSwitch
from repro.core.transport import default_registry
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.zerorate import ZeroRatingMiddlebox
from repro.telemetry import MetricsRegistry

COOKIE_KINDS = ("valid", "bad_sig", "none")
SUBSCRIBERS = ("10.0.0.1", "10.0.0.2", "10.0.1.9")


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def _store():
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    return store, descriptor


def _flow_packets(descriptor, clock, flow_index, cookie_kind, count):
    """One flow: a cookied (or not) TLS hello plus reverse-path data."""
    subscriber = SUBSCRIBERS[flow_index % len(SUBSCRIBERS)]
    sport = 5000 + flow_index
    first = make_tcp_packet(
        subscriber, sport, "93.184.216.34", 443,
        content=TLSClientHello(sni="app.example.com"), payload_size=200,
    )
    if cookie_kind != "none":
        cookie = CookieGenerator(descriptor, clock).generate()
        if cookie_kind == "bad_sig":
            cookie = Cookie(
                cookie_id=cookie.cookie_id,
                uuid=cookie.uuid,
                timestamp=cookie.timestamp,
                signature=bytes([cookie.signature[0] ^ 0xFF])
                + cookie.signature[1:],
            )
        default_registry().attach(first, cookie)
    packets = [first]
    for _ in range(count - 1):
        packets.append(
            make_tcp_packet(
                "93.184.216.34", 443, subscriber, sport,
                payload_size=1200, encrypted=True,
            )
        )
    return packets


@st.composite
def traffic(draw, max_flows=5, max_packets=6):
    """Flow plans plus an interleaving that preserves per-flow order."""
    plans = draw(
        st.lists(
            st.tuples(
                st.sampled_from(COOKIE_KINDS), st.integers(1, max_packets)
            ),
            min_size=1,
            max_size=max_flows,
        )
    )
    tokens = [
        flow_index
        for flow_index, (_, count) in enumerate(plans)
        for _ in range(count)
    ]
    order = draw(st.permutations(tokens))
    return plans, order


def _interleaved(descriptor, clock, plans, order):
    per_flow = [
        _flow_packets(descriptor, clock, i, kind, count)
        for i, (kind, count) in enumerate(plans)
    ]
    cursors = [0] * len(per_flow)
    stream = []
    for flow_index in order:
        stream.append(per_flow[flow_index][cursors[flow_index]])
        cursors[flow_index] += 1
    return stream


def _middlebox_observables(middlebox, sink):
    return {
        "outputs": [
            (packet.meta.get("zero_rated"), packet.wire_length)
            for packet in sink.packets
        ],
        "counters": {
            ip: (counters.free_bytes, counters.charged_bytes)
            for ip, counters in middlebox.counters.items()
        },
        "flow_order": list(middlebox._flows.keys()),
        "flow_state": [
            (state.zero_rated, state.packets_seen, state.resolved,
             state.subscriber_ip)
            for state in middlebox._flows.values()
        ],
        "stats": (
            middlebox.packets_processed,
            middlebox.cookie_hits,
            middlebox.cookie_misses,
            middlebox.flows_resolved,
            middlebox.flows_evicted_idle,
            middlebox.flows_evicted_cap,
            middlebox.subscribers_evicted,
        ),
    }


def _twin_middleboxes(store, **kwargs):
    pair = []
    for _ in range(2):
        clock = kwargs.pop("clock", None) or Clock()
        middlebox = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock, **kwargs
        )
        sink = Sink()
        middlebox >> sink
        pair.append((middlebox, sink, clock))
    return pair


def _run_middlebox_differential(plans, order, chunk=None, **kwargs):
    store, descriptor = _store()
    (scalar, scalar_sink, scalar_clock), (batched, batched_sink, _) = (
        _twin_middleboxes(store, **kwargs)
    )
    stream = _interleaved(descriptor, scalar_clock, plans, order)
    for packet in stream:
        scalar.handle(packet.clone())
    clones = [packet.clone() for packet in stream]
    if chunk:
        for start in range(0, len(clones), chunk):
            batched.process_batch(clones[start : start + chunk])
    else:
        batched.process_batch(clones)
    return (scalar, scalar_sink), (batched, batched_sink)


class TestMiddleboxDifferential:
    @settings(max_examples=50, deadline=None)
    @given(plan=traffic())
    def test_batch_equals_scalar(self, plan):
        plans, order = plan
        (scalar, scalar_sink), (batched, batched_sink) = (
            _run_middlebox_differential(plans, order)
        )
        assert _middlebox_observables(
            batched, batched_sink
        ) == _middlebox_observables(scalar, scalar_sink)

    @settings(max_examples=30, deadline=None)
    @given(plan=traffic(), chunk=st.integers(1, 7))
    def test_chunked_batches_equal_scalar(self, plan, chunk):
        plans, order = plan
        (scalar, scalar_sink), (batched, batched_sink) = (
            _run_middlebox_differential(plans, order, chunk=chunk)
        )
        assert _middlebox_observables(
            batched, batched_sink
        ) == _middlebox_observables(scalar, scalar_sink)

    @settings(max_examples=30, deadline=None)
    @given(plan=traffic())
    def test_telemetry_equals_scalar(self, plan):
        plans, order = plan
        (scalar, _), (batched, _) = _run_middlebox_differential(plans, order)
        scalar_registry, batched_registry = MetricsRegistry(), MetricsRegistry()
        scalar.register_telemetry(scalar_registry)
        batched.register_telemetry(batched_registry)
        scalar_snapshot = scalar_registry.snapshot()
        batched_snapshot = batched_registry.snapshot()
        assert batched_snapshot.counters == scalar_snapshot.counters
        assert batched_snapshot.gauges == scalar_snapshot.gauges

    @settings(max_examples=30, deadline=None)
    @given(plan=traffic(max_flows=5))
    def test_tiny_caps_evict_identically(self, plan):
        """Flow-cap and subscriber-cap evictions (and their callbacks)
        fire at the same points on both paths."""
        plans, order = plan
        store, descriptor = _store()
        clock = Clock()
        stream = _interleaved(descriptor, clock, plans, order)
        scalar_evicted, batched_evicted = [], []
        scalar = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock, max_flows=2, max_subscribers=2,
            on_subscriber_evicted=lambda ip, counters: scalar_evicted.append(
                (ip, counters.free_bytes, counters.charged_bytes)
            ),
        )
        batched = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock, max_flows=2, max_subscribers=2,
            on_subscriber_evicted=lambda ip, counters: batched_evicted.append(
                (ip, counters.free_bytes, counters.charged_bytes)
            ),
        )
        scalar_sink, batched_sink = Sink(), Sink()
        scalar >> scalar_sink
        batched >> batched_sink
        for packet in stream:
            scalar.handle(packet.clone())
        batched.process_batch([packet.clone() for packet in stream])
        assert batched_evicted == scalar_evicted
        assert _middlebox_observables(
            batched, batched_sink
        ) == _middlebox_observables(scalar, scalar_sink)

    def test_idle_timeout_between_batches(self):
        """Advancing the clock past the idle timeout between bursts
        evicts and re-creates flow state identically on both paths."""
        store, descriptor = _store()
        scalar_clock, batched_clock = Clock(), Clock()
        scalar = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=scalar_clock, flow_idle_timeout=10.0
        )
        batched = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=batched_clock, flow_idle_timeout=10.0
        )
        burst = _flow_packets(descriptor, scalar_clock, 0, "valid", 4)
        for clock, middlebox, feed in (
            (scalar_clock, scalar, "scalar"),
            (batched_clock, batched, "batched"),
        ):
            clock.now = 0.0
            first = [packet.clone() for packet in burst]
            second = [packet.clone() for packet in burst[1:]]
            if feed == "scalar":
                for packet in first:
                    middlebox.handle(packet)
                clock.now = 25.0
                for packet in second:
                    middlebox.handle(packet)
            else:
                middlebox.process_batch(first)
                clock.now = 25.0
                middlebox.process_batch(second)
        assert batched.flows_evicted_idle == scalar.flows_evicted_idle == 1
        assert _middlebox_observables(batched, Sink()) == (
            _middlebox_observables(scalar, Sink())
        )

    def test_resolution_callback_order_equal(self):
        store, descriptor = _store()
        clock = Clock()
        plans = [("valid", 4), ("none", 4), ("bad_sig", 4)]
        order = [0, 1, 2] * 4
        stream = _interleaved(descriptor, clock, plans, order)
        scalar_log, batched_log = [], []
        scalar = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock,
            on_flow_resolved=lambda key, state: scalar_log.append(
                (key, state.zero_rated)
            ),
        )
        batched = ZeroRatingMiddlebox(
            CookieMatcher(store), clock=clock,
            on_flow_resolved=lambda key, state: batched_log.append(
                (key, state.zero_rated)
            ),
        )
        for packet in stream:
            scalar.handle(packet.clone())
        batched.process_batch([packet.clone() for packet in stream])
        assert batched_log == scalar_log
        assert len(scalar_log) == 3

    def test_contiguous_run_uses_exact_wire_lengths(self):
        """The batched run-coalescing fast path must account the same
        byte totals the per-packet path does."""
        store, descriptor = _store()
        clock = Clock()
        stream = _flow_packets(descriptor, clock, 0, "valid", 50)
        scalar = ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
        batched = ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
        for packet in stream:
            scalar.handle(packet.clone())
        batched.process_batch([packet.clone() for packet in stream])
        subscriber = SUBSCRIBERS[0]
        expected_free = sum(packet.wire_length for packet in stream)
        assert scalar.counters_for(subscriber).free_bytes == expected_free
        assert batched.counters_for(subscriber).free_bytes == expected_free
        assert batched.counters_for(subscriber).charged_bytes == 0

    def test_mixed_free_and_charged_subscribers(self):
        store, descriptor = _store()
        clock = Clock()
        plans = [("valid", 5), ("none", 5)]
        order = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]
        stream = _interleaved(descriptor, clock, plans, order)
        scalar = ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
        batched = ZeroRatingMiddlebox(CookieMatcher(store), clock=clock)
        for packet in stream:
            scalar.handle(packet.clone())
        batched.process_batch([packet.clone() for packet in stream])
        for middlebox in (scalar, batched):
            free = middlebox.counters_for(SUBSCRIBERS[0])
            charged = middlebox.counters_for(SUBSCRIBERS[1])
            assert free.charged_bytes == 0 and free.free_bytes > 0
            assert charged.free_bytes == 0 and charged.charged_bytes > 0
        assert {
            ip: (c.free_bytes, c.charged_bytes)
            for ip, c in batched.counters.items()
        } == {
            ip: (c.free_bytes, c.charged_bytes)
            for ip, c in scalar.counters.items()
        }


def _switch_observables(switch, sink):
    return {
        "outputs": [
            (
                packet.meta.get("qos_class"),
                packet.meta.get("service"),
                packet.wire_length,
            )
            for packet in sink.packets
        ],
        "stats": (
            switch.stats.packets,
            switch.stats.packets_sniffed,
            switch.stats.cookies_found,
            switch.stats.cookies_accepted,
            switch.stats.cookies_rejected,
            switch.stats.flows_bound,
            switch.stats.packets_served,
        ),
        "matcher": switch.matcher.stats.as_dict(),
        "flows": len(switch.flows),
    }


class TestSwitchDifferential:
    @settings(max_examples=50, deadline=None)
    @given(plan=traffic())
    def test_batch_equals_scalar(self, plan):
        plans, order = plan
        store, descriptor = _store()
        clock = Clock()
        stream = _interleaved(descriptor, clock, plans, order)
        scalar = CookieSwitch(CookieMatcher(store), clock=clock)
        batched = CookieSwitch(CookieMatcher(store), clock=clock)
        scalar_sink, batched_sink = Sink(), Sink()
        scalar >> scalar_sink
        batched >> batched_sink
        for packet in stream:
            scalar.push(packet.clone())
        batched.push_batch([packet.clone() for packet in stream])
        assert _switch_observables(batched, batched_sink) == (
            _switch_observables(scalar, scalar_sink)
        )

    def test_binding_within_one_batch_serves_followups(self):
        """A cookie at the head of a batch binds the flow; later packets
        of the same flow *in the same batch* ride the binding — exactly
        as a sequential pass would."""
        store, descriptor = _store()
        clock = Clock()
        stream = _flow_packets(descriptor, clock, 0, "valid", 6)
        switch = CookieSwitch(CookieMatcher(store), clock=clock)
        sink = Sink()
        switch >> sink
        switch.push_batch([packet.clone() for packet in stream])
        assert switch.stats.flows_bound == 1
        assert switch.stats.packets_served == len(stream)
        assert all(
            packet.meta.get("service") == "zero-rate"
            for packet in sink.packets
        )

    @settings(max_examples=25, deadline=None)
    @given(plan=traffic(max_flows=3))
    def test_telemetry_equals_scalar(self, plan):
        plans, order = plan
        store, descriptor = _store()
        clock = Clock()
        stream = _interleaved(descriptor, clock, plans, order)
        scalar_registry, batched_registry = MetricsRegistry(), MetricsRegistry()
        scalar = CookieSwitch(
            CookieMatcher(store), clock=clock, telemetry=scalar_registry
        )
        batched = CookieSwitch(
            CookieMatcher(store), clock=clock, telemetry=batched_registry
        )
        for packet in stream:
            scalar.push(packet.clone())
        batched.push_batch([packet.clone() for packet in stream])
        scalar_snapshot = scalar_registry.snapshot()
        batched_snapshot = batched_registry.snapshot()
        assert batched_snapshot.counters == scalar_snapshot.counters
        assert batched_snapshot.gauges == scalar_snapshot.gauges


class TestPrefilterDifferential:
    def _env(self, store):
        prefilter = HardwarePrefilter(store, clock=lambda: 0.0)
        software, fast = Sink(), Sink()
        prefilter.software(software)
        prefilter.fast(fast)
        return prefilter, software, fast

    @settings(max_examples=50, deadline=None)
    @given(plan=traffic(max_flows=5, max_packets=3))
    def test_batch_partition_equals_scalar(self, plan):
        plans, order = plan
        store, descriptor = _store()
        clock = Clock()
        stream = _interleaved(descriptor, clock, plans, order)
        scalar, scalar_software, scalar_fast = self._env(store)
        batched, batched_software, batched_fast = self._env(store)
        for packet in stream:
            scalar.push(packet.clone())
        batched.push_batch([packet.clone() for packet in stream])
        registry = default_registry()
        def signature(sink):
            return [
                (packet.wire_length, registry.extract(packet) is not None)
                for packet in sink.packets
            ]
        assert signature(batched_software) == signature(scalar_software)
        assert signature(batched_fast) == signature(scalar_fast)
        assert batched.stats.packets == scalar.stats.packets == len(stream)

    def test_batch_preserves_per_path_order(self):
        """Within one batch, software-path packets stay in arrival order
        and fast-path packets stay in arrival order (the documented batch
        guarantee; cross-path interleaving is not promised)."""
        store, descriptor = _store()
        clock = Clock()
        cookied = _flow_packets(descriptor, clock, 0, "valid", 1)
        plain = [
            make_tcp_packet(
                "10.0.0.9", 7000 + i, "2.2.2.2", 443, payload_size=100 + i
            )
            for i in range(4)
        ]
        stream = [plain[0], cookied[0], plain[1], plain[2], plain[3]]
        prefilter, software, fast = self._env(store)
        prefilter.push_batch(stream)
        assert [p.wire_length for p in fast.packets] == [
            p.wire_length for p in plain
        ]
        assert len(software.packets) == 1
