"""Application message model tests: HTTP, TLS ClientHello visibility."""

from repro.netsim.appmsg import HTTPRequest, HTTPResponse, TLSClientHello, TLSRecord


class TestHTTPRequest:
    def test_case_insensitive_header_lookup(self):
        request = HTTPRequest(headers={"X-Network-Cookie": "abc"})
        assert request.header("x-network-cookie") == "abc"
        assert request.header("X-NETWORK-COOKIE") == "abc"

    def test_missing_header(self):
        assert HTTPRequest().header("nope") is None

    def test_set_header_replaces_case_variants(self):
        request = HTTPRequest(headers={"x-foo": "1"})
        request.set_header("X-Foo", "2")
        assert len(request.headers) == 1
        assert request.header("x-foo") == "2"

    def test_wire_size_grows_with_headers(self):
        bare = HTTPRequest(host="example.com")
        loaded = HTTPRequest(
            host="example.com", headers={"X-Network-Cookie": "A" * 64}
        )
        assert loaded.wire_size() > bare.wire_size()


class TestHTTPResponse:
    def test_header_roundtrip(self):
        response = HTTPResponse(status=200)
        response.set_header("Content-Type", "video/mp4")
        assert response.header("content-type") == "video/mp4"

    def test_set_replaces(self):
        response = HTTPResponse(headers={"x-a": "1"})
        response.set_header("X-A", "2")
        assert len(response.headers) == 1


class TestTLS:
    def test_client_hello_size_includes_extensions(self):
        bare = TLSClientHello(sni="example.com")
        extended = TLSClientHello(
            sni="example.com", extensions={0xFFCE: b"x" * 64}
        )
        assert extended.wire_size() == bare.wire_size() + 4 + 64

    def test_record_is_opaque(self):
        record = TLSRecord(size=1400)
        assert record.size == 1400
        assert not hasattr(record, "sni")
