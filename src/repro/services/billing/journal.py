"""Crash-safe write-ahead billing journal (PROTOCOL.md §16.2).

The middlebox's per-IP counters are RAM: a ``kill -9``, an LRU eviction,
or a replica swap would silently erase revenue data.  The journal is the
durability layer underneath them — an append-only, length-prefixed,
checksummed segment log that :class:`~repro.services.billing.accounting.
BillingAccountant` flushes counter deltas into *before* any eviction or
shutdown drops state.  It reuses the offset-addressed replay contract of
:mod:`repro.core.cp.deltalog` (dense monotonic offsets, compaction
horizon, idempotent replay) but puts the records on disk, because the
failure modes it must survive are physical:

- **SIGKILL mid-append** — the tail record may be torn (a prefix of the
  frame on disk).  Recovery truncates *at most* that one record; every
  fsync-acknowledged record before it survives byte-for-byte.
- **torn/partial write** — same contract, injectable deterministically
  through :class:`repro.netsim.faults.DiskFaultInjector`.
- **checksum corruption** — a record whose framing is intact but whose
  CRC fails is *quarantined* (counted, skipped), never a crash and
  never a reason to abort reconciliation.
- **disk full** — an append that cannot complete raises
  :class:`JournalFull` after restoring the segment to its pre-append
  length; the caller keeps the delta pending and retries.

Wire format (all integers big-endian)::

    segment   := header record*
    header    := magic "NNBJ1\\n" (6 B) | base_offset u64
    record    := payload_len u32 | crc32(payload) u32 | payload
    payload   := canonical JSON of BillingRecord (sorted keys)

Segments are named ``billing-<base_offset 12 digits>.seg``; rotation
starts a new segment once the active one exceeds ``max_segment_bytes``,
and :meth:`BillingJournal.compact_to` deletes whole segments below a
reconciled checkpoint.  Record identity (``record_id``) is derived via
:func:`repro.core.seeding.derive_seed` from the journal's stream seed,
source name, and offset — so replaying duplicated or overlapping
segments through :func:`repro.services.billing.reconcile.reconcile`
dedupes to exactly-once no matter how many times a segment is read.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ...core.seeding import derive_seed

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ...netsim.faults import DiskFaultInjector
    from ...telemetry import MetricsRegistry

__all__ = [
    "BillingJournal",
    "BillingRecord",
    "JournalFull",
    "JournalRecoveryStats",
    "SEGMENT_MAGIC",
    "record_identity",
]

SEGMENT_MAGIC = b"NNBJ1\n"
_HEADER = struct.Struct("!Q")
_FRAME = struct.Struct("!II")
HEADER_BYTES = len(SEGMENT_MAGIC) + _HEADER.size
FRAME_BYTES = _FRAME.size

#: Framing sanity bound: a length field above this is corruption, not a
#: record (the largest honest payload is a few hundred bytes of JSON).
MAX_RECORD_BYTES = 1 << 20

#: Default rotation threshold — small enough that soaks rotate for real.
DEFAULT_MAX_SEGMENT_BYTES = 64 * 1024

#: fsync policies: every append (crash-safe), on rotate/sync/close only,
#: or never (pure-simulation runs where the OS page cache is "disk").
FSYNC_POLICIES = ("always", "rotate", "never")


class JournalFull(OSError):
    """The append could not complete (disk full); the record was NOT
    written — the segment is restored to its pre-append length and the
    caller must keep the delta pending."""


def record_identity(stream_seed: int, source: str, offset: int) -> int:
    """The stable, globally-unique identity of one journal record.

    Two journals (e.g. the stateful and stateless middleboxes of one
    deployment) reconciled together can never collide as long as their
    ``source`` labels differ; re-reading the same segment twice yields
    the same ids, which is what makes replay idempotent.
    """
    return derive_seed(stream_seed, "billing", source, offset)


@dataclass(frozen=True)
class BillingRecord:
    """One journaled counter delta for (operator, subscriber, app, class).

    Exactly one of ``free_bytes`` / ``charged_bytes`` is normally
    non-zero (a byte class is either free or charged), but the codec
    carries both so reconciliation needs no catalog to split them.
    """

    offset: int
    record_id: int
    time: float
    operator: str
    subscriber: str
    app: str
    byte_class: str
    free_bytes: int = 0
    charged_bytes: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "offset": self.offset,
            "record_id": self.record_id,
            "time": self.time,
            "operator": self.operator,
            "subscriber": self.subscriber,
            "app": self.app,
            "byte_class": self.byte_class,
            "free_bytes": self.free_bytes,
            "charged_bytes": self.charged_bytes,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "BillingRecord":
        return cls(
            offset=int(data["offset"]),
            record_id=int(data["record_id"]),
            time=float(data["time"]),
            operator=str(data["operator"]),
            subscriber=str(data["subscriber"]),
            app=str(data["app"]),
            byte_class=str(data["byte_class"]),
            free_bytes=int(data["free_bytes"]),
            charged_bytes=int(data["charged_bytes"]),
        )

    def encode(self) -> bytes:
        payload = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class JournalRecoveryStats:
    """What recovery found — the numbers the robustness tests pin."""

    segments_scanned: int = 0
    records_recovered: int = 0
    torn_tail_truncated: int = 0
    torn_tail_bytes: int = 0
    corrupt_records: int = 0
    quarantined_bytes: int = 0

    def merge(self, other: "JournalRecoveryStats") -> None:
        self.segments_scanned += other.segments_scanned
        self.records_recovered += other.records_recovered
        self.torn_tail_truncated += other.torn_tail_truncated
        self.torn_tail_bytes += other.torn_tail_bytes
        self.corrupt_records += other.corrupt_records
        self.quarantined_bytes += other.quarantined_bytes

    def as_dict(self) -> dict[str, int]:
        return {
            "segments_scanned": self.segments_scanned,
            "records_recovered": self.records_recovered,
            "torn_tail_truncated": self.torn_tail_truncated,
            "torn_tail_bytes": self.torn_tail_bytes,
            "corrupt_records": self.corrupt_records,
            "quarantined_bytes": self.quarantined_bytes,
        }


def _segment_name(base_offset: int) -> str:
    return f"billing-{base_offset:012d}.seg"


def _scan_segment(
    path: str, *, is_last: bool, stats: JournalRecoveryStats
) -> tuple[list[BillingRecord], int]:
    """Read one segment; returns (records, good_end_offset_in_file).

    ``good_end`` is the file position after the last intact record — the
    truncation point for a torn tail.  Framing failures in the *last*
    segment are a torn tail (truncatable); in earlier segments they
    quarantine the remainder (the bytes are gone either way, but a
    sealed segment is never rewritten).  A CRC mismatch with intact
    framing quarantines just that record and keeps scanning.
    """
    stats.segments_scanned += 1
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < HEADER_BYTES or blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise ValueError(f"{path}: bad segment header")
    (base_offset,) = _HEADER.unpack(
        blob[len(SEGMENT_MAGIC) : HEADER_BYTES]
    )
    expected_base = int(os.path.basename(path)[len("billing-") : -len(".seg")])
    if base_offset != expected_base:
        raise ValueError(
            f"{path}: header base_offset {base_offset} != filename "
            f"{expected_base}"
        )
    records: list[BillingRecord] = []
    position = HEADER_BYTES
    good_end = position
    total = len(blob)
    while position < total:
        remaining = total - position
        if remaining < FRAME_BYTES:
            # Torn mid-frame-header.
            _count_tail(stats, remaining, is_last)
            break
        length, crc = _FRAME.unpack_from(blob, position)
        if length > MAX_RECORD_BYTES:
            # Framing destroyed: nothing after this point is parseable.
            _count_tail(stats, remaining, is_last)
            break
        if remaining - FRAME_BYTES < length:
            # Torn mid-payload.
            _count_tail(stats, remaining, is_last)
            break
        payload = blob[position + FRAME_BYTES : position + FRAME_BYTES + length]
        position += FRAME_BYTES + length
        if zlib.crc32(payload) != crc:
            # Intact framing, bad bytes: quarantine this record only.
            stats.corrupt_records += 1
            stats.quarantined_bytes += FRAME_BYTES + length
            good_end = position
            continue
        try:
            record = BillingRecord.from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError):
            stats.corrupt_records += 1
            stats.quarantined_bytes += FRAME_BYTES + length
            good_end = position
            continue
        records.append(record)
        stats.records_recovered += 1
        good_end = position
    return records, good_end


def _count_tail(
    stats: JournalRecoveryStats, tail_bytes: int, is_last: bool
) -> None:
    if is_last:
        stats.torn_tail_truncated += 1
        stats.torn_tail_bytes += tail_bytes
    else:
        stats.corrupt_records += 1
        stats.quarantined_bytes += tail_bytes


class BillingJournal:
    """Append-only, segment-rotated, checksummed billing journal.

    Opening a directory that already holds segments *recovers* it:
    every segment is scanned, a torn tail on the final segment is
    truncated on disk (at most one record), and appends resume at the
    next dense offset.  ``recovery`` holds what the scan found.

    ``disk_faults`` (a :class:`repro.netsim.faults.DiskFaultInjector`)
    hooks the append path for deterministic torn-write / disk-full /
    kill-mid-append injection.
    """

    def __init__(
        self,
        directory: str,
        *,
        source: str = "journal",
        stream_seed: int = 0,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
        fsync: str = "always",
        disk_faults: "DiskFaultInjector | None" = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if max_segment_bytes <= HEADER_BYTES:
            raise ValueError("max_segment_bytes too small for a header")
        self.directory = directory
        self.source = source
        self.stream_seed = stream_seed
        self.max_segment_bytes = max_segment_bytes
        self.fsync_policy = fsync
        self.disk_faults = disk_faults
        self.records_appended = 0
        self.bytes_appended = 0
        self.segment_rotations = 0
        self.fsyncs = 0
        self.append_failures = 0
        self._file = None
        self._segment_size = 0
        os.makedirs(directory, exist_ok=True)
        self.recovery = JournalRecoveryStats()
        self.next_offset = 0
        self._recover_and_open()

    # ------------------------------------------------------------------
    # Recovery / open
    # ------------------------------------------------------------------
    @staticmethod
    def segment_paths(directory: str) -> list[str]:
        names = [
            name
            for name in os.listdir(directory)
            if name.startswith("billing-") and name.endswith(".seg")
        ]
        return [
            os.path.join(directory, name)
            for name in sorted(names)
        ]

    @classmethod
    def read_directory(
        cls, directory: str
    ) -> tuple[list[BillingRecord], JournalRecoveryStats]:
        """Pure read of every record in a journal directory.

        Applies the same torn-tail / quarantine rules as recovery but
        never modifies the files — reconciliation reads journals it does
        not own (possibly while a writer is live elsewhere).
        """
        stats = JournalRecoveryStats()
        records: list[BillingRecord] = []
        paths = cls.segment_paths(directory)
        for index, path in enumerate(paths):
            segment_records, _end = _scan_segment(
                path, is_last=index == len(paths) - 1, stats=stats
            )
            records.extend(segment_records)
        return records, stats

    def _recover_and_open(self) -> None:
        paths = self.segment_paths(self.directory)
        base_offset = 0
        last_good_end = HEADER_BYTES
        for index, path in enumerate(paths):
            is_last = index == len(paths) - 1
            records, good_end = _scan_segment(
                path, is_last=is_last, stats=self.recovery
            )
            for record in records:
                self.next_offset = max(self.next_offset, record.offset + 1)
            if is_last:
                base_offset = int(
                    os.path.basename(path)[len("billing-") : -len(".seg")]
                )
                last_good_end = good_end
                actual = os.path.getsize(path)
                if actual > good_end:
                    # Truncate the torn tail on disk: at most one record.
                    with open(path, "r+b") as handle:
                        handle.truncate(good_end)
        if paths:
            self.next_offset = max(self.next_offset, base_offset)
            last = paths[-1]
            self._file = open(last, "r+b")
            self._file.seek(0, os.SEEK_END)
            self._segment_size = last_good_end
        else:
            self._open_segment(0)

    def _open_segment(self, base_offset: int) -> None:
        path = os.path.join(self.directory, _segment_name(base_offset))
        self._file = open(path, "wb")
        self._file.write(SEGMENT_MAGIC + _HEADER.pack(base_offset))
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self._segment_size = HEADER_BYTES

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(
        self,
        *,
        operator: str,
        subscriber: str,
        app: str,
        byte_class: str,
        free_bytes: int = 0,
        charged_bytes: int = 0,
        time: float = 0.0,
    ) -> BillingRecord:
        """Durably append one counter delta; returns the record.

        Raises :class:`JournalFull` (record NOT written, journal intact)
        on disk-full, and propagates a torn-write injection as whatever
        the injector raises — after a torn write the writer is dead by
        definition (the process crashed mid-append); only recovery via a
        fresh :class:`BillingJournal` makes the directory writable again.
        """
        if self._file is None:
            raise ValueError("journal is closed")
        record = BillingRecord(
            offset=self.next_offset,
            record_id=record_identity(
                self.stream_seed, self.source, self.next_offset
            ),
            time=time,
            operator=operator,
            subscriber=subscriber,
            app=app,
            byte_class=byte_class,
            free_bytes=free_bytes,
            charged_bytes=charged_bytes,
        )
        frame = record.encode()
        if (
            self._segment_size + len(frame) > self.max_segment_bytes
            and self._segment_size > HEADER_BYTES
        ):
            self._rotate()
        pre_append = self._segment_size
        try:
            if self.disk_faults is not None:
                self.disk_faults.on_append(self._file, frame)
            else:
                self._file.write(frame)
        except OSError as exc:
            self.append_failures += 1
            if exc.errno == errno.ENOSPC:
                # Restore the segment to its pre-append length so a
                # partial frame never reaches recovery.
                try:
                    self._file.truncate(pre_append)
                    self._file.seek(pre_append)
                except OSError:  # pragma: no cover - double fault
                    pass
                raise JournalFull(errno.ENOSPC, "journal disk full") from exc
            raise
        self._segment_size += len(frame)
        if self.fsync_policy == "always":
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self.next_offset += 1
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return record

    def _rotate(self) -> None:
        self.sync()
        self._file.close()
        self.segment_rotations += 1
        self._open_segment(self.next_offset)

    def sync(self) -> None:
        """Flush + fsync the active segment (a durability barrier)."""
        if self._file is None:
            return
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    def __enter__(self) -> "BillingJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads / compaction
    # ------------------------------------------------------------------
    def records(self) -> Iterator[BillingRecord]:
        """Every durable record, oldest first (reads the directory)."""
        self.sync()
        records, _stats = self.read_directory(self.directory)
        return iter(records)

    def compact_to(self, offset: int) -> int:
        """Delete sealed segments whose records all fall below ``offset``
        (a reconciled checkpoint); returns how many segments were
        removed.  The active segment is never deleted — like
        :meth:`repro.core.cp.deltalog.DeltaLog.compact_to`, compaction
        only ever advances the horizon, it never renumbers."""
        removed = 0
        paths = self.segment_paths(self.directory)
        for index, path in enumerate(paths[:-1]):  # never the active one
            next_base = int(
                os.path.basename(paths[index + 1])[len("billing-") : -len(".seg")]
            )
            if next_base <= offset:
                os.remove(path)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict[str, int]:
        data = {
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "segment_rotations": self.segment_rotations,
            "fsyncs": self.fsyncs,
            "append_failures": self.append_failures,
            "next_offset": self.next_offset,
        }
        data.update(self.recovery.as_dict())
        return data

    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "billing.journal"
    ) -> None:
        from ...telemetry import TelemetrySnapshot

        def collect() -> TelemetrySnapshot:
            return TelemetrySnapshot(
                counters={
                    f"{prefix}.{name}": value
                    for name, value in self.stats_dict().items()
                    if name != "next_offset"
                },
                gauges={f"{prefix}.next_offset": self.next_offset},
            )

        registry.register_collector(prefix, collect)
