"""Fig. 5(b): flow completion time for a 300 KB flow under Boost.

"Figure 5(b) shows a scenario for a 6 Mbps connection, where we throttle
non-boosted traffic to 1 Mbps" — the completion-time CDF of a 300 KB
download under three service classes:

- **best-effort**: no boost anywhere; the flow competes head-to-head with
  background traffic on the full 6 Mb/s link;
- **boosted**: the flow carries cookies, the Boost daemon binds it to the
  fast lane and throttles everything else;
- **throttled**: *someone else* holds the boost, so the measured flow
  shares the 1 Mb/s throttle with the background.

Every trial runs the full machinery — cookie generation, the daemon's
sniff-verify-bind path, the priority scheduler, the token-bucket throttle
— not a closed-form model.  Trials differ only in the background traffic's
random seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random

from ..analysis.cdf import EmpiricalCDF
from ..core import CookieGenerator, CookieServer, DescriptorStore, ServiceOffering
from ..core.transport import default_registry
from ..netsim.events import EventLoop
from ..netsim.middlebox import FunctionElement
from ..netsim.packet import Packet, make_tcp_packet
from ..netsim.tcpmodel import TcpTransfer
from ..netsim.topology import HomeNetwork, HomeNetworkConfig
from ..services.boost import BOOST_SERVICE, BoostDaemon

__all__ = ["FctResult", "run_trial", "run_fig5b", "SERVICE_CLASSES"]

SERVICE_CLASSES = ("best-effort", "boosted", "throttled")

FLOW_SIZE = 300_000  # the paper's 300 KB flow
DOWNLINK_BPS = 6_000_000.0
THROTTLE_BPS = 1_000_000.0
TRIAL_TIMEOUT = 60.0


@dataclass
class FctResult:
    """Completion times per service class, as CDFs."""

    samples: dict[str, list[float]] = field(default_factory=dict)

    def cdf(self, service_class: str) -> EmpiricalCDF:
        return EmpiricalCDF(self.samples[service_class])

    def medians(self) -> dict[str, float]:
        return {name: self.cdf(name).median for name in self.samples}

    def summary(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for name, values in self.samples.items():
            cdf = EmpiricalCDF(values)
            out[name] = {
                "median_s": round(cdf.median, 3),
                "p90_s": round(cdf.quantile(0.9), 3),
                "min_s": round(min(values), 3),
                "max_s": round(max(values), 3),
                "trials": len(values),
            }
        return out


def _make_cookie_tagger(loop, descriptor, registry):
    """An element that stamps a boost cookie onto the measured transfer's
    early packets — the in-band signal the daemon sniffs for."""
    generator = CookieGenerator(descriptor, clock=lambda: loop.now)

    def tag(packet: Packet) -> Packet:
        if packet.meta.get("measured") and packet.meta.get("segment", 99) < 2:
            cookie = generator.generate()
            registry.attach(packet, cookie)
        return packet

    return FunctionElement(tag, name="cookie-tagger")


def run_trial(service_class: str, seed: int = 0) -> float:
    """One 300 KB download under ``service_class``; returns the FCT."""
    if service_class not in SERVICE_CLASSES:
        raise ValueError(f"unknown service class {service_class!r}")
    loop = EventLoop()
    registry = default_registry()
    store = DescriptorStore()
    server = CookieServer(clock=lambda: loop.now)
    server.offer(ServiceOffering(name=BOOST_SERVICE, lifetime=3600.0))
    server.attach_enforcement_store(store)

    daemon = BoostDaemon(loop, store, registry=registry)
    home = HomeNetwork(
        loop,
        config=HomeNetworkConfig(
            downlink_bps=DOWNLINK_BPS, throttle_bps=THROTTLE_BPS
        ),
        middleboxes=[daemon.switch],
    )
    daemon.attach(home)

    rng = random.Random(seed)
    # Background load is *elastic*: other household devices running bulk
    # TCP downloads that grab whatever share the scheduler leaves them.
    # Trials differ in how many there are and when they start.
    background_flows = rng.randint(1, 5)
    for i in range(background_flows):
        bulk = TcpTransfer(
            loop,
            home.wan_ingress,
            size_bytes=20_000_000,  # outlives the trial
            src_ip=f"203.0.113.{20 + i}",
            src_port=443,
            dst_ip="192.168.1.101",
            dst_port=40_000 + i,
        )
        loop.schedule(rng.uniform(0.0, 0.5), bulk.start)

    descriptor = server.acquire("resident", BOOST_SERVICE)
    path = home.wan_ingress
    if service_class == "boosted":
        tagger = _make_cookie_tagger(loop, descriptor, registry)
        tagger >> home.wan_ingress
        path = tagger
    elif service_class == "throttled":
        # Someone else in the house boosts: a cookied packet from another
        # device activates the fast lane (and therefore the throttle).
        other = make_tcp_packet(
            "203.0.113.99", 443, "192.168.1.102", 44_000, payload_size=100
        )
        cookie = CookieGenerator(descriptor, clock=lambda: loop.now).generate()
        registry.attach(other, cookie)
        loop.schedule(0.5, lambda: home.wan_ingress.push(other))

    # Let background traffic build up queue state before measuring.
    loop.run(until=1.0)

    transfer = TcpTransfer(
        loop,
        path,
        size_bytes=FLOW_SIZE,
        dst_ip="192.168.1.100",
        meta={"measured": True},
    )
    transfer.start()
    loop.run(until=1.0 + TRIAL_TIMEOUT)
    if not transfer.completed:
        return TRIAL_TIMEOUT
    return transfer.completion_time or TRIAL_TIMEOUT


def run_fig5b(trials: int = 20, seed: int = 0) -> FctResult:
    """The full figure: ``trials`` downloads per service class."""
    result = FctResult()
    for service_class in SERVICE_CLASSES:
        result.samples[service_class] = [
            run_trial(service_class, seed=seed + trial) for trial in range(trials)
        ]
    return result
