"""§4.6: can the middlebox handle a university campus?

The paper validates deployability by replaying a 15-hour campus wireless
trace: 11.3 M flows, 73 613 client IPs, median flow 50 packets, p99 new
flows per second 442 — and shows its middlebox's sustainable rate ("~48000
new flows per second") is "much more than required by the university
trace".

This experiment (a) generates a scaled synthetic trace and verifies the
marginals match the published ones, then (b) replays it through the
zero-rating middlebox with a configurable fraction of flows carrying
cookies, and (c) compares the middlebox's measured new-flow capacity to
the trace's p99 demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.descriptor import CookieDescriptor
from ..core.generator import CookieGenerator
from ..core.matcher import CookieMatcher
from ..core.store import DescriptorStore
from ..services.zerorate import ZeroRatingMiddlebox
from ..trace.campus import PUBLISHED_TRACE, CampusTraceGenerator, CampusTraceStats
from ..trace.records import flow_to_packets

__all__ = ["Sec46Result", "run_sec46"]


@dataclass
class Sec46Result:
    """Trace validation + replay outcome."""

    trace: CampusTraceStats
    flows_replayed: int
    packets_replayed: int
    elapsed_s: float
    cookie_flows: int
    cookie_hits: int
    subscribers_accounted: int

    @property
    def sustainable_new_flows_per_second(self) -> float:
        """How many fresh flows/s the middlebox absorbed during replay."""
        return self.flows_replayed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def headroom_over_p99(self) -> float:
        """Sustainable rate over the trace's published p99 demand — the
        paper's "much more than required" claim, as a ratio."""
        return (
            self.sustainable_new_flows_per_second
            / PUBLISHED_TRACE["p99_new_flows_per_second"]
        )

    def summary(self) -> dict[str, object]:
        return {
            "trace_flows": self.trace.flows,
            "trace_median_flow_packets": self.trace.median_flow_packets,
            "trace_p99_new_flows_per_s": round(
                self.trace.p99_new_flows_per_second, 1
            ),
            "replayed_packets": self.packets_replayed,
            "cookie_hit_rate": (
                round(self.cookie_hits / self.cookie_flows, 4)
                if self.cookie_flows
                else 0.0
            ),
            "sustainable_new_flows_per_s": round(
                self.sustainable_new_flows_per_second
            ),
            "headroom_over_published_p99": round(self.headroom_over_p99, 1),
        }


def run_sec46(
    scale: float = 0.0005,
    cookie_fraction: float = 0.5,
    seed: int = 26_01_2015,
) -> Sec46Result:
    """Generate, validate, and replay a scaled campus trace.

    ``cookie_fraction`` of flows carry a valid zero-rating cookie; the
    rest exercise the search-and-miss path, which is the expensive one.
    """
    generator = CampusTraceGenerator(scale=scale, seed=seed)
    records = list(generator.generate())
    stats = generator.summarize(records)

    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    clock = time.perf_counter
    cookie_generator = CookieGenerator(descriptor, clock)
    # The replay compresses hours of trace time into seconds of wall
    # clock, but cookies are minted during pre-expansion — possibly many
    # wall-clock seconds before their flow is replayed.  A wide NCT keeps
    # the verifier's timestamp check from rejecting cookies for an
    # artifact of replay compression (in deployment, generation and
    # arrival are separated by network latency, well within 5 s).
    matcher = CookieMatcher(store, nct=600.0)
    middlebox = ZeroRatingMiddlebox(matcher, clock=clock)

    rng = generator.rng
    flows_with_cookie = 0
    # Pre-expand packets so the timed region is middlebox work only.
    expanded: list = []
    for record in records:
        cookie = None
        if rng.random() < cookie_fraction:
            cookie = cookie_generator.generate()
            flows_with_cookie += 1
        expanded.append(list(flow_to_packets(record, cookie=cookie)))

    start = clock()
    handle = middlebox.handle
    packet_count = 0
    for flow_packets in expanded:
        for packet in flow_packets:
            handle(packet)
            packet_count += 1
    elapsed = clock() - start

    return Sec46Result(
        trace=stats,
        flows_replayed=len(records),
        packets_replayed=packet_count,
        elapsed_s=elapsed,
        cookie_flows=flows_with_cookie,
        cookie_hits=middlebox.cookie_hits,
        subscribers_accounted=len(middlebox.counters),
    )
