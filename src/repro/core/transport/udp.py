"""Custom UDP framing carrier (the QUIC-integration stand-in).

For UDP traffic the cookie rides in a small shim between the UDP header and
the application payload: a 4-byte magic, the 48-byte binary cookie, then
the original content.  Like the IPv6 carrier this keeps the whole cookie in
one packet, enabling the paper's stateless "packet-based cookies" mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...netsim.headers import UDPHeader
from ...netsim.packet import Packet
from ..cookie import COOKIE_WIRE_BYTES, Cookie
from ..errors import MalformedCookie, TransportError
from .base import CookieCarrier

__all__ = ["UdpShimCarrier", "CookieShim", "SHIM_MAGIC"]

SHIM_MAGIC = b"NCK1"


@dataclass
class CookieShim:
    """Wrapper placed in ``payload.content`` holding the cookie bytes and
    the original application content."""

    cookie_bytes: bytes
    inner: Any = None


class UdpShimCarrier(CookieCarrier):
    """Carries the binary cookie in a shim ahead of the UDP payload."""

    name = "udp"
    overhead_bytes = len(SHIM_MAGIC) + COOKIE_WIRE_BYTES

    def can_carry(self, packet: Packet) -> bool:
        return isinstance(packet.l4, UDPHeader) and not isinstance(
            packet.payload.content, CookieShim
        )

    def attach(self, packet: Packet, cookie: Cookie) -> None:
        if not isinstance(packet.l4, UDPHeader):
            raise TransportError("packet has no UDP header")
        if isinstance(packet.payload.content, CookieShim):
            raise TransportError("packet already carries a UDP cookie shim")
        packet.payload.content = CookieShim(
            cookie_bytes=cookie.to_bytes(), inner=packet.payload.content
        )
        packet.payload.size += self.overhead_bytes
        packet.l4.length += self.overhead_bytes

    def extract(self, packet: Packet) -> Cookie | None:
        if not isinstance(packet.l4, UDPHeader):
            return None
        content = packet.payload.content
        if not isinstance(content, CookieShim):
            return None
        try:
            return Cookie.from_bytes(content.cookie_bytes)
        except MalformedCookie:
            return None
