"""Sharded control plane: routing, replication, shedding, recovery.

Covers the PR-8 tentpole end to end at unit scale: rendezvous routing
parity with the data plane, the CookieServer-compatible JSON API plus
the §14 extensions, revocation broadcast under the staleness bound,
partition recovery by snapshot-then-replay, load shedding through the
admission gate, process-mode parity with a worker kill drill, and the
telemetry collector.
"""

import asyncio

import pytest

from repro.core import (
    AcquisitionDenied,
    ServiceOffering,
)
from repro.core.cp import (
    AsyncControlPlaneServer,
    ShardedControlPlane,
    VerifierReplica,
)
from repro.core.distributed import rendezvous_shard
from repro.core.netserver import CookieClient
from repro.telemetry import MetricsRegistry


class ManualClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _controlplane(shards: int = 2, **kwargs) -> ShardedControlPlane:
    clock = kwargs.pop("clock", ManualClock())
    controlplane = ShardedControlPlane(
        clock=clock, shards=shards, mode=kwargs.pop("mode", "in-process"),
        **kwargs,
    )
    controlplane.offer(ServiceOffering(name="Boost", description="fast lane"))
    return controlplane


class TestRoutingAndLifecycle:
    def test_acquire_routes_by_rendezvous_hash(self):
        with _controlplane(shards=4) as controlplane:
            descriptors = [
                controlplane.acquire(f"user{i}", "Boost") for i in range(32)
            ]
            for descriptor in descriptors:
                shard = rendezvous_shard(descriptor.cookie_id, 4)
                assert controlplane.shard_of(descriptor.cookie_id) == shard
                stats = controlplane.shard_stats()[shard]
                assert stats["descriptors"] >= 1
                found = controlplane.lookup(descriptor.cookie_id)
                assert found is not None
                assert found.cookie_id == descriptor.cookie_id
            # Every acquisition landed on exactly one shard.
            assert sum(
                s["acquired"] for s in controlplane.shard_stats()
            ) == len(descriptors)

    def test_revoke_renew_and_purge(self):
        clock = ManualClock()
        with _controlplane(shards=2, clock=clock) as controlplane:
            controlplane.offer(
                ServiceOffering(name="Shortlived", lifetime=10.0)
            )
            descriptor = controlplane.acquire("alice", "Shortlived")
            renewed = controlplane.renew("alice", descriptor.cookie_id)
            assert renewed.cookie_id != descriptor.cookie_id
            assert renewed.service_data == "Shortlived"
            assert controlplane.revoke(descriptor.cookie_id)
            assert not controlplane.revoke(descriptor.cookie_id + 1)
            looked_up = controlplane.lookup(descriptor.cookie_id)
            assert looked_up is not None and looked_up.revoked
            clock.advance(11.0)
            assert controlplane.purge_expired() == 2
            assert controlplane.lookup(renewed.cookie_id) is None

    def test_unknown_service_denied(self):
        with _controlplane() as controlplane:
            with pytest.raises(AcquisitionDenied):
                controlplane.acquire("alice", "nope")
            assert controlplane.stats.denied == 1

    def test_json_api_cookieserver_compatible_plus_extensions(self):
        with _controlplane(shards=2) as controlplane:
            services = controlplane.handle_request({"op": "list_services"})
            assert services["ok"]
            assert services["services"][0]["name"] == "Boost"
            granted = controlplane.handle_request(
                {"op": "acquire", "user": "alice", "service": "Boost"}
            )
            assert granted["ok"]
            cookie_id = int(granted["descriptor"]["cookie_id"])
            renewed = controlplane.handle_request(
                {"op": "renew", "user": "alice", "cookie_id": cookie_id}
            )
            assert renewed["ok"]
            revoked = controlplane.handle_request(
                {"op": "revoke", "cookie_id": cookie_id}
            )
            assert revoked["ok"]

            shard = controlplane.shard_of(cookie_id)
            snapshot = controlplane.handle_request(
                {"op": "snapshot", "shard": shard}
            )
            assert snapshot["ok"]
            assert snapshot["snapshot"]["offset"] >= 1
            deltas = controlplane.handle_request(
                {"op": "deltas_since", "shard": shard, "offset": 0}
            )
            assert deltas["ok"]
            assert deltas["records"][0]["op"] == "add"
            stats = controlplane.handle_request({"op": "stats"})
            assert stats["ok"] and stats["stats"]["shards"] == 2
            assert not controlplane.handle_request({"op": "frobnicate"})["ok"]
            assert not controlplane.handle_request(
                {"op": "snapshot", "shard": 99}
            )["ok"]


class TestReplication:
    def test_eager_revocation_broadcast_within_bound(self):
        clock = ManualClock()
        with _controlplane(
            shards=2, clock=clock, staleness_bound=1.0
        ) as controlplane:
            replica = controlplane.register_replica(VerifierReplica("mb0"))
            descriptor = controlplane.acquire("alice", "Boost")
            controlplane.sync_replicas()
            mirrored = replica.store.get(descriptor.cookie_id)
            assert mirrored is not None and not mirrored.revoked
            # Eager broadcast: revoke pushes to the replica immediately.
            assert controlplane.revoke(descriptor.cookie_id)
            assert replica.store.get(descriptor.cookie_id).revoked
            assert (
                controlplane.max_broadcast_lag()
                <= controlplane.staleness_bound
            )

    def test_lazy_broadcast_measures_real_lag(self):
        clock = ManualClock()
        with _controlplane(
            shards=1,
            clock=clock,
            staleness_bound=1.0,
            eager_broadcast=False,
        ) as controlplane:
            replica = controlplane.register_replica(VerifierReplica("mb0"))
            descriptor = controlplane.acquire("alice", "Boost")
            controlplane.sync_replicas()
            assert controlplane.revoke(descriptor.cookie_id)
            assert not replica.store.get(descriptor.cookie_id).revoked
            clock.advance(0.4)  # one anti-entropy period later
            controlplane.sync_replicas()
            assert replica.store.get(descriptor.cookie_id).revoked
            lag = controlplane.max_broadcast_lag()
            # 0.4s of real staleness, reported as its histogram bucket.
            assert 0.4 <= lag <= controlplane.staleness_bound

    def test_partition_recovery_by_snapshot_then_replay(self):
        clock = ManualClock()
        with _controlplane(shards=2, clock=clock) as controlplane:
            replica = controlplane.register_replica(VerifierReplica("mb0"))
            kept = controlplane.acquire("alice", "Boost")
            removed = controlplane.acquire("bob", "Boost")
            controlplane.sync_replicas()
            assert replica.store.get(removed.cookie_id) is not None

            replica.partition()
            revoked = controlplane.acquire("carol", "Boost")
            controlplane.revoke(revoked.cookie_id)
            for handle in controlplane._shards:
                handle.remove_batch([removed.cookie_id], clock())
            # Compaction drops the window the replica still needed.
            controlplane.compact_logs(aggressive=True)
            clock.advance(0.2)
            replica.heal()
            controlplane.sync_replicas()

            assert controlplane.stats.snapshot_catchups >= 1
            assert replica.snapshots_installed >= 1
            assert replica.store.get(kept.cookie_id) is not None
            assert replica.store.get(revoked.cookie_id).revoked
            # The id removed during the partition was purged on install.
            assert replica.store.get(removed.cookie_id) is None
            assert (
                controlplane.max_broadcast_lag()
                <= controlplane.staleness_bound
            )

    def test_compaction_default_horizon_is_slowest_replica(self):
        with _controlplane(shards=1) as controlplane:
            fresh = controlplane.register_replica(VerifierReplica("fresh"))
            for i in range(8):
                controlplane.acquire(f"user{i}", "Boost")
            controlplane.sync_replicas()
            laggard = VerifierReplica("laggard")
            laggard.partition()
            controlplane.register_replica(laggard)
            # Laggard is at offset 0: nothing may be dropped.
            assert controlplane.compact_logs() == 0
            laggard.heal()
            controlplane.sync_replicas()
            assert controlplane.compact_logs() == 8
            assert fresh.applied_offset(0) == 8


class TestLoadShedding:
    def test_pending_cap_sheds_with_structured_error(self):
        with _controlplane(shards=1, max_pending=2) as controlplane:
            assert controlplane.admit() is None
            assert controlplane.admit() is None
            shed = controlplane.admit()
            assert shed is not None and shed["shed"]
            assert "pending" in shed["error"]
            assert controlplane.stats.shed_pending == 1
            controlplane.release()
            assert controlplane.admit() is None

    def test_open_breaker_sheds(self):
        with _controlplane(shards=1) as controlplane:
            for _ in range(5):
                controlplane.breaker.record_failure()
            shed = controlplane.admit()
            assert shed is not None and shed["shed"]
            assert "circuit breaker" in shed["error"]
            assert controlplane.stats.shed_breaker == 1


class TestProcessMode:
    def test_worker_kill_drill_recovers_state(self):
        """Kill a worker mid-stream: the parent respawns it, re-seeds it
        from the mirror, and serving continues with nothing lost."""
        import time

        controlplane = ShardedControlPlane(
            clock=time.monotonic, shards=2, mode="process"
        )
        try:
            controlplane.offer(ServiceOffering(name="Boost"))
            before = [
                controlplane.acquire(f"user{i}", "Boost") for i in range(20)
            ]
            controlplane._shards[0].kill()
            after = [
                controlplane.acquire(f"late{i}", "Boost") for i in range(10)
            ]
            for descriptor in before + after:
                found = controlplane.lookup(descriptor.cookie_id)
                assert found is not None
                assert found.cookie_id == descriptor.cookie_id
            assert controlplane.worker_restarts >= 1
            assert controlplane.revoke(before[0].cookie_id)
            assert controlplane.lookup(before[0].cookie_id).revoked
        finally:
            controlplane.close()

    def test_process_mode_snapshot_matches_mirror(self):
        import time

        controlplane = ShardedControlPlane(
            clock=time.monotonic, shards=2, mode="process"
        )
        try:
            controlplane.offer(ServiceOffering(name="Boost"))
            issued = {
                controlplane.acquire(f"user{i}", "Boost").cookie_id
                for i in range(12)
            }
            mirrored = {
                int(d["cookie_id"])
                for handle in controlplane._shards
                for d in handle.snapshot().descriptors
            }
            assert mirrored == issued
        finally:
            controlplane.close()


class TestAsyncServer:
    def test_serves_and_sheds_over_tcp(self):
        async def scenario():
            controlplane = _controlplane(shards=2)
            tcp = AsyncControlPlaneServer(controlplane)
            host, port = await tcp.start()
            client = CookieClient(host, port)
            try:
                granted = await client.request(
                    {"op": "acquire", "user": "alice", "service": "Boost"}
                )
                for _ in range(5):
                    controlplane.breaker.record_failure()
                shed = await client.request(
                    {"op": "acquire", "user": "bob", "service": "Boost"}
                )
            finally:
                await client.close()
                await tcp.stop()
                controlplane.close()
            return granted, shed, controlplane.inflight

        granted, shed, inflight = asyncio.run(scenario())
        assert granted["ok"]
        assert shed["shed"] and not shed["ok"]
        assert inflight == 0  # every admit was released


class TestTelemetry:
    def test_collector_merges_into_registry(self):
        with _controlplane(shards=2) as controlplane:
            registry = MetricsRegistry()
            controlplane.register_telemetry(registry)
            assert "cp.controlplane" in registry.collector_names
            descriptor = controlplane.acquire("alice", "Boost")
            controlplane.register_replica(VerifierReplica("mb0"))
            controlplane.revoke(descriptor.cookie_id)
            controlplane.admit()
            controlplane.release()
            snapshot = registry.snapshot()
            assert snapshot.counters["cp.acquired"] == 1
            assert snapshot.counters["cp.revoked"] == 1
            assert snapshot.gauges["cp.shards"] == 2
            assert snapshot.gauges["cp.replicas"] == 1
            shard = controlplane.shard_of(descriptor.cookie_id)
            assert snapshot.gauges[f"cp.shard{shard}.log_len"] >= 2
            lag = snapshot.histograms["cp.broadcast_lag_s"]
            assert lag.count == 1
