"""Cookie transport tests: every carrier, the registry, overhead, failure
tolerance."""

import pytest

from repro.core.cookie import Cookie
from repro.core.descriptor import CookieDescriptor
from repro.core.errors import TransportError
from repro.core.generator import CookieGenerator
from repro.core.transport import (
    COOKIE_HEADER,
    CookieShim,
    HttpHeaderCarrier,
    Ipv6ExtensionCarrier,
    TcpOptionCarrier,
    TlsExtensionCarrier,
    TransportRegistry,
    UdpShimCarrier,
    default_registry,
)
from repro.netsim.appmsg import HTTPRequest, TLSClientHello
from repro.netsim.headers import IPProto, IPv6Header, TCPHeader
from repro.netsim.packet import Packet, Payload, make_tcp_packet, make_udp_packet


@pytest.fixture
def cookie():
    descriptor = CookieDescriptor.create(service_data="Boost")
    return CookieGenerator(descriptor, clock=lambda: 1.0).generate()


def _http_packet():
    return make_tcp_packet(
        "10.0.0.1", 5000, "1.2.3.4", 80,
        content=HTTPRequest(host="example.com"), payload_size=300,
    )


def _tls_packet():
    return make_tcp_packet(
        "10.0.0.1", 5000, "1.2.3.4", 443,
        content=TLSClientHello(sni="example.com"), payload_size=300,
    )


def _ipv6_packet():
    return Packet(
        ip=IPv6Header(src="2001:db8::1", dst="2001:db8::2", next_header=IPProto.TCP),
        l4=TCPHeader(src_port=5000, dst_port=443),
        payload=Payload(size=100),
    )


class TestHttpCarrier:
    def test_roundtrip(self, cookie):
        carrier = HttpHeaderCarrier()
        packet = _http_packet()
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_header_is_base64_text(self, cookie):
        packet = _http_packet()
        HttpHeaderCarrier().attach(packet, cookie)
        assert packet.payload.content.header(COOKIE_HEADER) == cookie.to_text()

    def test_size_overhead_accounted(self, cookie):
        carrier = HttpHeaderCarrier()
        packet = _http_packet()
        before = packet.wire_length
        carrier.attach(packet, cookie)
        assert packet.wire_length == before + carrier.overhead_bytes

    def test_cannot_carry_tls(self, cookie):
        assert not HttpHeaderCarrier().can_carry(_tls_packet())
        with pytest.raises(TransportError):
            HttpHeaderCarrier().attach(_tls_packet(), cookie)

    def test_no_cookie_returns_none(self):
        assert HttpHeaderCarrier().extract(_http_packet()) is None

    def test_garbled_header_returns_none(self):
        packet = _http_packet()
        packet.payload.content.set_header(COOKIE_HEADER, "garbage!!")
        assert HttpHeaderCarrier().extract(packet) is None


class TestTlsCarrier:
    def test_roundtrip(self, cookie):
        carrier = TlsExtensionCarrier()
        packet = _tls_packet()
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_cannot_carry_plain_http(self, cookie):
        assert not TlsExtensionCarrier().can_carry(_http_packet())

    def test_sni_untouched(self, cookie):
        packet = _tls_packet()
        TlsExtensionCarrier().attach(packet, cookie)
        assert packet.payload.content.sni == "example.com"

    def test_garbled_extension_returns_none(self):
        from repro.core.transport.tls import COOKIE_EXTENSION_TYPE

        packet = _tls_packet()
        packet.payload.content.extensions[COOKIE_EXTENSION_TYPE] = b"\xff\xfe"
        assert TlsExtensionCarrier().extract(packet) is None


class TestIpv6Carrier:
    def test_roundtrip(self, cookie):
        carrier = Ipv6ExtensionCarrier()
        packet = _ipv6_packet()
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_cannot_carry_ipv4(self, cookie):
        assert not Ipv6ExtensionCarrier().can_carry(_http_packet())
        with pytest.raises(TransportError):
            Ipv6ExtensionCarrier().attach(_http_packet(), cookie)

    def test_extension_chain_preserved(self, cookie):
        packet = _ipv6_packet()
        Ipv6ExtensionCarrier().attach(packet, cookie)
        assert len(packet.ip.extensions) == 1
        assert packet.ip.extensions[0].next_header == IPProto.TCP

    def test_wire_length_grows(self, cookie):
        packet = _ipv6_packet()
        before = packet.wire_length
        Ipv6ExtensionCarrier().attach(packet, cookie)
        assert packet.wire_length > before


class TestTcpCarrier:
    def test_roundtrip(self, cookie):
        carrier = TcpOptionCarrier()
        packet = make_tcp_packet("10.0.0.1", 1, "2.2.2.2", 2, payload_size=50)
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_carries_on_encrypted_traffic(self, cookie):
        """The TCP option rides below TLS: works on fully opaque flows."""
        packet = make_tcp_packet(
            "10.0.0.1", 1, "2.2.2.2", 2, payload_size=500, encrypted=True
        )
        carrier = TcpOptionCarrier()
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_foreign_option_ignored(self):
        from repro.netsim.headers import TCPOption

        packet = make_tcp_packet("10.0.0.1", 1, "2.2.2.2", 2)
        packet.l4.options.append(TCPOption(kind=253, data=b"\x00\x01xx"))
        assert TcpOptionCarrier().extract(packet) is None

    def test_requires_extended_options_documented(self):
        assert TcpOptionCarrier.requires_extended_options

    def test_cannot_carry_udp(self, cookie):
        packet = make_udp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        assert not TcpOptionCarrier().can_carry(packet)


class TestUdpCarrier:
    def test_roundtrip(self, cookie):
        carrier = UdpShimCarrier()
        packet = make_udp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=100)
        carrier.attach(packet, cookie)
        assert carrier.extract(packet) == cookie

    def test_inner_content_preserved(self, cookie):
        packet = make_udp_packet(
            "1.1.1.1", 1, "2.2.2.2", 2, payload_size=100, content={"app": "data"}
        )
        UdpShimCarrier().attach(packet, cookie)
        assert isinstance(packet.payload.content, CookieShim)
        assert packet.payload.content.inner == {"app": "data"}

    def test_double_attach_rejected(self, cookie):
        packet = make_udp_packet("1.1.1.1", 1, "2.2.2.2", 2)
        UdpShimCarrier().attach(packet, cookie)
        with pytest.raises(TransportError):
            UdpShimCarrier().attach(packet, cookie)

    def test_udp_length_updated(self, cookie):
        packet = make_udp_packet("1.1.1.1", 1, "2.2.2.2", 2, payload_size=100)
        before = packet.l4.length
        UdpShimCarrier().attach(packet, cookie)
        assert packet.l4.length == before + UdpShimCarrier.overhead_bytes


class TestRegistry:
    def test_default_registry_has_all_carriers(self):
        assert set(default_registry().names) == {"http", "tls", "udp", "ipv6", "tcp"}

    def test_http_preferred_for_plain_requests(self, cookie):
        registry = default_registry()
        assert registry.attach(_http_packet(), cookie) == "http"

    def test_tls_preferred_for_client_hello(self, cookie):
        registry = default_registry()
        assert registry.attach(_tls_packet(), cookie) == "tls"

    def test_tcp_fallback_for_opaque_tcp(self, cookie):
        registry = default_registry()
        packet = make_tcp_packet("1.1.1.1", 1, "2.2.2.2", 2, encrypted=True)
        assert registry.attach(packet, cookie) == "tcp"

    def test_allowed_filter_respected(self, cookie):
        registry = default_registry()
        packet = _tls_packet()
        # TLS not allowed: falls through to the TCP option carrier.
        assert registry.attach(packet, cookie, allowed=("tcp",)) == "tcp"

    def test_no_carrier_raises(self, cookie):
        registry = default_registry()
        with pytest.raises(TransportError):
            registry.attach(Packet(), cookie)

    def test_extract_scans_all(self, cookie):
        registry = default_registry()
        packet = _ipv6_packet()
        registry.attach(packet, cookie)
        found = registry.extract(packet)
        assert found is not None
        assert found[0] == cookie and found[1] == "ipv6"

    def test_extract_none_for_clean_packet(self):
        assert default_registry().extract(_http_packet()) is None

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TransportRegistry([HttpHeaderCarrier(), HttpHeaderCarrier()])
        registry = TransportRegistry([HttpHeaderCarrier()])
        with pytest.raises(ValueError):
            registry.register(HttpHeaderCarrier())

    def test_get_by_name(self):
        registry = default_registry()
        assert registry.get("tls") is not None
        assert registry.get("nope") is None

    def test_carriers_for(self):
        registry = default_registry()
        names = [c.name for c in registry.carriers_for(_tls_packet())]
        assert "tls" in names and "tcp" in names and "http" not in names
