"""Eviction-flush contract + crash recovery of the billing pipeline.

Satellite 2: a billing-enabled middlebox may NEVER evict a subscriber's
counters without flushing the pending billing deltas first — the
regression here is the silent revenue loss where an LRU eviction under
subscriber-cap pressure dropped bytes that were never journaled.  The
flush hook is wired automatically; tearing it off turns the next
eviction into :class:`BillingFlushRequired`, not a quiet loss.

Plus accountant-level crash recovery: ENOSPC keeps deltas pending for a
retry, and a reopened journal re-primes cap enforcement via
``seed_cap_usage`` so a recovered box keeps enforcing where it left off.
"""

import pytest

from repro.core import (
    CookieDescriptor,
    CookieGenerator,
    CookieMatcher,
    DescriptorStore,
)
from repro.core.transport import default_registry
from repro.netsim import DiskFaultInjector, DiskFaultPlan
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet
from repro.services.billing import (
    BillingAccountant,
    BillingJournal,
    JournalFull,
    reconcile_directories,
)
from repro.services.zerorate import (
    AppCoverage,
    BillingFlushRequired,
    CatalogSet,
    OperatorCatalog,
    ZeroRatingMiddlebox,
)

ORIGIN = "203.0.113.10"
SUBSCRIBERS = ("10.6.0.2", "10.6.1.2", "10.6.2.2", "10.6.3.2")


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _accountant(journal_dir, **journal_kwargs):
    catalogs = CatalogSet([
        OperatorCatalog(
            operator="op-ev",
            apps=(AppCoverage(
                app="zero-rate", origin_ips=frozenset({ORIGIN}),
            ),),
        ),
    ])
    for subscriber in SUBSCRIBERS:
        catalogs.assign(subscriber, "op-ev")
    journal_kwargs.setdefault("fsync", "never")
    return BillingAccountant(
        catalogs, BillingJournal(journal_dir, **journal_kwargs)
    )


def _drive(middlebox, descriptor, clock, *, flows=8, packets=4):
    """Cookied flows from all four subscribers — more than the box's
    subscriber budget, so the LRU churns."""
    transports = default_registry()
    pushed = 0
    for flow_index in range(flows):
        subscriber = SUBSCRIBERS[flow_index % len(SUBSCRIBERS)]
        for _ in range(packets):
            clock.now += 0.01
            packet = make_tcp_packet(
                subscriber, 41_000 + flow_index, ORIGIN, 443,
                payload_size=500,
            )
            transports.attach(
                packet, CookieGenerator(descriptor, clock).generate()
            )
            pushed += packet.wire_length
            middlebox.push(packet)
    return pushed


def test_eviction_flushes_billing_under_cap_pressure(tmp_path):
    """The regression test: every byte pushed through a max_subscribers=1
    box lands in the journal despite constant evictions."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    clock = _Clock()
    accountant = _accountant(str(tmp_path))
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store), clock=clock, max_subscribers=1,
        billing=accountant,
    )
    middlebox >> Sink()
    pushed = _drive(middlebox, descriptor, clock)
    assert middlebox.subscribers_evicted >= 3
    # Evicted subscribers' deltas are already durable, not pending.
    assert accountant.pending_subscribers <= 1
    accountant.flush_all()
    accountant.journal.close()
    report = reconcile_directories([str(tmp_path)])
    invoice = report.invoices["op-ev"]
    assert invoice.total_bytes == pushed
    assert len(invoice.statements) == len(SUBSCRIBERS)
    assert invoice.free_bytes == pushed  # all origin-covered, no cap


def test_eviction_without_flush_hook_raises(tmp_path):
    """Tearing off the auto-wired flush hook makes the next eviction a
    hard error instead of silent counter loss."""
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    clock = _Clock()
    accountant = _accountant(str(tmp_path))
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store), clock=clock, max_subscribers=1,
        billing=accountant,
    )
    middlebox >> Sink()
    assert middlebox.on_subscriber_evicted is not None  # auto-wired
    middlebox.on_subscriber_evicted = None
    with pytest.raises(BillingFlushRequired):
        _drive(middlebox, descriptor, clock)
    accountant.journal.close()


def test_user_eviction_callback_still_runs_after_flush(tmp_path):
    store = DescriptorStore()
    descriptor = store.add(CookieDescriptor.create(service_data="zero-rate"))
    clock = _Clock()
    accountant = _accountant(str(tmp_path))
    seen = []
    middlebox = ZeroRatingMiddlebox(
        CookieMatcher(store), clock=clock, max_subscribers=1,
        billing=accountant,
        on_subscriber_evicted=lambda ip, counters: seen.append(ip),
    )
    middlebox >> Sink()
    _drive(middlebox, descriptor, clock, flows=4, packets=2)
    assert len(seen) == middlebox.subscribers_evicted >= 1
    accountant.journal.close()


def test_journal_full_keeps_delta_pending_for_retry(tmp_path):
    """ENOSPC during a flush loses nothing: the failed bucket stays
    pending and a retry lands it."""
    faults = DiskFaultInjector(DiskFaultPlan(enospc_at=0))
    accountant = _accountant(str(tmp_path), disk_faults=faults)
    accountant.account(SUBSCRIBERS[0], "zero-rate", ORIGIN, 700, cookied=True)
    with pytest.raises(JournalFull):
        accountant.flush_subscriber(SUBSCRIBERS[0])
    assert accountant.flush_failures == 1
    assert accountant.pending_bytes == 700
    assert accountant.flush_subscriber(SUBSCRIBERS[0]) == 1  # disk freed
    assert accountant.pending_bytes == 0
    accountant.journal.close()
    report = reconcile_directories([str(tmp_path)])
    assert report.invoices["op-ev"].free_bytes == 700


def test_recovered_accountant_keeps_enforcing_cap(tmp_path):
    """Crash, reopen, ``seed_cap_usage`` from the reconciled invoices:
    the cap picks up where the dead process left off instead of
    resetting to zero."""
    journal_dir = str(tmp_path)
    catalogs_kwargs = dict(
        operator="op-cap",
        apps=(AppCoverage(
            app="zero-rate", origin_ips=frozenset({ORIGIN}),
        ),),
        cap_bytes=1000,
    )

    def fresh_accountant():
        catalogs = CatalogSet([OperatorCatalog(**catalogs_kwargs)])
        catalogs.assign(SUBSCRIBERS[0], "op-cap")
        return BillingAccountant(
            catalogs, BillingJournal(journal_dir, fsync="never")
        )

    before = fresh_accountant()
    assert before.account(SUBSCRIBERS[0], "zero-rate", ORIGIN, 800,
                          cookied=True)
    before.flush_all()
    before.journal.close()  # "crash": the process is gone

    after = fresh_accountant()
    report = reconcile_directories([journal_dir])
    after.seed_cap_usage({
        operator: {
            ip: statement.free_bytes
            for ip, statement in invoice.statements.items()
        }
        for operator, invoice in report.invoices.items()
    })
    assert after.cap_used(SUBSCRIBERS[0]) == 800
    # 800 of 1000 already spent: 300 more must fall back to charged.
    assert not after.account(SUBSCRIBERS[0], "zero-rate", ORIGIN, 300,
                             cookied=True)
    # ... but a packet that still fits rides free.
    assert after.account(SUBSCRIBERS[0], "zero-rate", ORIGIN, 150,
                         cookied=True)
    after.journal.close()
