"""The link-condition scenario lab: cell semantics + campaign determinism.

The full default grid is CI-budget territory (``python -m repro
linklab``); here a 2x2x2 corner of it proves the contracts: payload
bit-identity across worker counts, heatmap completeness, and the
physics-facing claims (boost helps, staleness fails the NCT, loss taxes
accounting).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.linklab import (
    DEFAULT_LATENCIES_S,
    DEFAULT_LOSS_RATES,
    DEFAULT_RATES_MBPS,
    link_profile,
    run_cell,
    run_linklab,
)
from repro.telemetry import MetricsRegistry

SMALL_GRID = dict(
    rates_mbps=(2.0, 6.0),
    latencies_s=(0.005, 0.28),
    loss_rates=(0.0, 0.02),
)


@pytest.fixture(scope="module")
def small_report():
    return run_linklab(seed=42, workers=0, **SMALL_GRID)


def test_profiles_partition_the_latency_axis():
    assert link_profile(0.005) == "cable"
    assert link_profile(0.035) == "lte"
    assert link_profile(0.12) == "satellite"
    assert link_profile(0.28) == "satellite"
    assert [link_profile(lat) for lat in DEFAULT_LATENCIES_S] == [
        "cable", "lte", "satellite", "satellite",
    ]


def test_default_grid_shape():
    assert len(DEFAULT_RATES_MBPS) == 4
    assert len(DEFAULT_LATENCIES_S) == 4
    assert len(DEFAULT_LOSS_RATES) == 3


def test_cell_covers_all_four_scenarios():
    cell = run_cell(
        {"rate_mbps": 6.0, "latency_s": 0.005, "loss": 0.0}, seed=7
    )
    assert cell["profile"] == "cable"
    assert set(cell) >= {"fct", "accounting", "renewal", "fairness"}
    # Clean fast link: boost must clearly beat the contended baseline.
    assert cell["fct"]["gain"] > 1.2
    # No loss anywhere: accounting is exact and every flow rides free.
    assert cell["accounting"]["accuracy"] == 1.0
    assert (
        cell["accounting"]["free_flows"] == cell["accounting"]["flows"]
    )
    # Renewal always wins; the stale-retransmit policy loses the flows
    # whose backoff ladder crosses the NCT window.
    assert cell["renewal"]["renew"]["success_rate"] == 1.0
    assert (
        cell["renewal"]["retransmit"]["success_rate"]
        < cell["renewal"]["renew"]["success_rate"]
    )
    # The boosted transfer out-runs the best-effort one while throttled;
    # ratio None means the strict-priority fast lane starved best-effort
    # outright (ratio = infinity), the paper's §6 unfairness made vivid.
    ratio = cell["fairness"]["throughput_ratio"]
    assert ratio is None or ratio > 1.0
    assert 0.5 <= cell["fairness"]["jain_index"] <= 1.0


def test_loss_taxes_accounting_accuracy():
    clean = run_cell(
        {"rate_mbps": 6.0, "latency_s": 0.035, "loss": 0.0}, seed=3
    )
    lossy = run_cell(
        {"rate_mbps": 6.0, "latency_s": 0.035, "loss": 0.02}, seed=3
    )
    assert clean["accounting"]["accuracy"] == 1.0
    assert lossy["accounting"]["accuracy"] < 1.0


def test_satellite_latency_shrinks_nct_margin():
    near = run_cell(
        {"rate_mbps": 6.0, "latency_s": 0.005, "loss": 0.0}, seed=5
    )
    far = run_cell(
        {"rate_mbps": 6.0, "latency_s": 0.28, "loss": 0.0}, seed=5
    )
    assert (
        far["renewal"]["retransmit"]["min_nct_margin_s"]
        < near["renewal"]["retransmit"]["min_nct_margin_s"]
    )


def test_report_covers_full_grid(small_report):
    assert len(small_report.cells) == 8
    seen = {
        (c["rate_mbps"], c["latency_ms"], c["loss"])
        for c in small_report.cells
    }
    assert len(seen) == 8
    for heatmap in small_report.heatmaps().values():
        assert len(heatmap) == 8
    summary = small_report.summary()
    assert summary["cells"] == 8
    assert summary["mean_renewal_success"] >= summary[
        "mean_retransmit_success"
    ]


def test_payload_bit_identical_across_worker_counts(small_report):
    pooled = run_linklab(seed=42, workers=2, **SMALL_GRID)
    assert small_report.sweep_stats.in_process
    assert pooled.sweep_stats.workers == 2
    assert small_report.to_json() == pooled.to_json()
    # The sweep stats legitimately differ — and stay out of the payload.
    assert (
        small_report.sweep_stats.as_dict()
        != pooled.sweep_stats.as_dict()
    )


def test_json_shape_and_sweep_opt_in(small_report):
    body = json.loads(small_report.to_json())
    assert set(body) == {"campaign_seed", "grid", "cells", "heatmaps"}
    with_stats = json.loads(small_report.to_json(include_sweep=True))
    assert with_stats["sweep"]["cells_completed"] == 8


def test_linklab_telemetry_lands_under_sweep_prefix():
    registry = MetricsRegistry()
    run_linklab(
        seed=1,
        workers=0,
        rates_mbps=(6.0,),
        latencies_s=(0.005,),
        loss_rates=(0.0,),
        telemetry=registry,
    )
    counters = registry.snapshot().counters
    assert counters["sweep.cells_completed"] == 1.0
