"""Network delivery guarantees, end to end (§4.3 / §4.5).

The full loop: a delivery-guaranteed descriptor, the switch attaching an
acknowledgment cookie on reverse traffic, and the client noticing whether
the ack arrived — warning the user when it did not.
"""

from repro.core import (
    CookieAttributes,
    CookieMatcher,
    CookieServer,
    DescriptorStore,
    ServiceOffering,
    UserAgent,
)
from repro.core.switch import CookieSwitch
from repro.netsim.appmsg import TLSClientHello
from repro.netsim.middlebox import Sink
from repro.netsim.packet import make_tcp_packet


def _env():
    clock = lambda: 0.0  # noqa: E731
    server = CookieServer(clock=clock)
    server.offer(
        ServiceOffering(
            name="guaranteed-boost",
            attribute_factory=lambda now: CookieAttributes(
                delivery_guarantee=True
            ),
        )
    )
    store = DescriptorStore()
    server.attach_enforcement_store(store)
    agent = UserAgent("alice", clock=clock, channel=server.handle_request)
    agent.acquire("guaranteed-boost")
    switch = CookieSwitch(CookieMatcher(store), clock=clock)
    sink = Sink()
    switch >> sink
    return agent, switch, sink


def _request(agent=None, sport=5000):
    packet = make_tcp_packet(
        "192.168.1.2", sport, "203.0.113.5", 443,
        content=TLSClientHello(sni="x.com"),
    )
    if agent is not None:
        agent.insert_cookie(packet, "guaranteed-boost")
    return packet


def _response(sport=5000):
    return make_tcp_packet(
        "203.0.113.5", 443, "192.168.1.2", sport,
        content=TLSClientHello(sni=""), payload_size=1000,
    )


class TestDeliveryGuaranteeLoop:
    def test_client_sees_ack_when_network_acted(self):
        agent, switch, _sink = _env()
        switch.push(_request(agent))
        response = _response()
        switch.push(response)  # switch attaches the ack cookie
        assert agent.check_delivery_ack(response, "guaranteed-boost")

    def test_client_warns_when_network_ignored_cookie(self):
        """If the path had no cookie-aware network (response untouched),
        the client detects the missing ack and alerts the user."""
        agent, _switch, _sink = _env()
        warnings = []
        agent.on_missing_ack = warnings.append
        bare_response = _response()
        assert not agent.check_delivery_ack(bare_response, "guaranteed-boost")
        assert warnings == ["guaranteed-boost"]

    def test_foreign_ack_not_accepted(self):
        """An ack from some other descriptor does not satisfy ours."""
        agent, _switch, _sink = _env()
        from repro.core import CookieDescriptor, CookieGenerator
        from repro.core.transport import default_registry

        stranger = CookieDescriptor.create()
        response = _response()
        default_registry().attach(
            response, CookieGenerator(stranger, clock=lambda: 0.0).generate()
        )
        assert not agent.check_delivery_ack(response, "guaranteed-boost")

    def test_unknown_service_returns_false(self):
        agent, _switch, _sink = _env()
        assert not agent.check_delivery_ack(_response(), "never-acquired")

    def test_ack_is_fresh_not_a_replay_of_ours(self):
        """The switch generates a NEW cookie for the ack — the uuid the
        client sent is not simply echoed."""
        agent, switch, _sink = _env()
        from repro.core.transport import default_registry

        request = _request(agent)
        sent_cookie, _carrier = default_registry().extract(request)
        switch.push(request)
        response = _response()
        switch.push(response)
        ack_cookie, _carrier = default_registry().extract(response)
        assert ack_cookie.uuid != sent_cookie.uuid
