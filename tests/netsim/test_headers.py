"""Header model tests: wire sizes, pack/unpack roundtrips, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.headers import (
    DSCP_MAX,
    EthernetHeader,
    EtherType,
    HeaderError,
    IPProto,
    IPv4Header,
    IPv6ExtensionHeader,
    IPv6Header,
    TCPHeader,
    TCPOption,
    UDPHeader,
)


class TestEthernet:
    def test_wire_length(self):
        assert EthernetHeader().wire_length == 14

    def test_pack_unpack_roundtrip(self):
        header = EthernetHeader(
            src_mac="aa:bb:cc:dd:ee:ff",
            dst_mac="11:22:33:44:55:66",
            ethertype=EtherType.IPV6,
        )
        recovered = EthernetHeader.unpack(header.pack())
        assert recovered == header

    def test_truncated_raises(self):
        with pytest.raises(HeaderError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_bad_mac_raises(self):
        with pytest.raises(HeaderError):
            EthernetHeader(src_mac="not-a-mac").pack()


class TestIPv4:
    def test_wire_length(self):
        assert IPv4Header().wire_length == 20

    def test_pack_unpack_roundtrip(self):
        header = IPv4Header(
            src="192.168.1.2",
            dst="8.8.8.8",
            proto=IPProto.UDP,
            ttl=17,
            dscp=46,
            ecn=1,
            total_length=1500,
            ident=4242,
        )
        assert IPv4Header.unpack(header.pack()) == header

    def test_tos_combines_dscp_and_ecn(self):
        header = IPv4Header(dscp=46, ecn=2)
        assert header.tos == (46 << 2) | 2

    @pytest.mark.parametrize("dscp", [-1, 64, 100])
    def test_dscp_out_of_range(self, dscp):
        with pytest.raises(HeaderError):
            IPv4Header(dscp=dscp)

    def test_ecn_out_of_range(self):
        with pytest.raises(HeaderError):
            IPv4Header(ecn=4)

    def test_bad_address_raises(self):
        with pytest.raises(HeaderError):
            IPv4Header(src="300.1.1.1").pack()

    def test_unpack_rejects_non_v4(self):
        data = bytearray(IPv4Header().pack())
        data[0] = 0x65  # version 6
        with pytest.raises(HeaderError):
            IPv4Header.unpack(bytes(data))

    @given(
        src=st.tuples(*([st.integers(0, 255)] * 4)),
        dst=st.tuples(*([st.integers(0, 255)] * 4)),
        dscp=st.integers(0, DSCP_MAX),
        ttl=st.integers(0, 255),
    )
    def test_roundtrip_property(self, src, dst, dscp, ttl):
        header = IPv4Header(
            src=".".join(map(str, src)),
            dst=".".join(map(str, dst)),
            dscp=dscp,
            ttl=ttl,
        )
        assert IPv4Header.unpack(header.pack()) == header


class TestIPv6:
    def test_base_wire_length(self):
        assert IPv6Header().wire_length == 40

    def test_dscp_lives_in_traffic_class(self):
        header = IPv6Header()
        header.dscp = 34
        assert header.dscp == 34
        assert header.traffic_class == 34 << 2

    def test_dscp_preserves_ecn_bits(self):
        header = IPv6Header(traffic_class=0b11)  # ECN bits set
        header.dscp = 10
        assert header.traffic_class & 0b11 == 0b11

    def test_extension_adds_padded_length(self):
        ext = IPv6ExtensionHeader(data=b"x" * 48)
        header = IPv6Header(extensions=[ext])
        assert header.wire_length == 40 + ext.wire_length
        assert ext.wire_length % 8 == 0

    def test_dscp_out_of_range(self):
        header = IPv6Header()
        with pytest.raises(HeaderError):
            header.dscp = 64


class TestIPv6Extension:
    def test_pack_unpack_roundtrip(self):
        ext = IPv6ExtensionHeader(next_header=6, option_type=0x1E, data=b"cookie!")
        recovered = IPv6ExtensionHeader.unpack(ext.pack())
        assert recovered.data == ext.data
        assert recovered.option_type == ext.option_type
        assert recovered.next_header == ext.next_header

    def test_pack_pads_to_eight_bytes(self):
        ext = IPv6ExtensionHeader(data=b"abc")
        assert len(ext.pack()) % 8 == 0

    def test_oversized_data_raises(self):
        with pytest.raises(HeaderError):
            IPv6ExtensionHeader(data=b"x" * 256).pack()

    def test_truncated_unpack_raises(self):
        with pytest.raises(HeaderError):
            IPv6ExtensionHeader.unpack(b"\x06")

    @given(data=st.binary(min_size=0, max_size=255))
    def test_roundtrip_property(self, data):
        ext = IPv6ExtensionHeader(data=data)
        assert IPv6ExtensionHeader.unpack(ext.pack()).data == data


class TestTCP:
    def test_base_wire_length(self):
        assert TCPHeader().wire_length == 20

    def test_options_padded_to_words(self):
        header = TCPHeader(options=[TCPOption(kind=253, data=b"abc")])
        # 2 + 3 = 5 bytes of options -> padded to 8
        assert header.wire_length == 28

    def test_nop_option_is_one_byte(self):
        assert TCPOption(kind=1).wire_length == 1

    def test_flags(self):
        header = TCPHeader(flags=TCPHeader.FLAG_SYN | TCPHeader.FLAG_ACK)
        assert header.is_syn and header.is_ack and not header.is_fin

    def test_find_option(self):
        opt = TCPOption(kind=253, data=b"z")
        header = TCPHeader(options=[TCPOption(kind=1), opt])
        assert header.find_option(253) is opt
        assert header.find_option(99) is None

    def test_option_too_long_raises(self):
        with pytest.raises(HeaderError):
            TCPOption(kind=253, data=b"x" * 254).pack()


class TestUDP:
    def test_wire_length(self):
        assert UDPHeader().wire_length == 8

    def test_pack_unpack_roundtrip(self):
        header = UDPHeader(src_port=1234, dst_port=53, length=80)
        assert UDPHeader.unpack(header.pack()) == header

    def test_truncated_raises(self):
        with pytest.raises(HeaderError):
            UDPHeader.unpack(b"\x01\x02")
