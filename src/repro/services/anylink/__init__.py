"""AnyLink: cloud-based slow lanes over cookies, in proxy mode."""

from .proxy import (
    STANDARD_PROFILES,
    AnyLinkProxy,
    LinkProfile,
    make_anylink_server,
)

__all__ = [
    "STANDARD_PROFILES",
    "AnyLinkProxy",
    "LinkProfile",
    "make_anylink_server",
]
